"""Tests for the trace-driven coherence auto-tuner.

The tuner's contract is behavioural, not clairvoyant: whatever the
footprint heuristic proposes, the returned assignment must measure at
least as fast as every uniform coherence mode (verified fallback). The
tests pin that contract on all three ablation workloads, check the
profiling evidence is real (footprints, critical-path share, plane
flits), and exercise the heuristic's individual rules directly.
"""

import pytest

from repro.soc import CoherenceMode
from repro.tune import (
    UNIFORM_MODES,
    ablation_workloads,
    autotune,
    profile_dataflow,
)
from repro.tune.tuner import _recommend
from repro.tune.workloads import false_sharing, llc_resident


@pytest.fixture(scope="module")
def tuned():
    """Autotune every ablation workload once; share across tests."""
    results = {}
    for wl in ablation_workloads():
        results[wl.name] = (wl, autotune(wl.build, wl.dataflow,
                                         wl.frames, mode=wl.mode))
    return results


class TestNeverWorse:
    def test_tuned_never_worse_than_best_uniform(self, tuned):
        for name, (_, result) in tuned.items():
            assert result.cycles <= result.best_uniform_cycles, name

    def test_all_arms_measured(self, tuned):
        for _, result in tuned.values():
            assert set(result.measured) == \
                {m.value for m in UNIFORM_MODES} | {"tuned"}
            assert all(c > 0 for c in result.measured.values())

    def test_ablation_winners_are_distinct(self, tuned):
        winners = {min(UNIFORM_MODES,
                       key=lambda m: result.measured[m.value])
                   for _, result in tuned.values()}
        assert winners == set(UNIFORM_MODES)

    def test_fallback_when_heuristic_loses(self, tuned):
        """fc-streaming's heuristic proposes non-coherent but
        fully-coherent measures faster: the tuner must return the
        measured winner, not the proposal."""
        _, result = tuned["fc-streaming"]
        assert result.candidate == {}
        assert result.chosen == CoherenceMode.FULLY_COHERENT.value
        assert set(result.assignment.values()) == \
            {CoherenceMode.FULLY_COHERENT}

    def test_heuristic_wins_llc_resident(self, tuned):
        _, result = tuned["llc-resident"]
        assert result.chosen == "tuned"
        assert set(result.assignment.values()) == \
            {CoherenceMode.LLC_COHERENT}

    def test_false_sharing_veto(self, tuned):
        """The misalignment veto predicts non-coherent statically and
        the measurement confirms it."""
        _, result = tuned["false-sharing"]
        assert result.chosen == "tuned"
        assert result.candidate == {}
        for dev in result.profile.devices:
            assert dev.recommended is CoherenceMode.NON_COHERENT
            assert "false sharing" in dev.reason

    def test_as_dict_round_trips(self, tuned):
        import json
        for _, result in tuned.values():
            payload = result.as_dict()
            json.dumps(payload)   # JSON-serializable end to end
            assert payload["cycles"] == result.cycles
            assert payload["chosen"] == result.chosen
            assert set(payload["measured"]) == set(result.measured)


class TestProfile:
    def test_profile_evidence(self):
        wl = llc_resident()
        profile = profile_dataflow(wl.build, wl.dataflow, wl.frames,
                                   mode=wl.mode)
        assert profile.cycles > 0
        assert 0.0 < profile.dma_fraction < 1.0
        assert profile.llc_words == 1 << 15
        # The baseline run is non-coherent: protocol planes are idle.
        assert all(f == 0 for f in profile.coh_plane_flits.values())
        assert {d.device for d in profile.devices} == \
            set(wl.dataflow.devices)
        for dev in profile.devices:
            assert dev.frame_words == 1024   # 512 in + 512 out
            assert dev.words_loaded > 0 and dev.words_stored > 0

    def test_profile_reuse_skips_reprofiling(self):
        wl = false_sharing()
        profile = profile_dataflow(wl.build, wl.dataflow, wl.frames,
                                   mode=wl.mode)
        result = autotune(wl.build, wl.dataflow, wl.frames,
                          mode=wl.mode, profile=profile)
        assert result.profile is profile
        assert result.cycles <= result.best_uniform_cycles


class TestHeuristic:
    def test_no_llc_forces_non_coherent(self):
        mode, reason = _recommend(64, 1024, 1024, llc_words=0)
        assert mode is CoherenceMode.NON_COHERENT
        assert "no memory tile" in reason

    def test_cold_dma_forces_non_coherent(self):
        mode, reason = _recommend(64, 1024, 1024, 1 << 15,
                                  dma_fraction=0.01)
        assert mode is CoherenceMode.NON_COHERENT
        assert "critical path" in reason

    def test_misaligned_siblings_force_non_coherent(self):
        mode, reason = _recommend(400, 6400, 1024, 1 << 15,
                                  siblings=2, misaligned=True)
        assert mode is CoherenceMode.NON_COHERENT
        assert "false sharing" in reason
        # Alone on its level, the same shape is fine for caching.
        mode, _ = _recommend(400, 6400, 1024, 1 << 15,
                             siblings=1, misaligned=True)
        assert mode is CoherenceMode.FULLY_COHERENT

    def test_footprint_ladder(self):
        mode, _ = _recommend(512, 8192, 1024, 1 << 15)
        assert mode is CoherenceMode.FULLY_COHERENT   # frame fits
        mode, _ = _recommend(2048, 8192, 1024, 1 << 15)
        assert mode is CoherenceMode.LLC_COHERENT     # run fits LLC
        mode, _ = _recommend(2048, 1 << 20, 1024, 1 << 15)
        assert mode is CoherenceMode.NON_COHERENT     # nothing fits
