"""Tests for the coherence auto-tuner."""
