"""Property-based integration tests over randomized pipelines.

The central runtime invariant: for any valid dataflow shape, frame
count and kernel latencies, all execution modes compute the same
function — the modes only differ in time and traffic.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.runtime import chain, replicated_stage
from tests.conftest import make_runtime, make_spec


def _affine_kernel(scale, shift, words):
    def compute(frame):
        return np.asarray(frame) * scale + shift
    return compute


@st.composite
def pipeline_shapes(draw):
    """Random chains and replicated stages with random kernels."""
    kind = draw(st.sampled_from(["chain", "gather", "pairwise"]))
    words = draw(st.sampled_from([4, 8, 16]))
    latencies = st.integers(10, 400)
    if kind == "chain":
        n = draw(st.integers(1, 4))
        names = [f"s{i}" for i in range(n)]
        specs = []
        for i, name in enumerate(names):
            scale = draw(st.sampled_from([0.5, 1.0, 2.0]))
            shift = draw(st.sampled_from([-1.0, 0.0, 1.0]))
            specs.append((name, make_spec(
                name=name, input_words=words, output_words=words,
                latency=draw(latencies),
                compute=_affine_kernel(scale, shift, words))))
        return specs, chain("df", names)
    n_prod = draw(st.sampled_from([2, 4]))
    n_cons = 1 if kind == "gather" else n_prod
    producers = [f"p{i}" for i in range(n_prod)]
    consumers = [f"c{i}" for i in range(n_cons)]
    specs = [(name, make_spec(name=name, input_words=words,
                              output_words=words,
                              latency=draw(latencies)))
             for name in producers + consumers]
    return specs, replicated_stage("df", producers, consumers)


@given(shape=pipeline_shapes(), n_batches=st.integers(1, 3),
       seed=st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_all_modes_compute_the_same_function(shape, n_batches, seed):
    specs, dataflow = shape
    k = max(len(level) for level in dataflow.levels())
    n_frames = k * 2 * n_batches
    words = specs[0][1].input_words
    frames = np.random.default_rng(seed).uniform(0, 1, (n_frames, words))
    outputs = {}
    for mode in ("base", "pipe", "p2p"):
        runtime = make_runtime(specs, cols=4, rows=3)
        outputs[mode] = runtime.esp_run(dataflow, frames,
                                        mode=mode).outputs
    np.testing.assert_array_equal(outputs["base"], outputs["pipe"])
    np.testing.assert_array_equal(outputs["base"], outputs["p2p"])


@given(shape=pipeline_shapes(), seed=st.integers(0, 50))
@settings(max_examples=15, deadline=None)
def test_p2p_never_increases_dram_traffic(shape, seed):
    specs, dataflow = shape
    k = max(len(level) for level in dataflow.levels())
    words = specs[0][1].input_words
    frames = np.random.default_rng(seed).uniform(0, 1, (2 * k, words))
    dram = {}
    for mode in ("pipe", "p2p"):
        runtime = make_runtime(specs, cols=4, rows=3)
        dram[mode] = runtime.esp_run(dataflow, frames,
                                     mode=mode).dram_accesses
    assert dram["p2p"] <= dram["pipe"]


@given(shape=pipeline_shapes(), seed=st.integers(0, 50))
@settings(max_examples=15, deadline=None)
def test_pipelining_never_much_slower_than_serial(shape, seed):
    """Pipelining wins whenever there is anything to overlap; for
    degenerate shapes (one device, one frame per device) it may only
    pay its thread-spawn/sync overhead, so the bound allows exactly
    that overhead and nothing more."""
    specs, dataflow = shape
    k = max(len(level) for level in dataflow.levels())
    words = specs[0][1].input_words
    n_frames = 4 * k
    frames = np.random.default_rng(seed).uniform(0, 1, (n_frames, words))
    cycles = {}
    for mode in ("base", "pipe"):
        runtime = make_runtime(specs, cols=4, rows=3)
        cycles[mode] = runtime.esp_run(dataflow, frames,
                                       mode=mode).cycles
    overhead = 150 * len(specs) + 40 * (n_frames + 1) * len(specs)
    assert cycles["pipe"] <= cycles["base"] + overhead
    if len(dataflow.levels()) >= 2:
        # A real pipeline with several frames per stage must win.
        assert cycles["pipe"] < cycles["base"]
