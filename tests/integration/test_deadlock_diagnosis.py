"""Tests for how misconfigured pipelines fail — loudly, not silently.

A mis-programmed p2p configuration on real hardware hangs; in the
simulator the event queue drains with the completion event untriggered
and the kernel raises ``SimulationError``. These tests pin that
diagnosis path for the representative misconfigurations.
"""

import numpy as np
import pytest

from repro.sim import SimulationError
from repro.soc import CMD_REG, CMD_START, N_FRAMES_REG, P2PConfig
from tests.conftest import make_soc, make_spec


def start_raw(soc, name, n_frames, p2p):
    """Start a device via raw register writes, bypassing the runtime
    (which would refuse these configurations at validation time)."""
    cpu = soc.cpu
    tile = soc.accelerator(name)

    def proc():
        yield from cpu.write_reg(tile.coord, "SRC_OFFSET_REG", 0)
        yield from cpu.write_reg(tile.coord, "DST_OFFSET_REG", 4096)
        yield from cpu.write_reg(tile.coord, N_FRAMES_REG, n_frames)
        yield from cpu.write_reg(tile.coord, "P2P_REG", p2p.encode())
        yield from cpu.write_reg(tile.coord, CMD_REG, CMD_START)
        yield from cpu.wait_irq(name)

    return soc.env.process(proc())


class TestHangDiagnosis:
    def test_p2p_load_with_no_producer_hangs_detectably(self):
        """A consumer waiting on a source that never stores: the
        schedule drains and run(until=...) reports it instead of
        returning a bogus result."""
        soc = make_soc([("cons0", make_spec(input_words=8,
                                            output_words=8))])
        consumer = soc.accelerator("cons0")
        # Point the p2p source at the aux tile: nothing will ever
        # answer the request.
        done = start_raw(soc, "cons0", n_frames=1,
                         p2p=P2PConfig(load_enabled=True,
                                       sources=((2, 0),)))
        with pytest.raises(SimulationError, match="drained"):
            soc.run(until=done)

    def test_p2p_store_with_no_consumer_completes_until_queue_full(self):
        """A producer with no consumer parks its first chunks and then
        blocks; the IRQ never fires."""
        soc = make_soc([("prod0", make_spec(input_words=8,
                                            output_words=8))])
        soc.memory_map.write_words(0, np.zeros(8 * 8))
        done = start_raw(soc, "prod0", n_frames=8,
                         p2p=P2PConfig(store_enabled=True))
        with pytest.raises(SimulationError, match="drained"):
            soc.run(until=done)
        # The shallow queue absorbed its depth before the stall.
        from repro.soc import P2P_QUEUE_DEPTH
        assert soc.accelerator("prod0").dma.p2p_stores == \
            P2P_QUEUE_DEPTH

    def test_crossed_p2p_pair_deadlocks_detectably(self):
        """Two consumers pointing at each other (a cycle the dataflow
        validator would reject) deadlock in hardware; the simulator
        reports the drain instead of hanging."""
        soc = make_soc([("a0", make_spec(input_words=8, output_words=8)),
                        ("b0", make_spec(input_words=8, output_words=8))])
        a_coord = soc.accelerator("a0").coord
        b_coord = soc.accelerator("b0").coord
        done_a = start_raw(soc, "a0", 1,
                           P2PConfig(load_enabled=True,
                                     sources=(b_coord,)))
        done_b = start_raw(soc, "b0", 1,
                           P2PConfig(load_enabled=True,
                                     sources=(a_coord,)))
        with pytest.raises(SimulationError, match="drained"):
            soc.run(until=soc.env.all_of([done_a, done_b]))

    def test_runtime_rejects_the_same_cycle_up_front(self, rng):
        """The software layer catches the cycle before any hardware is
        touched — the defence the paper's generated dataflows get."""
        from repro.runtime import Dataflow, DataflowEdge, EspRuntime
        soc = make_soc([("a0", make_spec(input_words=8, output_words=8)),
                        ("b0", make_spec(input_words=8, output_words=8))])
        runtime = EspRuntime(soc)
        df = Dataflow(name="cycle", devices=["a0", "b0"],
                      edges=[DataflowEdge("a0", "b0"),
                             DataflowEdge("b0", "a0")])
        with pytest.raises(ValueError, match="cycle"):
            runtime.esp_run(df, rng.uniform(0, 1, (2, 8)), mode="p2p")
