"""Integration tests: the full flow from model to measured pipeline."""

import numpy as np
import pytest

from repro.datasets import darken, flatten_frames, generate
from repro.flow import Esp4mlFlow
from repro.nn import Dense, ReLU, Sequential, Softmax, accuracy, fit
from repro.runtime import Dataflow, DataflowEdge, chain, replicated_stage
from tests.conftest import make_runtime, make_spec


class TestTrainCompileRun:
    """The complete Fig. 3 path: train -> hls4ml -> SoC -> execute."""

    def test_trained_model_keeps_accuracy_through_the_flow(self):
        # Train a small model on a tiny synthetic digit problem.
        frames, labels = generate(300, seed=0)
        x = flatten_frames(frames)
        model = Sequential([Dense(32), ReLU(), Dense(10), Softmax()],
                           name="tiny").build(1024, seed=1)
        fit(model, x, labels, epochs=6, batch_size=32)
        software_accuracy = accuracy(model.predict(x), labels)

        # Compile and integrate into an SoC.
        flow = Esp4mlFlow()
        flow.add_ml_accelerator("cl0", model, reuse_factor=64)
        bundle = flow.generate("acc-soc")

        # Run inference on the accelerator through the runtime.
        df = Dataflow(name="infer", devices=["cl0"])
        test_frames, test_labels = generate(32, seed=9)
        result = bundle.runtime.esp_run(
            df, flatten_frames(test_frames), mode="p2p")
        hardware_accuracy = accuracy(result.outputs, test_labels)

        # Fixed-point hardware stays close to the float software model.
        software_test = accuracy(model.predict(flatten_frames(test_frames)),
                                 test_labels)
        assert hardware_accuracy >= software_test - 0.10
        assert software_accuracy > 0.5   # the model did learn

    def test_three_stage_heterogeneous_pipeline(self, rng):
        """Generic kernel -> ML kernel -> generic kernel, all p2p."""
        def scaler(frame):
            return np.asarray(frame) * 0.5

        pre = make_spec(name="pre", input_words=16, output_words=16,
                        compute=scaler)
        model = Sequential([Dense(8), ReLU(), Dense(16)],
                           name="mid").build(16, seed=2)
        post = make_spec(name="post", input_words=16, output_words=16)

        flow = Esp4mlFlow()
        flow.add_generic_accelerator("pre0", pre)
        flow.add_ml_accelerator("mid0", model, reuse_factor=16)
        flow.add_generic_accelerator("post0", post)
        bundle = flow.generate()

        df = chain("app", ["pre0", "mid0", "post0"])
        frames = rng.uniform(0, 1, (4, 16))
        result = bundle.runtime.esp_run(df, frames, mode="p2p")

        # Reference: same composition in software.
        from repro.hls4ml_flow import HlsConfig, compile_model
        hls = compile_model(model, HlsConfig(reuse_factor=16))
        expected = np.stack([hls.predict(scaler(f))[0] + 1.0
                             for f in frames])
        np.testing.assert_allclose(result.outputs, expected, atol=1e-9)


class TestModeEquivalence:
    """base / pipe / p2p must compute the same function."""

    @pytest.mark.parametrize("shape", [
        ("chain2", ["a", "b"], None),
        ("chain4", ["a", "b", "c", "d"], None),
        ("gather", None, (4, 1)),
        ("pairwise", None, (2, 2)),
    ])
    def test_equivalence(self, shape, rng):
        name, chain_devices, repl = shape
        specs, df = self._build(name, chain_devices, repl)
        frames = rng.uniform(0, 1, (8, 8))
        outputs = {}
        for mode in ("base", "pipe", "p2p"):
            rt = make_runtime(specs, cols=4, rows=3)
            outputs[mode] = rt.esp_run(df, frames, mode=mode).outputs
        np.testing.assert_array_equal(outputs["base"], outputs["pipe"])
        np.testing.assert_array_equal(outputs["base"], outputs["p2p"])

    @staticmethod
    def _build(name, chain_devices, repl):
        if chain_devices is not None:
            specs = [(d, make_spec(name=d, input_words=8, output_words=8,
                                   latency=30 + 17 * i))
                     for i, d in enumerate(chain_devices)]
            return specs, chain(name, chain_devices)
        n_prod, n_cons = repl
        producers = [f"p{i}" for i in range(n_prod)]
        consumers = [f"c{i}" for i in range(n_cons)]
        specs = [(d, make_spec(name=d, input_words=8, output_words=8,
                               latency=40)) for d in producers]
        specs += [(d, make_spec(name=d, input_words=8, output_words=8,
                                latency=25)) for d in consumers]
        return specs, replicated_stage(name, producers, consumers)

    def test_frame_order_preserved_under_gather(self, rng):
        """4 producers feeding 1 consumer must not reorder frames."""
        def tag_compute(frame):
            return np.asarray(frame)   # identity keeps frame identity

        producers = [(f"p{i}", make_spec(name="p", input_words=4,
                                         output_words=4,
                                         compute=tag_compute,
                                         latency=100 + 31 * i))
                     for i in range(4)]
        consumer = ("c0", make_spec(name="c", input_words=4,
                                    output_words=4, compute=tag_compute,
                                    latency=10))
        frames = np.arange(64, dtype=float).reshape(16, 4)
        rt = make_runtime(producers + [consumer], cols=4, rows=3)
        df = replicated_stage("g", [p for p, _ in producers], ["c0"])
        result = rt.esp_run(df, frames, mode="p2p")
        np.testing.assert_array_equal(result.outputs, frames)


class TestNightVisionApplication:
    def test_nv_restores_intensity_statistics(self):
        """The pre-processing property Sec. VI relies on: equalization
        brings darkened frames back toward the original intensity
        distribution (the paper evaluates throughput/energy of this
        pipeline, with NV as "a pre-processing step" for the MLP)."""
        from repro.accelerators import night_vision_spec

        test_frames, _ = generate(32, seed=7)
        clean = flatten_frames(test_frames)
        dark = darken(clean, factor=0.15)

        nv = night_vision_spec()
        restored = np.stack([nv.run(f) for f in dark])

        clean_span = np.ptp(clean)
        # Equalization recovers the full dynamic range the darkening
        # destroyed, and lifts brightness far above the night level
        # (it flattens the histogram, so the mean lands near mid-scale
        # rather than exactly at the original mean).
        assert abs(np.ptp(restored) - clean_span) < \
            abs(np.ptp(dark) - clean_span)
        assert restored.mean() > 4 * dark.mean()

    def test_full_nv_classifier_pipeline_is_runnable_and_consistent(self):
        """Dark frames through NV+Cl on the SoC match the same
        composition evaluated in software."""
        from repro.accelerators import classifier_spec, night_vision_spec

        nv, cl = night_vision_spec(), classifier_spec()
        rt = make_runtime([("nv0", nv), ("cl0", cl)])
        test_frames, _ = generate(4, seed=3)
        dark = darken(flatten_frames(test_frames), factor=0.2)
        df = replicated_stage("nvcl", ["nv0"], ["cl0"])
        result = rt.esp_run(df, dark, mode="p2p")
        expected = np.stack([cl.run(nv.run(f)) for f in dark])
        np.testing.assert_allclose(result.outputs, expected, atol=1e-9)


class TestFailureInjection:
    def test_kernel_exception_surfaces(self, rng):
        def broken(frame):
            raise RuntimeError("kernel exploded")

        spec = make_spec(name="bad", compute=broken)
        rt = make_runtime([("bad0", spec)])
        df = Dataflow(name="df", devices=["bad0"])
        with pytest.raises(RuntimeError, match="kernel exploded"):
            rt.esp_run(df, rng.uniform(0, 1, (2, 16)), mode="base")

    def test_dataflow_with_unknown_device(self, rng):
        rt = make_runtime([("a0", make_spec())])
        df = Dataflow(name="df", devices=["ghost"])
        with pytest.raises(KeyError):
            rt.esp_run(df, rng.uniform(0, 1, (2, 16)), mode="base")

    def test_oversized_dataset_exhausts_memory(self, rng):
        rt = make_runtime([("a0", make_spec(input_words=1024,
                                            output_words=1024))],
                          mem_words=8192)
        df = Dataflow(name="df", devices=["a0"])
        with pytest.raises(MemoryError):
            rt.esp_run(df, rng.uniform(0, 1, (64, 1024)), mode="base")

    def test_edges_inconsistent_with_interleaving_rejected(self, rng):
        specs = [("p0", make_spec(input_words=8, output_words=8)),
                 ("p1", make_spec(input_words=8, output_words=8)),
                 ("c0", make_spec(input_words=8, output_words=8))]
        rt = make_runtime(specs)
        df = Dataflow(name="bad", devices=["p0", "p1", "c0"],
                      edges=[DataflowEdge("p1", "c0")])
        with pytest.raises(ValueError):
            rt.esp_run(df, rng.uniform(0, 1, (4, 8)), mode="p2p")
