"""Shared fixtures and helpers for the test suite."""

import numpy as np
import pytest

from repro.accelerators import AcceleratorSpec
from repro.hls import ResourceEstimate
from repro.runtime import EspRuntime
from repro.soc import SoCConfig, build_soc


def make_spec(name="toy", input_words=16, output_words=16,
              latency=50, interval=50, word_bits=16, compute=None):
    """A small, fast accelerator spec for SoC-level tests.

    The default kernel negates nothing — it adds 1 to every word, which
    makes data corruption visible in assertions.
    """
    if compute is None:
        def compute(frame):
            out = np.asarray(frame) + 1.0
            return out[:output_words] if len(out) >= output_words else \
                np.resize(out, output_words)
    return AcceleratorSpec(
        name=name,
        input_words=input_words,
        output_words=output_words,
        compute=compute,
        latency_cycles=latency,
        interval_cycles=interval,
        resources=ResourceEstimate(luts=1000, ffs=1000, brams=1, dsps=4),
        word_bits=word_bits,
    )


def make_soc(specs, cols=4, rows=2, clock_mhz=78.0, mem_words=1 << 18):
    """A small SoC hosting ``specs`` (list of (device_name, spec))."""
    config = SoCConfig(cols=cols, rows=rows, name="test-soc",
                       clock_mhz=clock_mhz)
    config.add_cpu((0, 0))
    config.add_memory((1, 0), size_words=mem_words)
    config.add_aux((2, 0))
    for device_name, spec in specs:
        config.add_accelerator(config.next_free(), device_name, spec)
    return build_soc(config)


def make_runtime(specs, **kwargs):
    return EspRuntime(make_soc(specs, **kwargs))


@pytest.fixture
def toy_spec():
    return make_spec()


@pytest.fixture
def rng():
    return np.random.default_rng(0)
