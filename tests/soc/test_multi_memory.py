"""Tests for SoCs with several memory tiles (ESP supports many)."""

import numpy as np
import pytest

from repro.runtime import Dataflow, EspRuntime, chain
from repro.soc import SoCConfig, build_soc
from tests.conftest import make_spec


def dual_memory_soc(mem_words=1 << 16):
    config = SoCConfig(cols=4, rows=2, name="dual-mem")
    config.add_cpu((0, 0))
    config.add_memory((3, 0), size_words=mem_words)
    config.add_memory((0, 1), size_words=mem_words)
    config.add_aux((1, 0))
    spec = make_spec(input_words=256, output_words=256, latency=20)
    config.add_accelerator((2, 0), "a0", spec)
    config.add_accelerator((1, 1), "b0", spec)
    return build_soc(config)


class TestDualMemory:
    def test_two_tiles_one_address_space(self):
        soc = dual_memory_soc()
        assert len(soc.memory_map.tiles) == 2
        assert soc.memory_map.total_words == 2 * (1 << 16)

    def test_pipeline_runs_correctly(self, rng):
        soc = dual_memory_soc()
        rt = EspRuntime(soc)
        frames = rng.uniform(0, 1, (8, 256))
        result = rt.esp_run(chain("ab", ["a0", "b0"]), frames,
                            mode="pipe")
        np.testing.assert_allclose(result.outputs, frames + 2.0)

    def test_buffers_spanning_the_tile_boundary(self, rng):
        """An allocation crossing from tile 0 into tile 1 still works:
        the DMA engine splits bursts at the boundary."""
        soc = dual_memory_soc(mem_words=4096)
        rt = EspRuntime(soc)
        # Consume most of tile 0 so the working buffers straddle tiles.
        rt.esp_alloc(4096 - 512, label="filler")
        frames = rng.uniform(0, 1, (8, 256))
        result = rt.esp_run(Dataflow(name="one", devices=["a0"]), frames,
                            mode="base")
        np.testing.assert_allclose(result.outputs, frames + 1.0)
        # Both tiles saw DMA traffic.
        reads = [tile.words_read for tile in soc.memory_map.tiles]
        writes = [tile.words_written for tile in soc.memory_map.tiles]
        assert all(r > 0 for r in reads)
        assert sum(writes) == 8 * 256

    def test_counters_aggregate_across_tiles(self, rng):
        soc = dual_memory_soc(mem_words=4096)
        rt = EspRuntime(soc)
        rt.esp_alloc(4096 - 512, label="filler")
        frames = rng.uniform(0, 1, (4, 256))
        result = rt.esp_run(Dataflow(name="one", devices=["a0"]), frames,
                            mode="base")
        assert result.dram_accesses == \
            sum(t.total_accesses for t in soc.memory_map.tiles)


class TestBandwidthScaling:
    def test_two_memory_tiles_relieve_contention(self, rng):
        """Two accelerators hammering one memory controller serialize;
        spreading their buffers over two controllers overlaps service.
        """
        def run(n_mem):
            config = SoCConfig(cols=4, rows=2, name=f"mem{n_mem}")
            config.add_cpu((0, 0))
            config.add_memory((3, 0), size_words=1 << 15)
            if n_mem == 2:
                config.add_memory((3, 1), size_words=1 << 15)
            config.add_aux((1, 0))
            spec = make_spec(input_words=1024, output_words=1024,
                             latency=5)
            config.add_accelerator((2, 0), "a0", spec)
            config.add_accelerator((2, 1), "b0", spec)
            rt = EspRuntime(build_soc(config))
            frames = rng.uniform(0, 1, (16, 1024))
            if n_mem == 2:
                # Place a0's working set in tile 0, b0's in tile 1.
                rt.esp_alloc(12 * 1024, label="pad")
            from repro.runtime import Dataflow
            df = Dataflow(name="par", devices=["a0", "b0"])
            return rt.esp_run(df, frames, mode="pipe").cycles

        assert run(2) < run(1)
