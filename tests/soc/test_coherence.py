"""Tests for per-accelerator coherence modes and the MESI machinery.

Covers the mode enum and its register encoding, the deprecated
``coherent=`` boolean alias (warning + exact-cycle equivalence), the
fully-coherent private-cache path (bit-identical outputs, coherence
planes carrying traffic only when the protocol runs, invalidation and
directory accounting) and the per-device assignment surface of
``esp_run``.
"""

import warnings

import numpy as np
import pytest

from repro.noc import (COH_FORWARD_PLANE, COH_REQUEST_PLANE,
                       COH_RESPONSE_PLANE)
from repro.runtime import EspRuntime, chain
from repro.soc import (COHERENCE_FULL, COHERENCE_LLC,
                       COHERENCE_NON_COHERENT, CoherenceMode, PrivateCache,
                       SoCConfig, build_soc, resolve_coherence)
from tests.conftest import make_spec

MODES = (CoherenceMode.NON_COHERENT, CoherenceMode.LLC_COHERENT,
         CoherenceMode.FULLY_COHERENT)


def coherence_soc(llc_words=1 << 14, private_cache_words=None,
                  input_words=256):
    config = SoCConfig(cols=4, rows=2, name="coh-modes")
    config.add_cpu((0, 0))
    config.add_memory((1, 0), size_words=1 << 16, llc_words=llc_words)
    config.add_aux((2, 0))
    spec = make_spec(input_words=input_words, output_words=input_words,
                     latency=50)
    config.add_accelerator((3, 0), "a0", spec,
                           private_cache_words=private_cache_words)
    config.add_accelerator((0, 1), "b0", spec,
                           private_cache_words=private_cache_words)
    return build_soc(config)


class TestCoherenceMode:
    def test_register_round_trip(self):
        for mode, reg in ((CoherenceMode.NON_COHERENT,
                           COHERENCE_NON_COHERENT),
                          (CoherenceMode.LLC_COHERENT, COHERENCE_LLC),
                          (CoherenceMode.FULLY_COHERENT,
                           COHERENCE_FULL)):
            assert mode.register_value == reg
            assert CoherenceMode.from_register(reg) is mode

    def test_from_register_unknown_degrades(self):
        assert CoherenceMode.from_register(99) is \
            CoherenceMode.NON_COHERENT

    def test_coerce_spellings(self):
        assert CoherenceMode.coerce(None) is CoherenceMode.NON_COHERENT
        assert CoherenceMode.coerce(True) is CoherenceMode.LLC_COHERENT
        assert CoherenceMode.coerce(False) is \
            CoherenceMode.NON_COHERENT
        assert CoherenceMode.coerce("fully-coherent") is \
            CoherenceMode.FULLY_COHERENT
        assert CoherenceMode.coerce(CoherenceMode.LLC_COHERENT) is \
            CoherenceMode.LLC_COHERENT
        with pytest.raises(ValueError, match="unknown coherence mode"):
            CoherenceMode.coerce("cache-me-maybe")
        with pytest.raises(TypeError):
            CoherenceMode.coerce(3.14)

    def test_resolve_coherence_rejects_both_kwargs(self):
        with pytest.raises(TypeError, match="both"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                resolve_coherence("llc-coherent", True)


class TestDeprecatedCoherentKwarg:
    def test_boolean_alias_warns(self, rng):
        frames = rng.uniform(0, 1, (2, 256))
        rt = EspRuntime(coherence_soc())
        with pytest.warns(DeprecationWarning, match="coherent="):
            rt.esp_run(chain("ab", ["a0", "b0"]), frames, mode="pipe",
                       coherent=True)

    def test_boolean_alias_keeps_exact_cycles(self, rng):
        """``coherent=True`` must stay cycle-identical to the enum
        spelling it aliases — old call sites keep their numbers."""
        frames = rng.uniform(0, 1, (4, 256))
        cycles = {}
        for label, kwargs in (
                ("bool", {"coherent": True}),
                ("enum", {"coherence": CoherenceMode.LLC_COHERENT}),
                ("str", {"coherence": "llc-coherent"})):
            rt = EspRuntime(coherence_soc())
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                result = rt.esp_run(chain("ab", ["a0", "b0"]), frames,
                                    mode="pipe", **kwargs)
            cycles[label] = result.cycles
        assert cycles["bool"] == cycles["enum"] == cycles["str"]

    def test_false_alias_matches_default(self, rng):
        frames = rng.uniform(0, 1, (4, 256))
        rt = EspRuntime(coherence_soc())
        baseline = rt.esp_run(chain("ab", ["a0", "b0"]), frames,
                              mode="pipe").cycles
        rt = EspRuntime(coherence_soc())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            aliased = rt.esp_run(chain("ab", ["a0", "b0"]), frames,
                                 mode="pipe", coherent=False).cycles
        assert aliased == baseline


class TestFullyCoherent:
    def test_outputs_bit_identical_across_modes(self, rng):
        """Caches shape timing only; data is mode-invariant."""
        frames = rng.uniform(0, 1, (6, 256))
        outs = {}
        for mode in MODES:
            rt = EspRuntime(coherence_soc())
            outs[mode] = rt.esp_run(chain("ab", ["a0", "b0"]), frames,
                                    mode="pipe",
                                    coherence=mode).outputs
        np.testing.assert_array_equal(outs[MODES[0]], outs[MODES[1]])
        np.testing.assert_array_equal(outs[MODES[0]], outs[MODES[2]])

    def test_coherence_planes_idle_unless_fully_coherent(self, rng):
        """The three protocol planes carry flits only when a private
        cache is in play — non-coherent and LLC-coherent DMA never
        touch them, so their seed timing cannot shift."""
        frames = rng.uniform(0, 1, (4, 256))
        planes = (COH_REQUEST_PLANE, COH_FORWARD_PLANE,
                  COH_RESPONSE_PLANE)
        for mode in MODES:
            soc = coherence_soc()
            rt = EspRuntime(soc)
            rt.esp_run(chain("ab", ["a0", "b0"]), frames, mode="pipe",
                       coherence=mode)
            flits = soc.mesh.plane_flits()
            coh_flits = sum(flits.get(p, 0) for p in planes)
            if mode is CoherenceMode.FULLY_COHERENT:
                assert coh_flits > 0
            else:
                assert coh_flits == 0

    def test_private_cache_cuts_dram_traffic(self, rng):
        frames = rng.uniform(0, 1, (6, 256))
        dram = {}
        for mode in (CoherenceMode.NON_COHERENT,
                     CoherenceMode.FULLY_COHERENT):
            rt = EspRuntime(coherence_soc())
            dram[mode] = rt.esp_run(chain("ab", ["a0", "b0"]), frames,
                                    mode="pipe",
                                    coherence=mode).dram_accesses
        assert dram[CoherenceMode.FULLY_COHERENT] < \
            dram[CoherenceMode.NON_COHERENT]

    def test_no_llc_downgrades_with_counter(self, rng):
        """Without a directory point the fabric falls back to
        non-coherent DMA, counts the downgrade, and stays correct."""
        soc = coherence_soc(llc_words=0)
        rt = EspRuntime(soc)
        frames = rng.uniform(0, 1, (4, 256))
        result = rt.esp_run(chain("ab", ["a0", "b0"]), frames,
                            mode="pipe", coherence="fully-coherent")
        np.testing.assert_allclose(result.outputs, frames + 2.0)
        downgrades = sum(soc.accelerator(n).dma.coherence_downgrades
                         for n in ("a0", "b0"))
        assert downgrades > 0
        planes = soc.mesh.plane_flits()
        assert sum(planes.get(p, 0)
                   for p in (COH_REQUEST_PLANE, COH_FORWARD_PLANE,
                             COH_RESPONSE_PLANE)) == 0

    def test_directory_and_cache_accounting(self, rng):
        """A producer-consumer chain exercises the protocol: requests
        hit the directory, stores take exclusive grants, the shared
        intermediate buffer forces invalidations, and the private
        caches record them."""
        soc = coherence_soc()
        rt = EspRuntime(soc)
        frames = rng.uniform(0, 1, (6, 256))
        rt.esp_run(chain("ab", ["a0", "b0"]), frames, mode="pipe",
                   coherence="fully-coherent")
        tile = soc.memory_map.tiles[0]
        assert tile.directory is not None
        stats = tile.directory.stats
        assert stats.requests > 0
        assert stats.exclusive_grants > 0
        assert stats.invalidations_sent > 0
        received = sum(
            soc.accelerator(n).dma.cache.invalidations_received
            for n in ("a0", "b0")
            if soc.accelerator(n).dma.cache is not None)
        assert received == stats.invalidations_sent

    def test_default_runs_spawn_no_coherence_machinery(self, rng):
        """Timing neutrality at the structural level: unless a device
        runs fully-coherent, no private cache and no directory ever
        exist."""
        soc = coherence_soc()
        rt = EspRuntime(soc)
        frames = rng.uniform(0, 1, (4, 256))
        rt.esp_run(chain("ab", ["a0", "b0"]), frames, mode="pipe",
                   coherence="llc-coherent")
        assert soc.memory_map.tiles[0].directory is None
        assert all(soc.accelerator(n).dma.cache is None
                   for n in ("a0", "b0"))


class TestPerDeviceAssignment:
    def test_mixed_modes_via_dict(self, rng):
        frames = rng.uniform(0, 1, (6, 256))
        reference = EspRuntime(coherence_soc()).esp_run(
            chain("ab", ["a0", "b0"]), frames, mode="pipe")
        soc = coherence_soc()
        rt = EspRuntime(soc)
        mixed = rt.esp_run(
            chain("ab", ["a0", "b0"]), frames, mode="pipe",
            coherence={"a0": "fully-coherent",
                       "b0": CoherenceMode.LLC_COHERENT})
        np.testing.assert_array_equal(mixed.outputs, reference.outputs)
        # Only a0 runs fully-coherent: exactly one private cache.
        assert soc.accelerator("a0").dma.cache is not None
        assert soc.accelerator("b0").dma.cache is None

    def test_unknown_device_rejected(self, rng):
        rt = EspRuntime(coherence_soc())
        frames = rng.uniform(0, 1, (2, 256))
        with pytest.raises(ValueError, match="not in the dataflow"):
            rt.esp_run(chain("ab", ["a0", "b0"]), frames, mode="pipe",
                       coherence={"zz": "llc-coherent"})

    def test_dataflow_level_default_applies(self, rng):
        """A mode pinned on the dataflow itself is used without any
        call-level argument."""
        from repro.runtime.dataflow import Dataflow, DataflowEdge
        frames = rng.uniform(0, 1, (4, 256))
        dataflow = Dataflow(name="pinned", devices=["a0", "b0"],
                            edges=[DataflowEdge("a0", "b0")],
                            coherence={"a0": "llc-coherent",
                                       "b0": "llc-coherent"})
        rt_pinned = EspRuntime(coherence_soc())
        pinned = rt_pinned.esp_run(dataflow, frames, mode="pipe")
        rt_arg = EspRuntime(coherence_soc())
        explicit = rt_arg.esp_run(chain("ab", ["a0", "b0"]), frames,
                                  mode="pipe",
                                  coherence="llc-coherent")
        assert pinned.cycles == explicit.cycles
        np.testing.assert_array_equal(pinned.outputs, explicit.outputs)


class TestPrivateCacheModel:
    def test_mesi_touch_transitions(self):
        cache = PrivateCache(capacity_words=256, line_words=16, ways=2)
        cache.install(0, "E")
        assert cache.state(0) == "E"
        assert cache.touch(0, write=True) == "M"   # silent E -> M hit
        assert cache.state(0) == "M"
        cache.install(1, "S")
        assert cache.touch(1, write=False) == "S"  # read hit in S
        # A write to a shared line misses: it needs an upgrade request.
        assert cache.touch(1, write=True) is None
        assert cache.misses == 1

    def test_invalidate_and_flush(self):
        cache = PrivateCache(capacity_words=256, line_words=16, ways=2)
        cache.install(0, "M")
        cache.install(1, "S")
        assert cache.invalidate(0)          # dirty: data must go back
        assert not cache.invalidate(1)      # clean: silent drop
        assert cache.invalidate(7) is False  # absent: no-op
        assert cache.invalidations_received == 2
        cache.install(2, "M")
        assert cache.flush() == 1
        assert cache.resident_lines == 0

    def test_eviction_returns_dirty_victim(self):
        cache = PrivateCache(capacity_words=32, line_words=16, ways=2)
        cache.install(0, "M")
        cache.install(2, "S")   # same set (single-set cache)
        victim = cache.install(4, "E")   # evicts LRU line 0 (dirty)
        assert victim == 0
