"""Tests for the DMA engine: regular loads/stores and the p2p service."""

import numpy as np
import pytest

from repro.noc import DMA_REQUEST_PLANE, DMA_RESPONSE_PLANE, Mesh2D
from repro.sim import Environment
from repro.soc import (
    DmaEngine,
    MemoryMap,
    MemoryTile,
    P2PConfig,
    P2P_QUEUE_DEPTH,
    Tlb,
)


def make_fabric(cols=3):
    """env, mesh, memory map with one memory tile at the east edge."""
    env = Environment()
    mesh = Mesh2D(env, cols, 1)
    memory = MemoryTile(env, mesh, (cols - 1, 0), size_words=1 << 16)
    return env, mesh, MemoryMap([memory]), memory


def run_gen(env, generator):
    """Drive a DMA generator inside a process; return its result."""
    box = {}

    def proc():
        box["result"] = yield from generator
        return box["result"]

    done = env.process(proc())
    env.run(until=done)
    env.run()   # drain: posted stores complete at the memory tile later
    return box["result"]


class TestDmaLoadStore:
    def test_load_returns_memory_contents(self, rng):
        env, mesh, mm, memory = make_fabric()
        data = rng.uniform(-1, 1, 128)
        memory.write_words(256, data)
        dma = DmaEngine(env, mesh, (0, 0), mm)
        out = run_gen(env, dma.load(256, 128))
        np.testing.assert_array_equal(out, data)
        assert dma.dma_loads == 1
        assert dma.words_loaded == 128

    def test_store_reaches_memory(self, rng):
        env, mesh, mm, memory = make_fabric()
        data = rng.uniform(-1, 1, 64)
        dma = DmaEngine(env, mesh, (0, 0), mm)
        run_gen(env, dma.store(512, data))
        np.testing.assert_array_equal(memory.read_words(512, 64), data)
        assert memory.words_written == 64

    def test_long_transfer_split_into_bursts(self):
        env, mesh, mm, memory = make_fabric()
        dma = DmaEngine(env, mesh, (0, 0), mm, max_burst_words=100)
        run_gen(env, dma.load(0, 350))
        assert memory.load_transactions == 4   # 100+100+100+50

    def test_tlb_preload_speeds_up_transfer(self):
        def elapsed(preload):
            env, mesh, mm, _ = make_fabric()
            tlb = Tlb(page_words=256, miss_latency=500)
            if preload:
                tlb.preload(0, 4096)
            dma = DmaEngine(env, mesh, (0, 0), mm, tlb=tlb)
            start = env.now
            run_gen(env, dma.load(0, 4096))
            return env.now - start

        assert elapsed(preload=True) < elapsed(preload=False)

    def test_invalid_load_size(self):
        env, mesh, mm, _ = make_fabric()
        dma = DmaEngine(env, mesh, (0, 0), mm)
        with pytest.raises(ValueError):
            run_gen(env, dma.load(0, 0))

    def test_concurrent_loads_demuxed_by_tag(self, rng):
        env, mesh, mm, memory = make_fabric()
        a_data = rng.uniform(-1, 1, 32)
        b_data = rng.uniform(-1, 1, 32)
        memory.write_words(0, a_data)
        memory.write_words(1000, b_data)
        dma = DmaEngine(env, mesh, (0, 0), mm)
        results = {}

        def loader(key, offset):
            results[key] = yield from dma.load(offset, 32)

        env.process(loader("a", 0))
        env.process(loader("b", 1000))
        env.run()
        np.testing.assert_array_equal(results["a"], a_data)
        np.testing.assert_array_equal(results["b"], b_data)


class TestP2P:
    def test_receiver_initiated_transfer(self, rng):
        env, mesh, mm, memory = make_fabric(cols=3)
        sender = DmaEngine(env, mesh, (0, 0), mm)
        receiver = DmaEngine(env, mesh, (1, 0), mm)
        payload = rng.uniform(-1, 1, 64)
        store_cfg = P2PConfig(store_enabled=True)
        load_cfg = P2PConfig(load_enabled=True, sources=((0, 0),))
        got = {}

        def send_side():
            yield from sender.store(0, payload, p2p=store_cfg)

        def recv_side():
            got["data"] = yield from receiver.load(0, 64, p2p=load_cfg)

        env.process(send_side())
        env.process(recv_side())
        env.run()
        np.testing.assert_array_equal(got["data"], payload)
        assert sender.p2p_stores == 1
        assert receiver.p2p_loads == 1
        # p2p data never touched DRAM.
        assert memory.total_accesses == 0

    def test_sender_blocks_until_request(self):
        """On-demand semantics: data waits in the sender's queue."""
        env, mesh, mm, _ = make_fabric()
        sender = DmaEngine(env, mesh, (0, 0), mm)
        receiver = DmaEngine(env, mesh, (1, 0), mm)
        store_cfg = P2PConfig(store_enabled=True)
        load_cfg = P2PConfig(load_enabled=True, sources=((0, 0),))
        times = {}

        def send_side():
            yield from sender.store(0, np.zeros(16), p2p=store_cfg)
            times["stored"] = env.now

        def recv_side():
            yield env.timeout(5000)
            yield from receiver.load(0, 16, p2p=load_cfg)
            times["received"] = env.now

        env.process(send_side())
        env.process(recv_side())
        env.run()
        # The store itself completes immediately (queue deposit), but
        # the data only crosses the NoC after the late request.
        assert times["received"] > 5000

    def test_consumption_assumption_backpressure(self):
        """Producer stalls once the shallow p2p queue fills."""
        env, mesh, mm, _ = make_fabric()
        sender = DmaEngine(env, mesh, (0, 0), mm)
        progress = []

        def producer():
            for index in range(P2P_QUEUE_DEPTH + 2):
                yield from sender.store(0, np.zeros(8),
                                        p2p=P2PConfig(store_enabled=True))
                progress.append(index)

        env.process(producer())
        env.run(until=10_000)
        # Only the queue capacity worth of chunks went through; the
        # producer is blocked on the full queue with no consumer.
        assert progress == list(range(P2P_QUEUE_DEPTH))

    def test_round_robin_over_sources(self, rng):
        env, mesh, mm, _ = make_fabric(cols=4)
        s0 = DmaEngine(env, mesh, (0, 0), mm)
        s1 = DmaEngine(env, mesh, (1, 0), mm)
        receiver = DmaEngine(env, mesh, (2, 0), mm)
        load_cfg = P2PConfig(load_enabled=True, sources=((0, 0), (1, 0)))
        store_cfg = P2PConfig(store_enabled=True)
        got = []

        def feed(engine, base):
            for i in range(2):
                yield from engine.store(0, np.full(4, base + i),
                                        p2p=store_cfg)

        def consume():
            for _ in range(4):
                chunk = yield from receiver.load(0, 4, p2p=load_cfg)
                got.append(chunk[0])

        env.process(feed(s0, 100))
        env.process(feed(s1, 200))
        env.process(consume())
        env.run()
        assert got == [100, 200, 101, 201]

    def test_rotation_reset(self, rng):
        env, mesh, mm, _ = make_fabric(cols=4)
        s0 = DmaEngine(env, mesh, (0, 0), mm)
        s1 = DmaEngine(env, mesh, (1, 0), mm)
        receiver = DmaEngine(env, mesh, (2, 0), mm)
        load_cfg = P2PConfig(load_enabled=True, sources=((0, 0), (1, 0)))
        store_cfg = P2PConfig(store_enabled=True)
        got = []

        def feed(engine, value, count):
            for _ in range(count):
                yield from engine.store(0, np.full(4, value),
                                        p2p=store_cfg)

        def consume():
            chunk = yield from receiver.load(0, 4, p2p=load_cfg)
            got.append(chunk[0])
            receiver.reset_p2p_rotation()
            chunk = yield from receiver.load(0, 4, p2p=load_cfg)
            got.append(chunk[0])

        env.process(feed(s0, 100, 2))
        env.process(feed(s1, 200, 1))
        env.process(consume())
        env.run()
        assert got == [100, 100]   # rotation restarted at source 0

    def test_size_mismatch_detected(self):
        env, mesh, mm, _ = make_fabric()
        sender = DmaEngine(env, mesh, (0, 0), mm)
        receiver = DmaEngine(env, mesh, (1, 0), mm)

        def send_side():
            yield from sender.store(0, np.zeros(8),
                                    p2p=P2PConfig(store_enabled=True))

        def recv_side():
            yield from receiver.load(
                0, 16, p2p=P2PConfig(load_enabled=True, sources=((0, 0),)))

        env.process(send_side())
        env.process(recv_side())
        with pytest.raises(ValueError, match="mismatch"):
            env.run()

    def test_p2p_reuses_dma_planes_only(self, rng):
        """Contribution 1: no new NoC resources, only the DMA planes."""
        env, mesh, mm, _ = make_fabric()
        sender = DmaEngine(env, mesh, (0, 0), mm)
        receiver = DmaEngine(env, mesh, (1, 0), mm)

        def send_side():
            yield from sender.store(0, np.zeros(32),
                                    p2p=P2PConfig(store_enabled=True))

        def recv_side():
            yield from receiver.load(
                0, 32, p2p=P2PConfig(load_enabled=True, sources=((0, 0),)))

        env.process(send_side())
        env.process(recv_side())
        env.run()
        flits = mesh.plane_flits()
        active = {plane for plane, count in flits.items() if count > 0}
        assert active <= {DMA_REQUEST_PLANE, DMA_RESPONSE_PLANE}


class TestStalledConsumer:
    """The paper's p2p 'consumption assumption' under a dead consumer:
    backpressure must stay local to the wedged stream."""

    def test_stalled_consumer_does_not_wedge_unrelated_dma(self, rng):
        """A producer blocked on its full p2p store queue must not
        hold NoC or memory resources that unrelated DMA needs."""
        env, mesh, mm, memory = make_fabric(cols=4)
        producer = DmaEngine(env, mesh, (0, 0), mm)
        bystander = DmaEngine(env, mesh, (1, 0), mm)
        data = rng.uniform(-1, 1, 64)
        memory.write_words(512, data)
        wedged = []
        observed = {}

        def wedge():
            for index in range(P2P_QUEUE_DEPTH + 2):
                yield from producer.store(
                    0, np.zeros(8), p2p=P2PConfig(store_enabled=True))
                wedged.append(index)

        def unrelated():
            yield env.timeout(100)   # let the producer wedge first
            observed["data"] = yield from bystander.load(512, 64)
            observed["at"] = env.now

        env.process(wedge())
        done = env.process(unrelated())
        env.run(until=done)
        env.run(until=env.now + 10_000)
        assert wedged == list(range(P2P_QUEUE_DEPTH))   # still wedged
        np.testing.assert_array_equal(observed["data"], data)

    def test_wedged_store_queue_is_introspectable(self):
        """The blocked producer shows up on the store queue's waiters()
        — the hook the deadlock detector and the watchdog report use."""
        env, mesh, mm, _ = make_fabric()
        producer = DmaEngine(env, mesh, (0, 0), mm)

        def wedge():
            for _ in range(P2P_QUEUE_DEPTH + 1):
                yield from producer.store(
                    0, np.zeros(8), p2p=P2PConfig(store_enabled=True))

        env.process(wedge(), name="wedged-producer")
        env.run(until=5_000)
        waiters = producer._p2p_store_queue.waiters()
        assert len(waiters["putters"]) == 1
        reason = getattr(waiters["putters"][0], "wait_reason", "")
        assert "p2p-store" in reason

    def test_consumer_timeout_leaves_queue_recoverable(self):
        """After a reset flushes the wedged queue, the engine serves
        fresh p2p traffic normally."""
        env, mesh, mm, _ = make_fabric()
        producer = DmaEngine(env, mesh, (0, 0), mm)
        receiver = DmaEngine(env, mesh, (1, 0), mm)

        def wedge():
            for _ in range(P2P_QUEUE_DEPTH + 1):
                yield from producer.store(
                    0, np.zeros(8), p2p=P2PConfig(store_enabled=True))

        env.process(wedge())
        env.run(until=5_000)
        producer.reset()
        env.run(until=env.now + 100)

        sent = np.arange(16, dtype=float)
        got = {}

        def send_side():
            yield from producer.store(0, sent,
                                      p2p=P2PConfig(store_enabled=True))

        def recv_side():
            got["data"] = yield from receiver.load(
                0, 16, p2p=P2PConfig(load_enabled=True,
                                     sources=((0, 0),)))

        env.process(send_side())
        done = env.process(recv_side())
        env.run(until=done)
        np.testing.assert_array_equal(got["data"], sent)
