"""Tests for SoC configuration, generation and device-tree emission."""

import pytest

from repro.soc import (
    SoCConfig,
    TILE_OVERHEAD,
    TileConfig,
    build_soc,
    devices_from_config,
    emit_dts,
)
from tests.conftest import make_spec


def minimal_config():
    config = SoCConfig(cols=3, rows=2, name="mini")
    config.add_cpu((0, 0))
    config.add_memory((1, 0))
    config.add_aux((2, 0))
    config.add_accelerator((0, 1), "acc0", make_spec())
    return config


class TestTileConfig:
    def test_acc_requires_spec_and_name(self):
        with pytest.raises(ValueError):
            TileConfig(kind="acc")
        with pytest.raises(ValueError):
            TileConfig(kind="acc", spec=make_spec())

    def test_non_acc_cannot_carry_spec(self):
        with pytest.raises(ValueError):
            TileConfig(kind="cpu", name="c", spec=make_spec())

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            TileConfig(kind="gpu")


class TestSoCConfig:
    def test_double_assignment_rejected(self):
        config = minimal_config()
        with pytest.raises(ValueError):
            config.add_cpu((0, 0))

    def test_out_of_grid_rejected(self):
        config = minimal_config()
        with pytest.raises(ValueError):
            config.add_aux((9, 9))

    def test_duplicate_device_name_rejected(self):
        config = minimal_config()
        with pytest.raises(ValueError):
            config.add_accelerator((1, 1), "acc0", make_spec())

    def test_next_free_row_major(self):
        config = minimal_config()
        assert config.next_free() == (1, 1)

    def test_next_free_full_grid(self):
        config = SoCConfig(cols=1, rows=1)
        config.add_cpu((0, 0))
        with pytest.raises(ValueError):
            config.next_free()

    def test_validate_requires_cpu_and_memory(self):
        config = SoCConfig(cols=2, rows=1)
        config.add_memory((0, 0))
        with pytest.raises(ValueError, match="processor"):
            config.validate()
        config2 = SoCConfig(cols=2, rows=1)
        config2.add_cpu((0, 0))
        with pytest.raises(ValueError, match="memory"):
            config2.validate()

    def test_grid_limited_to_16(self):
        with pytest.raises(ValueError):
            SoCConfig(cols=17, rows=2)

    def test_floorplan_text(self):
        text = minimal_config().floorplan_text()
        assert "cpu" in text and "mem" in text and "acc" in text
        assert "empty" in text

    def test_tiles_of_kind_sorted(self):
        config = minimal_config()
        config.add_accelerator((1, 1), "acc1", make_spec())
        names = [t.name for _, t in config.tiles_of_kind("acc")]
        assert names == ["acc0", "acc1"]


class TestBuildSoC:
    def test_builds_all_tiles(self):
        soc = build_soc(minimal_config())
        assert soc.cpu.coord == (0, 0)
        assert len(soc.memory_map.tiles) == 1
        assert set(soc.accelerators) == {"acc0"}
        assert len(soc.aux_tiles) == 1

    def test_routing_tables_for_every_coord(self):
        soc = build_soc(minimal_config())
        assert len(soc.routing_tables) == 6

    def test_resources_include_overheads(self):
        soc = build_soc(minimal_config())
        total = soc.resources()
        floor = sum((TILE_OVERHEAD[k] for k in
                     ("cpu", "mem", "aux", "acc")),
                    TILE_OVERHEAD["empty"].scaled(2))
        assert total.luts >= floor.luts

    def test_clock_conversion(self):
        config = minimal_config()
        config.clock_mhz = 100.0
        soc = build_soc(config)
        assert soc.cycles_to_seconds(100_000_000) == pytest.approx(1.0)

    def test_accelerator_lookup_error(self):
        soc = build_soc(minimal_config())
        with pytest.raises(KeyError):
            soc.accelerator("nope")

    def test_invalid_config_rejected_at_build(self):
        config = SoCConfig(cols=2, rows=1)
        config.add_cpu((0, 0))
        with pytest.raises(ValueError):
            build_soc(config)


class TestDeviceTree:
    def test_devices_in_probe_order(self):
        config = minimal_config()
        config.add_accelerator((1, 1), "acc1", make_spec())
        nodes = devices_from_config(config)
        assert [n.name for n in nodes] == ["acc0", "acc1"]
        assert nodes[0].reg_base != nodes[1].reg_base
        assert nodes[0].irq == 1

    def test_dts_renders_every_device(self):
        config = minimal_config()
        text = emit_dts(config)
        assert "/dts-v1/;" in text
        assert "acc0@" in text
        assert "esp,noc-coords = <0 1>" in text
        assert f"columns = <{config.cols}>" in text
