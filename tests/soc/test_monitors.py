"""Tests for the SoC performance-monitor aggregation."""

import numpy as np
import pytest

from repro.soc import read_monitors
from repro.runtime import EspRuntime, chain
from repro.soc import SoCConfig, build_soc
from tests.conftest import make_runtime, make_spec


def run_and_read(mode="p2p", n_frames=6):
    specs = [("a0", make_spec(name="a", input_words=8, output_words=8,
                              latency=100)),
             ("b0", make_spec(name="b", input_words=8, output_words=8,
                              latency=50))]
    rt = make_runtime(specs)
    frames = np.random.default_rng(0).uniform(0, 1, (n_frames, 8))
    rt.esp_run(chain("ab", ["a0", "b0"]), frames, mode=mode)
    return read_monitors(rt.soc)


class TestMonitorReport:
    def test_accelerator_counters_consistent(self):
        report = run_and_read(mode="p2p", n_frames=6)
        by_name = {a.device: a for a in report.accelerators}
        assert by_name["a0"].frames == 6
        assert by_name["b0"].frames == 6
        assert by_name["a0"].p2p_stores == 6
        assert by_name["b0"].p2p_loads == 6
        assert by_name["a0"].dma_loads == 6     # input from DRAM
        assert by_name["b0"].dma_stores == 6    # output to DRAM

    def test_pipe_mode_shows_dma_only(self):
        report = run_and_read(mode="pipe")
        for acc in report.accelerators:
            assert acc.p2p_loads == 0
            assert acc.p2p_stores == 0

    def test_memory_counters_match_runresult_accounting(self):
        report = run_and_read(mode="pipe", n_frames=4)
        # in(4x8) + inter write/read (2x 4x8) + out(4x8) = 128 words.
        assert report.total_dram_words == 128

    def test_bandwidth_positive(self):
        report = run_and_read()
        assert report.dram_bandwidth_words_per_cycle() > 0

    def test_busiest_link_reported(self):
        report = run_and_read()
        assert report.busiest_link is not None
        assert "flits" in report.busiest_link

    def test_llc_counters_absent_without_llc(self):
        report = run_and_read()
        assert all(m.llc_hits is None for m in report.memories)

    def test_llc_counters_present_with_llc(self, rng):
        config = SoCConfig(cols=4, rows=1, name="mon-llc")
        config.add_cpu((0, 0))
        config.add_memory((1, 0), size_words=1 << 15, llc_words=4096)
        spec = make_spec(input_words=64, output_words=64)
        config.add_accelerator((2, 0), "a0", spec)
        config.add_accelerator((3, 0), "b0", spec)
        rt = EspRuntime(build_soc(config))
        frames = rng.uniform(0, 1, (4, 64))
        rt.esp_run(chain("ab", ["a0", "b0"]), frames, mode="pipe",
                   coherent=True)
        report = read_monitors(rt.soc)
        assert report.memories[0].llc_hits is not None
        assert report.memories[0].llc_hits + \
            report.memories[0].llc_misses > 0

    def test_text_rendering(self):
        report = run_and_read()
        text = report.to_text()
        assert "SoC monitors" in text
        assert "a0" in text and "b0" in text
        assert "DRAM bandwidth" in text


class TestDeltaAttribution:
    """Back-to-back runs on one SoC share cumulative counters; the
    snapshot-delta helpers attribute activity to each run."""

    def runtime(self):
        specs = [("a0", make_spec(name="a", input_words=8,
                                  output_words=8, latency=100)),
                 ("b0", make_spec(name="b", input_words=8,
                                  output_words=8, latency=50))]
        return make_runtime(specs)

    def run_frames(self, rt, n_frames, seed=0):
        frames = np.random.default_rng(seed).uniform(0, 1, (n_frames, 8))
        rt.esp_run(chain("ab", ["a0", "b0"]), frames, mode="p2p")

    def test_activity_delta_isolates_second_run(self):
        from repro.soc import activity_delta, tile_activity
        rt = self.runtime()
        names = ["a0", "b0"]
        snap0 = tile_activity(rt.soc, names)
        self.run_frames(rt, 6, seed=1)
        snap1 = tile_activity(rt.soc, names)
        self.run_frames(rt, 4, seed=2)
        snap2 = tile_activity(rt.soc, names)

        first = activity_delta(snap0, snap1)
        second = activity_delta(snap1, snap2)
        assert first["a0"].frames == 6 and first["b0"].frames == 6
        assert second["a0"].frames == 4 and second["b0"].frames == 4
        assert second["a0"].busy_cycles > 0
        assert second["a0"].p2p_stores == 4
        assert second["b0"].p2p_loads == 4
        # The cumulative view is the sum of the two windows.
        assert snap2["a0"].frames == \
            snap0["a0"].frames + first["a0"].frames + second["a0"].frames

    def test_monitor_delta_recomputes_utilization(self):
        from repro.soc import monitor_delta
        rt = self.runtime()
        self.run_frames(rt, 6, seed=1)
        before = read_monitors(rt.soc)
        self.run_frames(rt, 4, seed=2)
        after = read_monitors(rt.soc)

        delta = monitor_delta(before, after)
        by_name = {a.device: a for a in delta.accelerators}
        assert by_name["a0"].frames == 4
        assert by_name["b0"].frames == 4
        assert 0 < by_name["a0"].utilization <= 1.0
        assert delta.elapsed_cycles == \
            after.elapsed_cycles - before.elapsed_cycles
        # p2p second run: DRAM only sees input + output words.
        assert delta.total_dram_words == 2 * 4 * 8
        assert delta.noc_flit_hops > 0

    def test_monitor_delta_rejects_reversed_snapshots(self):
        from repro.soc import monitor_delta
        rt = self.runtime()
        before = read_monitors(rt.soc)
        self.run_frames(rt, 2)
        after = read_monitors(rt.soc)
        with pytest.raises(ValueError, match="precedes"):
            monitor_delta(after, before)

    def test_tile_activity_validates_names(self):
        from repro.soc import tile_activity
        rt = self.runtime()
        with pytest.raises(KeyError, match="unknown accelerator"):
            tile_activity(rt.soc, ["nope"])

    def test_activity_delta_requires_matching_before(self):
        from repro.soc import activity_delta, tile_activity
        rt = self.runtime()
        full = tile_activity(rt.soc, ["a0", "b0"])
        partial = tile_activity(rt.soc, ["a0"])
        with pytest.raises(KeyError, match="before"):
            activity_delta(partial, full)

    def test_tile_activity_addition_merges_windows(self):
        from repro.soc import TileActivity
        def activity(name, frames):
            return TileActivity(device=name, invocations=1,
                                frames=frames, busy_cycles=10,
                                dma_loads=1, dma_stores=1, p2p_loads=0,
                                p2p_stores=0, words_loaded=8,
                                words_stored=8)
        merged = activity("a0", 2) + activity("a0", 3)
        assert merged.frames == 5 and merged.busy_cycles == 20
        with pytest.raises(ValueError, match="cannot add"):
            activity("a0", 1) + activity("b0", 1)
