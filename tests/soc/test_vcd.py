"""Tests for the VCD waveform exporter."""

import numpy as np
import pytest

from repro.runtime import EspRuntime, chain
from repro.soc import SoCConfig, build_soc, emit_vcd
from repro.soc.vcd import _identifier
from tests.conftest import make_spec


def traced_run(trace_links=True, n_frames=4):
    config = SoCConfig(cols=4, rows=1, name="vcd")
    config.add_cpu((0, 0))
    config.add_memory((1, 0))
    config.add_accelerator((2, 0), "a0",
                           make_spec(input_words=64, output_words=64,
                                     latency=100))
    config.add_accelerator((3, 0), "b0",
                           make_spec(input_words=64, output_words=64,
                                     latency=50))
    soc = build_soc(config, trace_links=trace_links)
    rt = EspRuntime(soc)
    frames = np.random.default_rng(0).uniform(0, 1, (n_frames, 64))
    rt.esp_run(chain("ab", ["a0", "b0"]), frames, mode="p2p")
    return soc


class TestIdentifiers:
    def test_unique_for_many_indices(self):
        idents = {_identifier(i) for i in range(5000)}
        assert len(idents) == 5000

    def test_first_identifiers_short(self):
        assert len(_identifier(0)) == 1
        assert len(_identifier(93)) == 1
        assert len(_identifier(94)) == 2


class TestEmitVcd:
    def test_structure(self):
        vcd = emit_vcd(traced_run())
        assert vcd.startswith("$date")
        assert "$enddefinitions $end" in vcd
        assert "$timescale 1 ns $end" in vcd
        assert "a0_busy" in vcd and "b0_busy" in vcd

    def test_link_signals_present_when_traced(self):
        vcd = emit_vcd(traced_run(trace_links=True))
        assert "dma_req" in vcd
        assert "dma_rsp" in vcd

    def test_no_link_signals_without_tracing(self):
        vcd = emit_vcd(traced_run(trace_links=False))
        assert "dma_req" not in vcd
        assert "a0_busy" in vcd   # accelerator signals always there

    def test_busy_toggles_per_invocation(self):
        soc = traced_run(trace_links=False)
        vcd = emit_vcd(soc)
        # p2p mode: one streaming invocation each -> one rise per device
        # after the initial 0.
        ident = None
        for line in vcd.splitlines():
            if line.endswith("a0_busy $end"):
                ident = line.split()[3]
        assert ident is not None
        rises = [l for l in vcd.splitlines() if l == f"1{ident}"]
        assert len(rises) == 1

    def test_timestamps_monotonic(self):
        vcd = emit_vcd(traced_run())
        stamps = [int(l[1:]) for l in vcd.splitlines()
                  if l.startswith("#")]
        assert stamps == sorted(stamps)

    def test_max_links_cap(self):
        vcd = emit_vcd(traced_run(), max_links=2)
        link_vars = [l for l in vcd.splitlines()
                     if "$var" in l and "__to__" in l]
        assert len(link_vars) <= 2
