"""Tests for the VCD waveform exporter."""

import numpy as np
import pytest

from repro.runtime import EspRuntime, chain
from repro.soc import (SoCConfig, build_soc, emit_vcd,
                       parse_vcd_timescale, picoseconds_per_cycle)
from repro.soc.vcd import _identifier
from tests.conftest import make_spec


def traced_run(trace_links=True, n_frames=4):
    config = SoCConfig(cols=4, rows=1, name="vcd")
    config.add_cpu((0, 0))
    config.add_memory((1, 0))
    config.add_accelerator((2, 0), "a0",
                           make_spec(input_words=64, output_words=64,
                                     latency=100))
    config.add_accelerator((3, 0), "b0",
                           make_spec(input_words=64, output_words=64,
                                     latency=50))
    soc = build_soc(config, trace_links=trace_links)
    rt = EspRuntime(soc)
    frames = np.random.default_rng(0).uniform(0, 1, (n_frames, 64))
    rt.esp_run(chain("ab", ["a0", "b0"]), frames, mode="p2p")
    return soc


class TestIdentifiers:
    def test_unique_for_many_indices(self):
        idents = {_identifier(i) for i in range(5000)}
        assert len(idents) == 5000

    def test_first_identifiers_short(self):
        assert len(_identifier(0)) == 1
        assert len(_identifier(93)) == 1
        assert len(_identifier(94)) == 2


class TestEmitVcd:
    def test_structure(self):
        vcd = emit_vcd(traced_run())
        assert vcd.startswith("$date")
        assert "$enddefinitions $end" in vcd
        assert "a0_busy" in vcd and "b0_busy" in vcd

    def test_timescale_round_trips_from_clock(self):
        # The declared timescale must be derived from the SoC clock,
        # not hardcoded: timestamps are cycles scaled to picoseconds.
        soc = traced_run()
        magnitude, unit = parse_vcd_timescale(emit_vcd(soc))
        assert (magnitude, unit) == (1, "ps")
        # Default clock is 78 MHz -> a non-integer period in ns; the
        # ps multiplier carries it (rounded to the nearest ps).
        assert picoseconds_per_cycle(soc.clock_mhz) == round(
            1e6 / soc.clock_mhz)

    def test_timestamps_scaled_by_cycle_period(self):
        soc = traced_run()
        ps = picoseconds_per_cycle(soc.clock_mhz)
        stamps = [int(l[1:]) for l in emit_vcd(soc).splitlines()
                  if l.startswith("#")]
        assert stamps   # and every stamp is a whole number of cycles
        assert all(stamp % ps == 0 for stamp in stamps)
        assert stamps[-1] == soc.env.now * ps

    def test_parse_timescale_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_vcd_timescale("$date x $end\n$enddefinitions $end\n")
        with pytest.raises(ValueError):
            parse_vcd_timescale("$timescale banana $end\n")

    def test_link_signals_present_when_traced(self):
        vcd = emit_vcd(traced_run(trace_links=True))
        assert "dma_req" in vcd
        assert "dma_rsp" in vcd

    def test_no_link_signals_without_tracing(self):
        vcd = emit_vcd(traced_run(trace_links=False))
        assert "dma_req" not in vcd
        assert "a0_busy" in vcd   # accelerator signals always there

    def test_busy_toggles_per_invocation(self):
        soc = traced_run(trace_links=False)
        vcd = emit_vcd(soc)
        # p2p mode: one streaming invocation each -> one rise per device
        # after the initial 0.
        ident = None
        for line in vcd.splitlines():
            if line.endswith("a0_busy $end"):
                ident = line.split()[3]
        assert ident is not None
        rises = [l for l in vcd.splitlines() if l == f"1{ident}"]
        assert len(rises) == 1

    def test_timestamps_monotonic(self):
        vcd = emit_vcd(traced_run())
        stamps = [int(l[1:]) for l in vcd.splitlines()
                  if l.startswith("#")]
        assert stamps == sorted(stamps)

    def test_max_links_cap(self):
        vcd = emit_vcd(traced_run(), max_links=2)
        link_vars = [l for l in vcd.splitlines()
                     if "$var" in l and "__to__" in l]
        assert len(link_vars) <= 2


class TestBackToBackInvocations:
    """Two invocations sharing a boundary cycle (streaming restart)."""

    def _soc_with_boundary(self):
        from repro.soc.wrapper import InvocationResult

        config = SoCConfig(cols=3, rows=1, name="b2b")
        config.add_cpu((0, 0))
        config.add_memory((1, 0))
        config.add_accelerator((2, 0), "a0",
                               make_spec(input_words=8, output_words=8))
        soc = build_soc(config)
        tile = soc.accelerators["a0"]
        # Invocation 2 starts on the exact cycle invocation 1 ends.
        tile.invocations.append(InvocationResult(
            frames=1, start_cycle=100, end_cycle=200))
        tile.invocations.append(InvocationResult(
            frames=1, start_cycle=200, end_cycle=300))
        soc.env._now = 300
        return soc

    def test_vcd_boundary_cycle_stays_busy(self):
        # At the shared cycle the falling edge of invocation 1 and the
        # rising edge of invocation 2 collapse: later changes at the
        # same timestamp override earlier ones, so the wire stays 1.
        soc = self._soc_with_boundary()
        vcd = emit_vcd(soc, include_links=False)
        ident = next(line.split()[3] for line in vcd.splitlines()
                     if line.endswith("a0_busy $end"))
        ps = picoseconds_per_cycle(soc.clock_mhz)
        lines = vcd.splitlines()
        at_boundary = lines[lines.index(f"#{200 * ps}") + 1]
        assert at_boundary == f"1{ident}"
        # The run still ends with the wire low.
        at_end = lines[lines.index(f"#{300 * ps}") + 1]
        assert at_end == f"0{ident}"

    def test_utilization_clamped_to_window(self):
        from repro.eval import collect_spans, utilization_by_device

        soc = self._soc_with_boundary()
        assert [(s.start, s.end) for s in collect_spans(soc)] == \
            [(100, 200), (200, 300)]
        # A window shorter than the device's lifetime busy total must
        # clamp at 1.0, never exceed it.
        util = utilization_by_device(soc, window=(150, 250))
        assert util["a0"] == 1.0
        full = utilization_by_device(soc, window=(0, 400))
        assert full["a0"] == pytest.approx(200 / 400)
