"""Tests for the ping-pong (double-buffered) wrapper variant."""

import dataclasses

import numpy as np
import pytest

from repro.runtime import Dataflow, chain, replicated_stage
from tests.conftest import make_runtime, make_spec


def seq_spec(**kwargs):
    defaults = dict(name="k", input_words=32, output_words=32,
                    latency=800, interval=100)
    defaults.update(kwargs)
    return make_spec(**defaults)


def db_spec(**kwargs):
    return dataclasses.replace(seq_spec(**kwargs), double_buffered=True)


class TestCorrectness:
    @pytest.mark.parametrize("mode", ["base", "pipe", "p2p"])
    def test_outputs_match_sequential_wrapper(self, mode, rng):
        frames = rng.uniform(0, 1, (8, 32))
        outs = {}
        for label, spec in (("seq", seq_spec()), ("db", db_spec())):
            rt = make_runtime([("a0", spec)])
            outs[label] = rt.esp_run(Dataflow(name="a", devices=["a0"]),
                                     frames, mode=mode).outputs
        np.testing.assert_array_equal(outs["seq"], outs["db"])

    def test_two_stage_p2p_pipeline(self, rng):
        frames = rng.uniform(0, 1, (8, 32))
        rt = make_runtime([("a0", db_spec(name="a")),
                           ("b0", db_spec(name="b"))])
        result = rt.esp_run(chain("ab", ["a0", "b0"]), frames,
                            mode="p2p")
        np.testing.assert_allclose(result.outputs, frames + 2.0)

    def test_frame_order_preserved(self, rng):
        frames = np.arange(8 * 32, dtype=float).reshape(8, 32)
        rt = make_runtime([("a0", db_spec(compute=lambda f: f))])
        result = rt.esp_run(Dataflow(name="a", devices=["a0"]), frames,
                            mode="p2p")
        np.testing.assert_array_equal(result.outputs, frames)


class TestThroughput:
    def test_sustains_initiation_interval(self, rng):
        """With overlap, per-frame cadence approaches II, not latency."""
        n_frames = 16
        frames = rng.uniform(0, 1, (n_frames, 32))
        rt = make_runtime([("a0", db_spec(latency=1000, interval=150))])
        result = rt.esp_run(Dataflow(name="a", devices=["a0"]), frames,
                            mode="p2p")
        per_frame = result.cycles / n_frames
        assert per_frame < 1000 * 0.5   # far below the latency
        assert per_frame >= 150          # cannot beat the II

    def test_speedup_over_sequential(self, rng):
        frames = rng.uniform(0, 1, (16, 32))
        cycles = {}
        for label, spec in (("seq", seq_spec(latency=1000, interval=150)),
                            ("db", db_spec(latency=1000, interval=150))):
            rt = make_runtime([("a0", spec)])
            cycles[label] = rt.esp_run(
                Dataflow(name="a", devices=["a0"]), frames,
                mode="p2p").cycles
        assert cycles["db"] < 0.4 * cycles["seq"]

    def test_no_gain_when_latency_equals_interval(self, rng):
        """If the kernel is not pipelined (II == latency), ping-pong
        only hides the DMA time."""
        frames = rng.uniform(0, 1, (8, 32))
        cycles = {}
        for label, spec in (
                ("seq", seq_spec(latency=500, interval=500)),
                ("db", db_spec(latency=500, interval=500))):
            rt = make_runtime([("a0", spec)])
            cycles[label] = rt.esp_run(
                Dataflow(name="a", devices=["a0"]), frames,
                mode="p2p").cycles
        # Only the ~100-cycle DMA per frame is hidden.
        assert cycles["db"] < cycles["seq"]
        assert cycles["db"] > 0.7 * cycles["seq"]

    def test_dvfs_applies_to_pipelined_compute(self, rng):
        frames = rng.uniform(0, 1, (8, 32))
        cycles = {}
        for divider in (1, 4):
            rt = make_runtime([("a0", db_spec(latency=400,
                                              interval=100))])
            cycles[divider] = rt.esp_run(
                Dataflow(name="a", devices=["a0"]), frames, mode="p2p",
                dvfs={"a0": divider}).cycles
        assert cycles[4] > 2 * cycles[1]
