"""Tests for the last-level cache and LLC-coherent DMA."""

import numpy as np
import pytest

from repro.runtime import EspRuntime, chain
from repro.soc import LastLevelCache, SoCConfig, build_soc
from tests.conftest import make_spec


class TestCacheModel:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            LastLevelCache(capacity_words=8, line_words=16, ways=8)
        with pytest.raises(ValueError):
            LastLevelCache(capacity_words=1000, line_words=16, ways=8)

    def test_miss_then_hit(self):
        llc = LastLevelCache(capacity_words=1024, line_words=16, ways=4)
        hit, _ = llc.access_line(0, write=False)
        assert not hit
        hit, _ = llc.access_line(0, write=False)
        assert hit
        assert llc.hits == 1 and llc.misses == 1

    def test_lru_eviction(self):
        llc = LastLevelCache(capacity_words=128, line_words=16, ways=2)
        # One set (128/(16*2) = 4 sets); use lines mapping to set 0.
        lines = [0, 4, 8]   # all map to set 0 with 4 sets
        llc.access_line(lines[0], write=False)
        llc.access_line(lines[1], write=False)
        llc.access_line(lines[2], write=False)   # evicts line 0
        hit, _ = llc.access_line(lines[0], write=False)
        assert not hit
        assert llc.evictions >= 1

    def test_dirty_eviction_writes_back(self):
        llc = LastLevelCache(capacity_words=128, line_words=16, ways=2)
        llc.access_line(0, write=True)    # dirty
        llc.access_line(4, write=False)
        _, writeback = llc.access_line(8, write=False)  # evicts dirty 0
        assert writeback
        assert llc.writebacks == 1

    def test_flush_counts_dirty_lines(self):
        llc = LastLevelCache(capacity_words=1024, line_words=16, ways=4)
        llc.access_line(0, write=True)
        llc.access_line(1, write=False)
        assert llc.flush() == 1
        assert llc.resident_lines == 0

    def test_lines_of(self):
        llc = LastLevelCache(capacity_words=1024, line_words=16, ways=4)
        assert list(llc.lines_of(0, 16)) == [0]
        assert list(llc.lines_of(8, 16)) == [0, 1]
        assert len(list(llc.lines_of(0, 256))) == 16

    def test_hit_rate(self):
        llc = LastLevelCache(capacity_words=1024, line_words=16, ways=4)
        assert llc.hit_rate == 0.0
        llc.access_line(0, write=False)
        llc.access_line(0, write=False)
        assert llc.hit_rate == 0.5

    def test_writeback_accounting_across_evictions(self):
        """Every dirty eviction is one writeback; clean evictions are
        free, and a flush never double-counts a line already written
        back by an eviction."""
        llc = LastLevelCache(capacity_words=32, line_words=16, ways=2)
        # Single set (32 / (16*2)): every line aliases into it.
        llc.access_line(0, write=True)    # dirty
        llc.access_line(1, write=True)    # dirty
        _, wb = llc.access_line(2, write=False)   # evicts dirty 0
        assert wb and llc.writebacks == 1
        _, wb = llc.access_line(3, write=False)   # evicts dirty 1
        assert wb and llc.writebacks == 2
        _, wb = llc.access_line(4, write=False)   # evicts clean 2
        assert not wb and llc.writebacks == 2
        assert llc.evictions == 3
        # Lines 3 (clean) and 4 (clean) remain: nothing left to flush.
        assert llc.flush() == 0
        assert llc.writebacks == 2

    def test_rewritten_line_stays_dirty_until_written_back(self):
        """A read hit must not launder a dirty line clean."""
        llc = LastLevelCache(capacity_words=32, line_words=16, ways=2)
        llc.access_line(0, write=True)
        llc.access_line(0, write=False)   # read hit on the dirty line
        llc.access_line(1, write=False)
        _, wb = llc.access_line(2, write=False)   # evicts line 0
        assert wb and llc.writebacks == 1

    def test_line_granularity_aliasing(self):
        """Word addresses within one line are the same cache entry:
        two accelerators' buffers that straddle a line boundary share
        (and fight over) the boundary line."""
        llc = LastLevelCache(capacity_words=1024, line_words=16, ways=4)
        # Buffer A = words [0, 24), buffer B = words [24, 48): line 1
        # (words 16..31) belongs to both.
        a_lines = set(llc.lines_of(0, 24))
        b_lines = set(llc.lines_of(24, 24))
        assert a_lines == {0, 1}
        assert b_lines == {1, 2}
        assert a_lines & b_lines == {1}
        # A misses line 1 in; B's first touch of line 1 is then a hit.
        for line in sorted(a_lines):
            hit, _ = llc.access_line(line, write=True)
            assert not hit
        hit, _ = llc.access_line(1, write=False)
        assert hit

    def test_capacity_boundary_lru(self):
        """Filling a set exactly to ``ways`` evicts nothing; the next
        distinct line evicts the least-recently-*used* way, honouring
        hits as recency updates."""
        llc = LastLevelCache(capacity_words=64, line_words=16, ways=4)
        for line in (0, 1, 2, 3):      # single set, exactly full
            llc.access_line(line, write=False)
        assert llc.evictions == 0
        assert llc.resident_lines == 4
        llc.access_line(0, write=False)   # refresh 0: LRU is now 1
        llc.access_line(4, write=False)   # evicts line 1, not 0
        assert llc.evictions == 1
        hit, _ = llc.access_line(0, write=False)
        assert hit
        hit, _ = llc.access_line(1, write=False)
        assert not hit


def coherent_soc(llc_words=1 << 14):
    config = SoCConfig(cols=4, rows=2, name="coh")
    config.add_cpu((0, 0))
    config.add_memory((1, 0), size_words=1 << 16, llc_words=llc_words)
    config.add_aux((2, 0))
    spec = make_spec(input_words=256, output_words=256, latency=50)
    config.add_accelerator((3, 0), "a0", spec)
    config.add_accelerator((0, 1), "b0", spec)
    return build_soc(config)


class TestCoherentDma:
    def test_results_identical_to_non_coherent(self, rng):
        frames = rng.uniform(0, 1, (8, 256))
        outs = {}
        for coherent in (False, True):
            rt = EspRuntime(coherent_soc())
            result = rt.esp_run(chain("ab", ["a0", "b0"]), frames,
                                mode="pipe", coherent=coherent)
            outs[coherent] = result.outputs
        np.testing.assert_array_equal(outs[False], outs[True])

    def test_llc_absorbs_intermediate_traffic(self, rng):
        """The working set fits: the intermediate frame round trip
        stays in the LLC, cutting DRAM accesses like p2p does (this is
        why the paper's related work calls LLC-coherent DMA 'the most
        efficient model for non-trivial workloads')."""
        frames = rng.uniform(0, 1, (8, 256))
        dram = {}
        for coherent in (False, True):
            rt = EspRuntime(coherent_soc())
            result = rt.esp_run(chain("ab", ["a0", "b0"]), frames,
                                mode="pipe", coherent=coherent)
            dram[coherent] = result.dram_accesses
        assert dram[True] < dram[False]

    def test_llc_thrashes_when_working_set_exceeds_capacity(self, rng):
        """A tiny LLC cannot hold the stream: DRAM traffic returns."""
        frames = rng.uniform(0, 1, (8, 256))

        def run(llc_words):
            rt = EspRuntime(coherent_soc(llc_words=llc_words))
            return rt.esp_run(chain("ab", ["a0", "b0"]), frames,
                              mode="pipe", coherent=True).dram_accesses

        assert run(1 << 14) < run(256)

    def test_coherent_flag_without_llc_degrades_gracefully(self, rng):
        rt = EspRuntime(coherent_soc(llc_words=0))
        frames = rng.uniform(0, 1, (4, 256))
        result = rt.esp_run(chain("ab", ["a0", "b0"]), frames,
                            mode="pipe", coherent=True)
        np.testing.assert_allclose(result.outputs, frames + 2.0)

    def test_llc_stats_populated(self, rng):
        soc = coherent_soc()
        rt = EspRuntime(soc)
        frames = rng.uniform(0, 1, (8, 256))
        rt.esp_run(chain("ab", ["a0", "b0"]), frames, mode="pipe",
                   coherent=True)
        llc = soc.memory_map.tiles[0].llc
        stats = llc.stats()
        assert stats["hits"] > 0
        assert stats["misses"] > 0
