"""Tests for the memory tile (DRAM model) and the memory map."""

import numpy as np
import pytest

from repro.fixed import words_to_flits
from repro.noc import (
    DMA_REQUEST_PLANE,
    DMA_RESPONSE_PLANE,
    Mesh2D,
    MessageKind,
    Packet,
)
from repro.sim import Environment
from repro.soc import DmaRequest, MemoryMap, MemoryTile


def make_memory(size_words=4096):
    env = Environment()
    mesh = Mesh2D(env, 2, 1)
    tile = MemoryTile(env, mesh, (1, 0), size_words=size_words)
    return env, mesh, tile


def dma_request(op, offset, words, data=None, tag="t0"):
    return DmaRequest(op=op, offset=offset, words=words, word_bits=16,
                      reply_to=(0, 0), tag=tag, data=data)


def send_request(mesh, request, flits=0):
    mesh.send(Packet(src=(0, 0), dst=(1, 0), plane=DMA_REQUEST_PLANE,
                     kind=MessageKind.DMA_REQ, payload_flits=flits,
                     payload=request, tag=request.tag))


class TestDirectAccess:
    def test_write_read_roundtrip(self, rng):
        _, _, tile = make_memory()
        data = rng.uniform(-1, 1, 64)
        tile.write_words(100, data)
        np.testing.assert_array_equal(tile.read_words(100, 64), data)

    def test_out_of_range(self):
        _, _, tile = make_memory(size_words=128)
        with pytest.raises(ValueError):
            tile.read_words(100, 64)
        with pytest.raises(ValueError):
            tile.write_words(-1, np.zeros(4))

    def test_direct_access_does_not_count_as_dram_traffic(self):
        _, _, tile = make_memory()
        tile.write_words(0, np.ones(16))
        tile.read_words(0, 16)
        assert tile.total_accesses == 0


class TestDmaService:
    def test_load_returns_data_with_tag(self, rng):
        env, mesh, tile = make_memory()
        data = rng.uniform(-1, 1, 32)
        tile.write_words(64, data)
        send_request(mesh, dma_request("load", 64, 32, tag="ld1"))
        env.run()
        response = mesh.inbox((0, 0), DMA_RESPONSE_PLANE).try_get()
        assert response is not None
        assert response.tag == "ld1"
        assert response.kind is MessageKind.P2P_RSP or \
            response.kind is MessageKind.DMA_RSP
        np.testing.assert_array_equal(response.payload, data)

    def test_response_flit_count_matches_words(self):
        env, mesh, tile = make_memory()
        send_request(mesh, dma_request("load", 0, 100))
        env.run()
        response = mesh.inbox((0, 0), DMA_RESPONSE_PLANE).try_get()
        assert response.payload_flits == words_to_flits(100, 16, 64)

    def test_store_writes_and_counts(self, rng):
        env, mesh, tile = make_memory()
        data = rng.uniform(-1, 1, 16)
        send_request(mesh, dma_request("store", 32, 16, data=data),
                     flits=4)
        env.run()
        np.testing.assert_array_equal(tile.read_words(32, 16), data)
        assert tile.words_written == 16
        assert tile.store_transactions == 1

    def test_load_counts(self):
        env, mesh, tile = make_memory()
        send_request(mesh, dma_request("load", 0, 64))
        env.run()
        assert tile.words_read == 64
        assert tile.load_transactions == 1
        assert tile.total_accesses == 64

    def test_requests_served_serially(self):
        env, mesh, tile = make_memory()
        send_request(mesh, dma_request("load", 0, 400, tag="a"))
        send_request(mesh, dma_request("load", 0, 400, tag="b"))
        env.run()
        inbox = mesh.inbox((0, 0), DMA_RESPONSE_PLANE)
        first = inbox.try_get()
        second = inbox.try_get()
        assert first.tag == "a"
        # Second response delayed by the first's service time.
        assert second.delivered_at > first.delivered_at

    def test_request_validation(self):
        with pytest.raises(ValueError):
            dma_request("swizzle", 0, 4)
        with pytest.raises(ValueError):
            dma_request("load", 0, 0)
        with pytest.raises(ValueError):
            DmaRequest(op="store", offset=0, words=4, word_bits=16,
                       reply_to=(0, 0), tag="t", data=None)


class TestMemoryMap:
    def _two_tiles(self):
        env = Environment()
        mesh = Mesh2D(env, 3, 1)
        a = MemoryTile(env, mesh, (1, 0), size_words=1000)
        b = MemoryTile(env, mesh, (2, 0), size_words=1000)
        return MemoryMap([a, b]), a, b

    def test_owner_resolution(self):
        mm, a, b = self._two_tiles()
        assert mm.owner(0) == (a, 0)
        assert mm.owner(999) == (a, 999)
        assert mm.owner(1000) == (b, 0)
        assert mm.owner(1999) == (b, 999)

    def test_owner_out_of_range(self):
        mm, _, _ = self._two_tiles()
        with pytest.raises(ValueError):
            mm.owner(2000)

    def test_split_range_across_tiles(self):
        mm, a, b = self._two_tiles()
        parts = mm.split_range(900, 200)
        assert parts == [(a, 900, 100), (b, 0, 100)]

    def test_read_write_across_boundary(self, rng):
        mm, _, _ = self._two_tiles()
        data = rng.uniform(-1, 1, 200)
        mm.write_words(900, data)
        np.testing.assert_array_equal(mm.read_words(900, 200), data)

    def test_counters_aggregate(self):
        mm, a, b = self._two_tiles()
        a.words_read = 10
        b.words_written = 5
        assert mm.total_accesses == 15
        assert mm.words_read == 10
        assert mm.words_written == 5

    def test_empty_map_rejected(self):
        with pytest.raises(ValueError):
            MemoryMap([])
