"""Tests for the accelerator tile socket and the Fig. 4 wrapper."""

import numpy as np
import pytest

from repro.soc import (
    CMD_REG,
    CMD_START,
    DST_OFFSET_REG,
    InvocationConfig,
    N_FRAMES_REG,
    P2PConfig,
    SRC_OFFSET_REG,
    SRC_STRIDE_REG,
    STATUS_DONE,
    STATUS_IDLE,
)

from tests.conftest import make_soc, make_spec


def start_device(soc, name, src, dst, n_frames, p2p=P2PConfig(),
                 src_stride=0, dst_stride=0):
    """Configure and start an accelerator from the CPU side."""
    cpu = soc.cpu
    tile = soc.accelerator(name)

    def proc():
        writes = [
            (SRC_OFFSET_REG, src), (DST_OFFSET_REG, dst),
            (SRC_STRIDE_REG, src_stride), ("DST_STRIDE_REG", dst_stride),
            (N_FRAMES_REG, n_frames), ("P2P_REG", p2p.encode()),
            (CMD_REG, CMD_START),
        ]
        for reg, value in writes:
            yield from cpu.write_reg(tile.coord, reg, value)
        yield from cpu.wait_irq(name)

    return soc.env.process(proc())


class TestInvocationConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            InvocationConfig(src_offset=0, dst_offset=0, n_frames=0,
                             p2p=P2PConfig())
        with pytest.raises(ValueError):
            InvocationConfig(src_offset=-1, dst_offset=0, n_frames=1,
                             p2p=P2PConfig())
        with pytest.raises(ValueError):
            InvocationConfig(src_offset=0, dst_offset=0, n_frames=1,
                             p2p=P2PConfig(), src_stride=-1)


class TestSingleInvocation:
    def test_processes_frames_through_dram(self, rng):
        spec = make_spec(input_words=16, output_words=16)
        soc = make_soc([("acc0", spec)])
        frames = rng.uniform(0, 1, (4, 16))
        soc.memory_map.write_words(0, frames.reshape(-1))
        done = start_device(soc, "acc0", src=0, dst=1024, n_frames=4)
        soc.run(until=done)
        soc.run()
        out = soc.memory_map.read_words(1024, 64).reshape(4, 16)
        np.testing.assert_allclose(out, frames + 1.0)

    def test_status_transitions_and_irq(self):
        spec = make_spec()
        soc = make_soc([("acc0", spec)])
        tile = soc.accelerator("acc0")
        assert tile.status == STATUS_IDLE
        done = start_device(soc, "acc0", src=0, dst=512, n_frames=1)
        soc.run(until=done)
        assert tile.status == STATUS_DONE
        assert soc.cpu.irqs_received == 1

    def test_accounting(self):
        spec = make_spec()
        soc = make_soc([("acc0", spec)])
        done = start_device(soc, "acc0", src=0, dst=512, n_frames=3)
        soc.run(until=done)
        tile = soc.accelerator("acc0")
        assert tile.frames_processed == 3
        assert len(tile.invocations) == 1
        assert tile.invocations[0].frames == 3
        assert tile.busy_cycles >= 3 * spec.latency_cycles

    def test_per_frame_cost_includes_compute_latency(self):
        fast = make_spec(latency=10)
        slow = make_spec(latency=5000)

        def run_one(spec):
            soc = make_soc([("acc0", spec)])
            done = start_device(soc, "acc0", src=0, dst=512, n_frames=2)
            soc.run(until=done)
            return soc.accelerator("acc0").invocations[0].cycles

        assert run_one(slow) > run_one(fast) + 2 * 4900

    def test_strided_load(self, rng):
        spec = make_spec(input_words=8, output_words=8)
        soc = make_soc([("acc0", spec)])
        frames = rng.uniform(0, 1, (4, 8))
        # Interleave with stride 16: frames at 0, 16, 32, 48.
        for i, frame in enumerate(frames):
            soc.memory_map.write_words(i * 16, frame)
        done = start_device(soc, "acc0", src=0, dst=512, n_frames=4,
                            src_stride=16)
        soc.run(until=done)
        soc.run()
        out = soc.memory_map.read_words(512, 32).reshape(4, 8)
        np.testing.assert_allclose(out, frames + 1.0)

    def test_reinvocation_after_done(self):
        spec = make_spec()
        soc = make_soc([("acc0", spec)])
        done = start_device(soc, "acc0", src=0, dst=512, n_frames=1)
        soc.run(until=done)
        done2 = start_device(soc, "acc0", src=0, dst=512, n_frames=2)
        soc.run(until=done2)
        assert soc.accelerator("acc0").frames_processed == 3


class TestP2PBetweenTiles:
    def test_two_stage_p2p_pipeline(self, rng):
        producer = make_spec(name="prod", input_words=8, output_words=8)
        consumer = make_spec(name="cons", input_words=8, output_words=8)
        soc = make_soc([("prod0", producer), ("cons0", consumer)])
        frames = rng.uniform(0, 1, (3, 8))
        soc.memory_map.write_words(0, frames.reshape(-1))
        prod_coord = soc.accelerator("prod0").coord

        done_p = start_device(soc, "prod0", src=0, dst=0, n_frames=3,
                              p2p=P2PConfig(store_enabled=True))
        done_c = start_device(
            soc, "cons0", src=0, dst=2048, n_frames=3,
            p2p=P2PConfig(load_enabled=True, sources=(prod_coord,)))
        soc.run(until=soc.env.all_of([done_p, done_c]))
        soc.run()
        out = soc.memory_map.read_words(2048, 24).reshape(3, 8)
        np.testing.assert_allclose(out, frames + 2.0)

    def test_p2p_skips_dram_for_intermediate(self, rng):
        producer = make_spec(name="prod", input_words=8, output_words=8)
        consumer = make_spec(name="cons", input_words=8, output_words=8)
        soc = make_soc([("prod0", producer), ("cons0", consumer)])
        soc.memory_map.write_words(0, rng.uniform(0, 1, 24))
        prod_coord = soc.accelerator("prod0").coord
        done_p = start_device(soc, "prod0", src=0, dst=0, n_frames=3,
                              p2p=P2PConfig(store_enabled=True))
        done_c = start_device(
            soc, "cons0", src=0, dst=2048, n_frames=3,
            p2p=P2PConfig(load_enabled=True, sources=(prod_coord,)))
        soc.run(until=soc.env.all_of([done_p, done_c]))
        soc.run()
        # DRAM traffic: 24 words in (producer load) + 24 words out
        # (consumer store); the intermediate 24 words never appear.
        assert soc.memory_map.total_accesses == 48
