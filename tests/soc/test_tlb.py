"""Tests for the accelerator-tile TLB."""

import pytest

from repro.soc import Tlb


class TestTranslate:
    def test_cold_miss_then_hit(self):
        tlb = Tlb(page_words=1024, hit_latency=1, miss_latency=40)
        assert tlb.translate(0, 16) == 40
        assert tlb.translate(0, 16) == 1
        assert tlb.misses == 1 and tlb.hits == 1

    def test_spanning_pages(self):
        tlb = Tlb(page_words=1024)
        latency = tlb.translate(1000, 100)   # touches pages 0 and 1
        assert latency == 2 * tlb.miss_latency
        assert tlb.entries == 2

    def test_preload_makes_all_hits(self):
        tlb = Tlb(page_words=256)
        tlb.preload(0, 4096)
        assert tlb.translate(0, 4096) == 16 * tlb.hit_latency
        assert tlb.misses == 0

    def test_flush(self):
        tlb = Tlb()
        tlb.preload(0, 4096)
        tlb.flush()
        assert tlb.entries == 0
        assert tlb.translate(0, 1) == tlb.miss_latency

    def test_preload_empty_range_noop(self):
        tlb = Tlb()
        tlb.preload(0, 0)
        assert tlb.entries == 0

    def test_invalid_words(self):
        tlb = Tlb()
        with pytest.raises(ValueError):
            tlb.translate(0, 0)

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            Tlb(page_words=0)

    def test_stats_dict(self):
        tlb = Tlb()
        tlb.translate(0, 1)
        stats = tlb.stats()
        assert stats == {"hits": 0, "misses": 1, "entries": 1}
