"""Tests for the socket register file, LOCATION_REG and P2P_REG."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.soc import (
    CMD_REG,
    LOCATION_REG,
    MAX_P2P_SOURCES,
    P2PConfig,
    P2P_REG,
    RegisterFile,
    decode_location,
    encode_location,
)


class TestLocationReg:
    def test_encode_decode(self):
        assert decode_location(encode_location((3, 2))) == (3, 2)

    def test_read_only(self):
        regs = RegisterFile((1, 2))
        with pytest.raises(PermissionError):
            regs.write(LOCATION_REG, 0)

    def test_exposes_tile_coordinates(self):
        regs = RegisterFile((3, 1))
        assert regs.location() == (3, 1)

    @given(x=st.integers(0, 15), y=st.integers(0, 15))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_any_coordinate(self, x, y):
        assert decode_location(encode_location((x, y))) == (x, y)


class TestP2PConfig:
    def test_default_disabled(self):
        config = P2PConfig()
        assert not config.uses_p2p
        assert config.encode() == 0

    def test_store_only(self):
        config = P2PConfig(store_enabled=True)
        decoded = P2PConfig.decode(config.encode())
        assert decoded.store_enabled and not decoded.load_enabled

    def test_load_with_sources_roundtrip(self):
        config = P2PConfig(load_enabled=True,
                           sources=((1, 2), (3, 0), (0, 1)))
        decoded = P2PConfig.decode(config.encode())
        assert decoded == config

    def test_load_without_sources_rejected(self):
        with pytest.raises(ValueError):
            P2PConfig(load_enabled=True)

    def test_max_four_sources(self):
        sources = tuple((i, 0) for i in range(5))
        with pytest.raises(ValueError):
            P2PConfig(load_enabled=True, sources=sources)

    def test_coordinates_must_fit_nibbles(self):
        with pytest.raises(ValueError):
            P2PConfig(load_enabled=True, sources=((16, 0),))

    @given(store=st.booleans(),
           sources=st.lists(st.tuples(st.integers(0, 15),
                                      st.integers(0, 15)),
                            min_size=1, max_size=MAX_P2P_SOURCES))
    @settings(max_examples=100, deadline=None)
    def test_encode_decode_roundtrip(self, store, sources):
        config = P2PConfig(store_enabled=store, load_enabled=True,
                           sources=tuple(sources))
        assert P2PConfig.decode(config.encode()) == config


class TestRegisterFile:
    def test_standard_registers_present(self):
        regs = RegisterFile((0, 0))
        for name in (CMD_REG, "STATUS_REG", "SRC_OFFSET_REG",
                     "DST_OFFSET_REG", "SRC_STRIDE_REG", "DST_STRIDE_REG",
                     LOCATION_REG, P2P_REG):
            assert name in regs.names

    def test_user_registers(self):
        regs = RegisterFile((0, 0), user_registers=["GAIN_REG"])
        regs.write("GAIN_REG", 7)
        assert regs.read("GAIN_REG") == 7

    def test_user_register_collision(self):
        with pytest.raises(ValueError):
            RegisterFile((0, 0), user_registers=[CMD_REG])

    def test_unknown_register(self):
        regs = RegisterFile((0, 0))
        with pytest.raises(KeyError):
            regs.read("NOPE")
        with pytest.raises(KeyError):
            regs.write("NOPE", 1)

    def test_write_hooks_fire(self):
        regs = RegisterFile((0, 0))
        seen = []
        regs.on_write(lambda name, value: seen.append((name, value)))
        regs.write(CMD_REG, 1)
        assert seen == [(CMD_REG, 1)]

    def test_p2p_helpers(self):
        regs = RegisterFile((0, 0))
        config = P2PConfig(load_enabled=True, sources=((2, 1),))
        regs.set_p2p(config)
        assert regs.p2p_config() == config
