"""Edge-case tests for the wrapper invocation configuration."""

import pytest

from repro.soc import InvocationConfig, P2PConfig


class TestInvocationConfigValidation:
    def test_defaults(self):
        config = InvocationConfig(src_offset=0, dst_offset=0, n_frames=1,
                                  p2p=P2PConfig())
        assert config.src_stride == 0
        assert config.dst_stride == 0
        assert config.coherent is False
        assert config.clock_divider == 1

    @pytest.mark.parametrize("kwargs", [
        dict(n_frames=0),
        dict(n_frames=-3),
        dict(src_offset=-1),
        dict(dst_offset=-1),
        dict(src_stride=-1),
        dict(dst_stride=-1),
        dict(clock_divider=0),
    ])
    def test_rejections(self, kwargs):
        base = dict(src_offset=0, dst_offset=0, n_frames=1,
                    p2p=P2PConfig())
        base.update(kwargs)
        with pytest.raises(ValueError):
            InvocationConfig(**base)

    def test_frozen(self):
        config = InvocationConfig(src_offset=0, dst_offset=0, n_frames=1,
                                  p2p=P2PConfig())
        with pytest.raises(AttributeError):
            config.n_frames = 2
