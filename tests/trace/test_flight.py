"""FlightRecorder: alert-triggered postmortems, window capture, and
the dump-storm bound."""

import json

import pytest

from repro.metrics import HealthMonitor, SloRule, attach_metrics
from repro.sim import Environment
from repro.trace import (
    DEFAULT_WINDOW_CYCLES,
    POSTMORTEM_SCHEMA,
    FlightRecorder,
    Tracer,
    attach_tracer,
)


def breach_rule(name="always-breach", severity="critical"):
    return SloRule(name=name,
                   check=lambda reg, now: f"forced at cycle {now}",
                   severity=severity)


def healthy_rule():
    return SloRule(name="always-fine", check=lambda reg, now: None)


def stack(tmp_path, capacity=None, window=1_000, rules=(),
          max_dumps=16):
    env = Environment()
    tracer = attach_tracer(env, capacity=capacity)
    registry = attach_metrics(env)
    monitor = HealthMonitor(registry, list(rules))
    recorder = FlightRecorder(tmp_path / "pm", tracer,
                              window_cycles=window,
                              max_dumps=max_dumps).arm(monitor)
    return env, tracer, monitor, recorder


class TestValidation:
    def test_rejects_bad_window_and_dump_bounds(self):
        tracer = Tracer(Environment())
        with pytest.raises(ValueError):
            FlightRecorder("x", tracer, window_cycles=0)
        with pytest.raises(ValueError):
            FlightRecorder("x", tracer, max_dumps=0)
        with pytest.raises(ValueError):
            FlightRecorder("x", {})


class TestAlertTriggeredDump:
    def test_firing_alert_writes_postmortem(self, tmp_path):
        env, tracer, monitor, recorder = stack(
            tmp_path, rules=[breach_rule()])
        env.run(until=env.timeout(500))
        tracer.complete("a0", "wrapper", "c", "acc.compute", 100, 400,
                        trace_id="t-0")
        monitor.evaluate()

        assert len(recorder.dumps) == 1
        path = recorder.dumps[0]
        assert path.name == "postmortem-always-breach-c500.json"
        artifact = json.loads(path.read_text())
        assert artifact["schema"] == POSTMORTEM_SCHEMA
        assert artifact["cycle"] == 500
        assert artifact["window"] == [0, 500]
        assert artifact["alert"]["rule"] == "always-breach"
        assert artifact["alert"]["severity"] == "critical"
        assert artifact["alert"]["state"] == "firing"
        assert artifact["trace_ids"] == ["t-0"]
        names = [s["name"] for s in artifact["spans"]["soc"]]
        assert "c" in names
        assert artifact["metrics"] is not None
        assert artifact["dropped"] == {"soc": 0}

    def test_healthy_monitor_never_dumps(self, tmp_path):
        env, _, monitor, recorder = stack(
            tmp_path, rules=[healthy_rule()])
        monitor.evaluate()
        monitor.evaluate()
        assert recorder.dumps == [] and recorder.suppressed == 0

    def test_only_transitions_dump_not_steady_firing(self, tmp_path):
        env, _, monitor, recorder = stack(
            tmp_path, rules=[breach_rule()])
        monitor.evaluate()
        monitor.evaluate()   # still firing: no new transition
        assert len(recorder.dumps) == 1

    def test_window_excludes_old_spans(self, tmp_path):
        env, tracer, monitor, recorder = stack(
            tmp_path, window=100, rules=[breach_rule()])
        tracer.complete("a0", "w", "old", "acc.compute", 0, 10)
        env.run(until=env.timeout(1_000))
        tracer.complete("a0", "w", "recent", "acc.compute", 950, 990)
        monitor.evaluate()
        names = [s["name"] for s in json.loads(
            recorder.dumps[0].read_text())["spans"]["soc"]]
        assert names == ["recent"]

    def test_open_spans_captured_and_flagged(self, tmp_path):
        env, tracer, monitor, recorder = stack(
            tmp_path, rules=[breach_rule()])
        env.run(until=env.timeout(200))
        tracer.begin("a0", "w", "inflight", "acc.compute")
        env.run(until=env.timeout(50))
        monitor.evaluate()
        spans = json.loads(
            recorder.dumps[0].read_text())["spans"]["soc"]
        inflight = next(s for s in spans if s["name"] == "inflight")
        assert inflight["open"] is True
        assert inflight["end"] == 250   # clamped to the dump cycle

    def test_max_dumps_suppresses_storm(self, tmp_path):
        env, _, monitor, recorder = stack(
            tmp_path, max_dumps=2,
            rules=[breach_rule(f"storm-{i}") for i in range(5)])
        monitor.evaluate()
        assert len(recorder.dumps) == 2
        assert recorder.suppressed == 3

    def test_artifact_is_json_round_trippable(self, tmp_path):
        env, tracer, monitor, recorder = stack(
            tmp_path, rules=[breach_rule()])
        # Args with non-JSON values (tuples, objects) must be coerced.
        tracer.complete("a0", "w", 7, "acc.compute", 0, 10,
                        shape=(2, 3), obj=object())
        monitor.evaluate()
        artifact = json.loads(recorder.dumps[0].read_text())
        span = artifact["spans"]["soc"][0]
        assert span["name"] == "7"
        assert span["args"]["shape"] == [2, 3]
        assert isinstance(span["args"]["obj"], str)


class TestCapture:
    def test_capture_without_alert_or_registry(self):
        env = Environment()
        tracer = attach_tracer(env)
        tracer.complete("a0", "w", "c", "acc.compute", 0, 10)
        recorder = FlightRecorder("unused", tracer)
        artifact = recorder.capture(now=20)
        assert artifact["alert"] is None
        assert artifact["metrics"] is None
        assert artifact["window"] == [0, 20]
        assert len(artifact["spans"]["soc"]) == 1

    def test_default_window(self):
        recorder = FlightRecorder("unused", Tracer(Environment()))
        assert recorder.window_cycles == DEFAULT_WINDOW_CYCLES

    def test_controller_action_tail_included(self, tmp_path):
        class Action:
            cycle, kind, target = 5, "reshard", "classifier"
            rule, outcome, detail = "broken-tile", "applied", "moved"

        class Controller:
            actions = [Action()]

        env = Environment()
        tracer = attach_tracer(env)
        recorder = FlightRecorder(tmp_path, tracer,
                                  controller=Controller())
        artifact = recorder.capture(now=10)
        assert artifact["actions"] == [{
            "cycle": 5, "kind": "reshard", "target": "classifier",
            "rule": "broken-tile", "outcome": "applied",
            "detail": "moved"}]

    def test_namespaced_tracer_mapping_keys_sources(self):
        env0, env1 = Environment(), Environment()
        t0 = attach_tracer(env0, namespace="i0")
        t1 = attach_tracer(env1, namespace="i1")
        t0.complete("a", "w", "x", "cat", 0, 1)
        recorder = FlightRecorder("unused", {"i0": t0, "i1": t1})
        artifact = recorder.capture(now=5)
        assert set(artifact["spans"]) == {"i0", "i1"}
        assert set(artifact["dropped"]) == {"i0", "i1"}
