"""Tests for the core tracer: recording, queries, attachment, and the
zero-timing-impact guarantee across instrumented runs."""

import numpy as np
import pytest

from repro.runtime import chain
from repro.sim import Environment
from repro.trace import (
    Tracer,
    attach_tracer,
    detach_tracer,
    device_spans,
    device_spans_from_tracer,
)
from tests.conftest import make_runtime, make_spec


class FakeClock:
    """Minimal environment stand-in: the tracer only reads ``now``."""

    def __init__(self):
        self.now = 0
        self.tracer = None


class TestRecording:
    def test_begin_end_records_span(self):
        env = FakeClock()
        tracer = Tracer(env)
        sid = tracer.begin("tile", "wrapper", "load", "acc.load", n=4)
        env.now = 25
        span = tracer.end(sid, ok=True)
        assert (span.start, span.end, span.cycles) == (0, 25, 25)
        assert span.args == {"n": 4, "ok": True}
        assert tracer.spans == [span]
        assert tracer.open_spans == []

    def test_end_unknown_sid_raises(self):
        tracer = Tracer(FakeClock())
        with pytest.raises(KeyError):
            tracer.end(99)

    def test_complete_records_closed_interval(self):
        tracer = Tracer(FakeClock())
        span = tracer.complete("t", "e", "x", "cat", 10, 30)
        assert span.closed and span.cycles == 20

    def test_complete_rejects_backwards_interval(self):
        tracer = Tracer(FakeClock())
        with pytest.raises(ValueError):
            tracer.complete("t", "e", "x", "cat", 30, 10)

    def test_open_span_has_no_cycles(self):
        env = FakeClock()
        tracer = Tracer(env)
        sid = tracer.begin("t", "e", "x", "cat")
        (open_span,) = tracer.open_spans
        assert not open_span.closed
        with pytest.raises(ValueError):
            open_span.cycles
        assert tracer._open[sid] is open_span

    def test_instants_and_counters(self):
        env = FakeClock()
        tracer = Tracer(env)
        env.now = 5
        tracer.instant("serve", "tenant:a", "admit", "serve.submit")
        tracer.counter("serve", "queue_depth", depth=3)
        assert tracer.instants[0].ts == 5
        assert tracer.counters[0].values == {"depth": 3}

    def test_clear_drops_everything(self):
        env = FakeClock()
        tracer = Tracer(env)
        tracer.begin("t", "e", "x", "cat")
        tracer.complete("t", "e", "y", "cat", 0, 1)
        tracer.instant("t", "e", "i", "cat")
        tracer.counter("t", "c", v=1)
        tracer.clear()
        assert not tracer.spans and not tracer.open_spans
        assert not tracer.instants and not tracer.counters


class TestQueries:
    def _tracer(self):
        tracer = Tracer(FakeClock())
        tracer.complete("t", "e", "a", "dma.load", 0, 10)
        tracer.complete("t", "e", "b", "dma.store", 5, 15)
        tracer.complete("t", "e", "c", "dmax", 20, 30)
        tracer.complete("t", "e", "d", "acc.compute", 12, 18)
        return tracer

    def test_cat_filter_is_segment_prefix(self):
        tracer = self._tracer()
        cats = {s.cat for s in tracer.all_spans(cat="dma")}
        assert cats == {"dma.load", "dma.store"}   # not "dmax"
        assert [s.cat for s in tracer.all_spans(cat="dmax")] == ["dmax"]

    def test_all_spans_start_ordered(self):
        starts = [s.start for s in self._tracer().all_spans()]
        assert starts == sorted(starts)

    def test_spans_between_half_open_window(self):
        tracer = self._tracer()
        names = {s.name for s in tracer.spans_between(10, 20)}
        # [0,10) ends exactly at the window start: excluded.
        assert names == {"b", "d"}

    def test_find_span_by_cat_name_index(self):
        tracer = self._tracer()
        assert tracer.find_span("dma").name == "a"
        assert tracer.find_span("dma", index=1).name == "b"
        assert tracer.find_span("dma", name="b").name == "b"
        with pytest.raises(KeyError):
            tracer.find_span("nope")


class TestFlightRecorderRing:
    def _filled(self, capacity, n):
        env = FakeClock()
        tracer = Tracer(env, capacity=capacity)
        for i in range(n):
            tracer.complete("t", "e", f"s{i}", "cat", i, i + 1)
        return tracer

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tracer(FakeClock(), capacity=0)

    def test_eviction_keeps_last_capacity_within_double_bound(self):
        # Amortized compaction: between 'capacity' and '2 * capacity'
        # records held at any instant, always the most recent ones.
        capacity = 8
        for n in (7, 16, 17, 100):
            tracer = self._filled(capacity, n)
            held = len(tracer.spans)
            assert held <= 2 * capacity
            if n <= 2 * capacity:
                assert held == n and tracer.dropped == 0
            else:
                assert held >= capacity
                assert tracer.dropped == n - held
                # The survivors are exactly the newest records.
                assert [s.name for s in tracer.spans] == \
                    [f"s{i}" for i in range(n - held, n)]

    def test_dropped_counters_split_by_record_kind(self):
        env = FakeClock()
        tracer = Tracer(env, capacity=2)
        for i in range(10):
            tracer.complete("t", "e", "s", "cat", i, i + 1)
            tracer.instant("t", "e", "i", "cat")
            tracer.counter("t", "c", v=i)
        assert tracer.dropped_spans > 0
        assert tracer.dropped_instants > 0
        assert tracer.dropped_counters > 0
        assert tracer.dropped == (tracer.dropped_spans
                                  + tracer.dropped_instants
                                  + tracer.dropped_counters)

    def test_open_spans_never_evicted(self):
        env = FakeClock()
        tracer = Tracer(env, capacity=2)
        sid = tracer.begin("t", "e", "inflight", "cat")
        for i in range(20):
            tracer.complete("t", "e", "s", "cat", i, i + 1)
        assert [s.name for s in tracer.open_spans] == ["inflight"]
        env.now = 30
        span = tracer.end(sid)
        assert span.end == 30

    def test_windowing_still_exact_after_eviction(self):
        tracer = self._filled(8, 100)
        survivors = {s.name for s in tracer.spans}
        window = {s.name for s in tracer.spans_between(90, 200)}
        assert window == {name for name in survivors
                          if int(name[1:]) + 1 > 90}

    def test_unbounded_tracer_never_drops(self):
        tracer = Tracer(FakeClock())
        for i in range(500):
            tracer.complete("t", "e", f"s{i}", "cat", i, i + 1)
        assert len(tracer.spans) == 500 and tracer.dropped == 0


class TestSpansBetweenBisect:
    def _interleaved(self, tracer):
        # begin/end nesting appends spans in END order, not start
        # order: outer (start 0) lands after inner (start 10).
        env = tracer.env
        outer = tracer.begin("t", "e", "outer", "cat")
        env.now = 10
        inner = tracer.begin("t", "e", "inner", "cat")
        env.now = 20
        tracer.end(inner)
        env.now = 40
        tracer.end(outer)

    def test_record_order_is_end_monotone_not_start_monotone(self):
        # The regression guard for the bisect fast path: it is END
        # cycles that are monotone at record time, not starts.
        env = FakeClock()
        tracer = Tracer(env)
        self._interleaved(tracer)
        starts = [s.start for s in tracer.spans]
        ends = [s.end for s in tracer.spans]
        assert starts != sorted(starts)
        assert ends == sorted(ends)
        assert tracer._ends_sorted

    def test_bisect_matches_linear_scan(self):
        env = FakeClock()
        tracer = Tracer(env)
        self._interleaved(tracer)
        for i in range(30):
            tracer.complete("t", "e", f"s{i}", "cat",
                            40 + 3 * i, 45 + 3 * i)
        assert tracer._ends_sorted
        for t0, t1 in ((0, 1000), (0, 10), (15, 42), (41, 41),
                       (50, 90), (130, 131), (200, 300)):
            fast = tracer.spans_between(t0, t1)
            slow = [s for s in tracer.spans
                    if s.end is not None and s.end > t0
                    and s.start < t1]
            assert fast == slow, (t0, t1)

    def test_backdated_complete_falls_back_correctly(self):
        env = FakeClock()
        tracer = Tracer(env)
        for i in range(10):
            tracer.complete("t", "e", f"s{i}", "cat",
                            10 * i, 10 * i + 5)
        # Back-dated record: breaks end-monotonicity, must disable
        # the fast path rather than silently miss it in windows.
        tracer.complete("t", "e", "late", "cat", 3, 4)
        assert not tracer._ends_sorted
        names = {s.name for s in tracer.spans_between(0, 10)}
        assert "late" in names and "s0" in names

    def test_eviction_of_unsorted_prefix_restores_fast_path(self):
        env = FakeClock()
        tracer = Tracer(env, capacity=4)
        tracer.complete("t", "e", "a", "cat", 0, 100)
        tracer.complete("t", "e", "late", "cat", 0, 1)
        assert not tracer._ends_sorted
        for i in range(10):
            tracer.complete("t", "e", f"s{i}", "cat",
                            200 + i, 201 + i)
        assert tracer._ends_sorted

    def test_clear_resets_fast_path_state(self):
        tracer = Tracer(FakeClock())
        tracer.complete("t", "e", "a", "cat", 0, 100)
        tracer.complete("t", "e", "late", "cat", 0, 1)
        tracer.clear()
        assert tracer._ends_sorted and tracer._ends == []


class TestAttachment:
    def test_attach_sets_env_tracer(self):
        env = Environment()
        tracer = attach_tracer(env)
        assert env.tracer is tracer

    def test_attach_is_idempotent(self):
        env = Environment()
        assert attach_tracer(env) is attach_tracer(env)

    def test_attach_through_env_carrier(self):
        env = Environment()

        class Carrier:
            pass

        carrier = Carrier()
        carrier.env = env
        tracer = attach_tracer(carrier)
        assert env.tracer is tracer

    def test_detach_returns_tracer_and_disables(self):
        env = Environment()
        tracer = attach_tracer(env)
        assert detach_tracer(env) is tracer
        assert env.tracer is None
        assert detach_tracer(env) is None

    def test_namespace_mismatch_refuses_reattach(self):
        env = Environment()
        attach_tracer(env, namespace="i0")
        with pytest.raises(ValueError, match="i0.*i1"):
            attach_tracer(env, namespace="i1")
        # Same namespace (or none requested) stays idempotent.
        assert attach_tracer(env, namespace="i0").namespace == "i0"
        assert attach_tracer(env).namespace == "i0"


def p2p_run(tracing):
    specs = [("a0", make_spec(name="a", input_words=8, output_words=8,
                              latency=120)),
             ("b0", make_spec(name="b", input_words=8, output_words=8,
                              latency=60))]
    rt = make_runtime(specs)
    tracer = attach_tracer(rt.soc) if tracing else None
    frames = np.random.default_rng(7).uniform(0, 1, (4, 8))
    result = rt.esp_run(chain("ab", ["a0", "b0"]), frames, mode="p2p")
    return rt, result, tracer


class TestInstrumentedRun:
    def test_traced_run_is_cycle_identical_to_untraced(self):
        # The tentpole invariant: tracing observes, never perturbs.
        _, untraced, _ = p2p_run(tracing=False)
        _, traced, _ = p2p_run(tracing=True)
        assert traced.cycles == untraced.cycles
        assert traced.ioctl_calls == untraced.ioctl_calls
        np.testing.assert_array_equal(traced.outputs, untraced.outputs)

    def test_expected_categories_present(self):
        _, _, tracer = p2p_run(tracing=True)
        cats = {s.cat for s in tracer.spans}
        for expected in ("runtime.ioctl", "runtime.config",
                         "runtime.irq_wait", "runtime.spawn",
                         "runtime.run", "acc.invocation", "acc.load",
                         "acc.compute", "acc.store", "noc.packet",
                         "noc.link", "sim.process", "dma.p2p_load",
                         "dma.p2p_store", "dma.p2p_serve", "dma.load",
                         "dma.store"):
            assert expected in cats, f"missing {expected}"

    def test_untraced_run_records_nothing(self):
        rt, _, tracer = p2p_run(tracing=False)
        assert tracer is None and rt.soc.env.tracer is None

    def test_store_unification(self):
        # Spans reconstructed from the tracer must equal the spans read
        # from the sockets' invocation records.
        rt, _, tracer = p2p_run(tracing=True)
        assert device_spans_from_tracer(tracer) == device_spans(rt.soc)

    def test_invocation_spans_carry_device(self):
        _, _, tracer = p2p_run(tracing=True)
        spans = tracer.all_spans(cat="acc.invocation")
        assert {s.args["device"] for s in spans} == {"a0", "b0"}

    def test_all_spans_closed_after_run(self):
        _, _, tracer = p2p_run(tracing=True)
        # Steady-state servers (io/p2p/run loops) are still parked on
        # their queues, so only spans, not processes, must be closed.
        open_cats = {s.cat for s in tracer.open_spans}
        assert "acc.invocation" not in open_cats
        assert "runtime.ioctl" not in open_cats
        assert "dma.load" not in open_cats
