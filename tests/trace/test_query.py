"""trace-query: waterfall reconstruction and cycle attribution from
an exported Chrome trace."""

import pytest

from repro.trace import (
    QUERY_GROUPS,
    Tracer,
    load_trace,
    merge_chrome_traces,
    query_trace,
    to_chrome_trace,
    trace_ids_in,
)
from tests.trace.test_export import _Decision
from tests.trace.test_tracer import FakeClock


def request_tracer():
    """One request's records plus unrelated noise, single SoC."""
    env = FakeClock()
    tracer = Tracer(env)
    env.now = 10
    tracer.instant("serve", "tenant:app", "admit", "serve.submit",
                   trace_id="t-0")
    tracer.complete("serve", "tenant:app", "0", "serve.request",
                    10, 200, trace_id="t-0")
    tracer.complete("serve", "tenant:app", "dispatch",
                    "serve.dispatch", 50, 190, trace_id="t-0")
    tracer.complete("cpu", "driver", "ioctl", "runtime.ioctl",
                    55, 60, trace_id="t-0")
    tracer.complete("mem0", "dma", "load", "dma.load", 60, 100,
                    trace_id="t-0")
    tracer.complete("a0", "wrapper", "c", "acc.compute", 100, 170,
                    trace_id="t-0")
    tracer.complete("noc", "dma_req", "PKT", "noc.packet", 60, 70,
                    trace_id="t-0")
    # A second request and an untagged span: must not leak into t-0.
    tracer.complete("serve", "tenant:app", "1", "serve.request",
                    300, 400, trace_id="t-1")
    tracer.complete("a0", "wrapper", "c", "acc.compute", 300, 350)
    env.now = 400
    return tracer


class TestTraceIdsIn:
    def test_collects_singular_and_plural_ids(self):
        env = FakeClock()
        tracer = Tracer(env)
        tracer.complete("a0", "w", "c", "acc.compute", 0, 10,
                        trace_id="t-0", trace_ids=("t-0", "t-5"))
        tracer.complete("a0", "w", "c", "acc.compute", 10, 20,
                        trace_id="t-1")
        trace = to_chrome_trace(tracer)
        assert trace_ids_in(trace) == ["t-0", "t-1", "t-5"]

    def test_empty_trace(self):
        assert trace_ids_in({"traceEvents": []}) == []


class TestQueryTrace:
    def test_waterfall_collects_only_matching_events(self):
        timeline = query_trace(to_chrome_trace(request_tracer()),
                               "t-0")
        assert len(timeline.events) == 7
        assert all(e.args.get("trace_id") == "t-0"
                   for e in timeline.events)
        starts = [e.start for e in timeline.events]
        assert starts == sorted(starts)

    def test_latency_and_queue_cycles(self):
        timeline = query_trace(to_chrome_trace(request_tracer()),
                               "t-0")
        assert timeline.latency_cycles == 190    # request span
        assert timeline.queue_cycles == 40       # admit -> dispatch
        assert timeline.start == 10 and timeline.end == 200

    def test_busy_cycles_grouped_by_stage(self):
        timeline = query_trace(to_chrome_trace(request_tracer()),
                               "t-0")
        assert timeline.busy_cycles["software"] == 5
        assert timeline.busy_cycles["dma"] == 40
        assert timeline.busy_cycles["compute"] == 70
        assert timeline.busy_cycles["noc"] == 10
        assert set(timeline.busy_cycles) <= set(QUERY_GROUPS)

    def test_clock_scaling_round_trips_to_cycles(self):
        # Export at a non-trivial clock: µs timestamps must convert
        # back to exact integer cycles.
        trace = to_chrome_trace(request_tracer(), clock_mhz=78.0)
        timeline = query_trace(trace, "t-0")
        assert timeline.latency_cycles == 190
        assert timeline.busy_cycles["compute"] == 70

    def test_async_pairs_reassembled(self):
        # serve.request and noc.packet export as b/e pairs; the query
        # must reassemble them into single closed events.
        trace = to_chrome_trace(request_tracer())
        timeline = query_trace(trace, "t-0")
        request = next(e for e in timeline.events
                       if e.cat == "serve.request")
        assert (request.start, request.end) == (10, 200)
        packet = next(e for e in timeline.events
                      if e.cat == "noc.packet")
        assert (packet.start, packet.end) == (60, 70)

    def test_batched_request_matches_trace_ids_tuple(self):
        env = FakeClock()
        tracer = Tracer(env)
        tracer.complete("serve", "tenant:app", "dispatch",
                        "serve.dispatch", 0, 50, trace_id="t-0",
                        trace_ids=("t-0", "t-1"))
        timeline = query_trace(to_chrome_trace(tracer), "t-1")
        assert len(timeline.events) == 1

    def test_unknown_id_yields_empty_timeline(self):
        timeline = query_trace(to_chrome_trace(request_tracer()),
                               "t-99")
        assert timeline.events == []
        assert timeline.latency_cycles is None

    def test_routed_to_from_merged_decision(self):
        tracer = request_tracer()
        tracer.namespace = "i0"
        trace = merge_chrome_traces(
            {"i0": tracer},
            decisions=[_Decision(10, "app", "i0", trace_id="t-0")])
        timeline = query_trace(trace, "t-0")
        assert timeline.routed_to == "i0"
        assert timeline.routed_at == 10
        assert any(e.track == "router/route" for e in timeline.events)

    def test_render_shows_header_and_rows(self):
        timeline = query_trace(to_chrome_trace(request_tracer()),
                               "t-0")
        text = timeline.render()
        assert "== trace t-0: 7 events ==" in text
        assert "latency 190 cycles (queue 40)" in text
        assert "busy cycles by stage:" in text
        assert "acc.compute" in text

    def test_render_limit_truncates(self):
        timeline = query_trace(to_chrome_trace(request_tracer()),
                               "t-0")
        text = timeline.render(limit=2)
        assert "... 5 more events" in text


class TestLoadTrace:
    def test_round_trip_through_disk(self, tmp_path):
        import json

        trace = to_chrome_trace(request_tracer(), clock_mhz=78.0)
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(trace))
        loaded = load_trace(path)
        assert trace_ids_in(loaded) == ["t-0", "t-1"]
        assert query_trace(loaded, "t-0").latency_cycles == 190
