"""Tests for the Chrome trace-event exporter, the schema validator and
the flame summary."""

import json

import pytest

from repro.trace import (
    ASYNC_CATEGORIES,
    Tracer,
    attach_tracer,
    flame_summary,
    merge_chrome_traces,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from tests.trace.test_tracer import FakeClock, p2p_run


def synthetic_tracer():
    env = FakeClock()
    tracer = Tracer(env)
    tracer.complete("a0", "wrapper", "load f0", "acc.load", 0, 10, n=64)
    tracer.complete("a0", "wrapper", "compute f0", "acc.compute", 10, 40)
    tracer.complete("a0", "socket", "toy", "acc.invocation", 0, 50,
                    device="a0")
    tracer.complete("noc", "dma_req", "DMA_REQ", "noc.packet", 2, 9)
    tracer.complete("noc", "dma_req", "DMA_REQ", "noc.packet", 5, 12)
    env.now = 7
    tracer.instant("a0", "socket", "irq", "acc.irq", status=1)
    tracer.counter("serve", "queue_depth", depth=2)
    return tracer


class TestToChromeTrace:
    def test_metadata_names_every_track(self):
        trace = to_chrome_trace(synthetic_tracer())
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        process_names = {e["args"]["name"] for e in meta
                         if e["name"] == "process_name"}
        thread_names = {e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        assert process_names == {"a0", "noc", "serve"}
        assert {"wrapper", "socket", "dma_req"} <= thread_names

    def test_overlapping_categories_export_as_async_pairs(self):
        trace = to_chrome_trace(synthetic_tracer())
        events = trace["traceEvents"]
        # The two overlapping noc.packet spans must not be X events on
        # one track (Perfetto would mis-nest them).
        assert "noc.packet" in ASYNC_CATEGORIES
        noc = [e for e in events if e.get("cat") == "noc.packet"]
        assert {e["ph"] for e in noc} == {"b", "e"}
        begins = sum(1 for e in noc if e["ph"] == "b")
        ends = sum(1 for e in noc if e["ph"] == "e")
        assert begins == ends == 2

    def test_plain_spans_export_as_complete_events(self):
        trace = to_chrome_trace(synthetic_tracer())
        load = next(e for e in trace["traceEvents"]
                    if e.get("cat") == "acc.load")
        assert load["ph"] == "X"
        assert (load["ts"], load["dur"]) == (0, 10)
        assert load["args"] == {"n": 64}

    def test_clock_scales_cycles_to_microseconds(self):
        trace = to_chrome_trace(synthetic_tracer(), clock_mhz=100.0)
        load = next(e for e in trace["traceEvents"]
                    if e.get("cat") == "acc.load")
        assert load["dur"] == pytest.approx(0.1)   # 10 cycles @ 100 MHz
        assert trace["otherData"]["clock_mhz"] == 100.0

    def test_rejects_nonpositive_clock(self):
        with pytest.raises(ValueError):
            to_chrome_trace(synthetic_tracer(), clock_mhz=0)

    def test_instants_and_counters_exported(self):
        trace = to_chrome_trace(synthetic_tracer())
        phs = {e["ph"] for e in trace["traceEvents"]}
        assert "i" in phs and "C" in phs
        counter = next(e for e in trace["traceEvents"] if e["ph"] == "C")
        assert counter["args"] == {"depth": 2}

    def test_counters_can_be_dropped(self):
        trace = to_chrome_trace(synthetic_tracer(),
                                include_counters=False)
        assert not any(e["ph"] == "C" for e in trace["traceEvents"])

    def test_open_spans_clamped_to_export_cycle(self):
        tracer = synthetic_tracer()
        tracer.env.now = 60
        tracer.begin("a0", "wrapper", "dangling", "acc.load")
        tracer.env.now = 100
        trace = to_chrome_trace(tracer)
        assert trace["otherData"]["open_spans"] == 1
        dangling = next(e for e in trace["traceEvents"]
                        if e["name"] == "dangling")
        # Clamped to the export cycle and flagged, so mid-run dumps
        # keep in-flight work instead of silently losing it.
        assert dangling["ph"] == "X"
        assert dangling["args"]["open"] is True
        assert (dangling["ts"], dangling["dur"]) == (60, 40)
        assert validate_chrome_trace(trace) == []

    def test_open_async_spans_export_balanced(self):
        tracer = synthetic_tracer()
        tracer.env.now = 20
        tracer.begin("noc", "dma_req", "INFLIGHT", "noc.packet")
        tracer.env.now = 25
        trace = to_chrome_trace(tracer)
        inflight = [e for e in trace["traceEvents"]
                    if e["name"] == "INFLIGHT"]
        assert {e["ph"] for e in inflight} == {"b", "e"}
        assert all(e["args"]["open"] is True for e in inflight)
        assert validate_chrome_trace(trace) == []


class TestValidator:
    def test_synthetic_trace_is_valid(self):
        assert validate_chrome_trace(to_chrome_trace(
            synthetic_tracer())) == []

    def test_traced_p2p_run_is_valid(self):
        _, _, tracer = p2p_run(tracing=True)
        trace = to_chrome_trace(tracer, clock_mhz=78.0)
        assert validate_chrome_trace(trace) == []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) == \
            ["traceEvents missing or not a list"]

    def test_rejects_missing_required_keys(self):
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "ts": 0}]})
        assert any("missing" in p for p in problems)

    def test_rejects_negative_timestamps_and_durations(self):
        bad_ts = {"traceEvents": [
            {"ph": "i", "name": "x", "pid": 1, "ts": -1}]}
        assert any("bad ts" in p
                   for p in validate_chrome_trace(bad_ts))
        bad_dur = {"traceEvents": [
            {"ph": "X", "name": "x", "pid": 1, "ts": 0, "dur": -5}]}
        assert any("bad dur" in p
                   for p in validate_chrome_trace(bad_dur))

    def test_rejects_unbalanced_async(self):
        dangling_end = {"traceEvents": [
            {"ph": "e", "name": "p", "pid": 1, "ts": 1, "id": 7}]}
        assert any("end without begin" in p
                   for p in validate_chrome_trace(dangling_end))
        dangling_begin = {"traceEvents": [
            {"ph": "b", "name": "p", "pid": 1, "ts": 1, "id": 7}]}
        assert any("left 1 open" in p
                   for p in validate_chrome_trace(dangling_begin))

    def test_rejects_straddling_spans_on_one_track(self):
        straddle = {"traceEvents": [
            {"ph": "X", "name": "a", "pid": 1, "tid": 1,
             "ts": 0, "dur": 10},
            {"ph": "X", "name": "b", "pid": 1, "tid": 1,
             "ts": 5, "dur": 10},
        ]}
        assert any("straddles" in p
                   for p in validate_chrome_trace(straddle))

    def test_accepts_nested_and_disjoint_spans(self):
        fine = {"traceEvents": [
            {"ph": "X", "name": "outer", "pid": 1, "tid": 1,
             "ts": 0, "dur": 10},
            {"ph": "X", "name": "inner", "pid": 1, "tid": 1,
             "ts": 2, "dur": 4},
            {"ph": "X", "name": "later", "pid": 1, "tid": 1,
             "ts": 10, "dur": 3},
        ]}
        assert validate_chrome_trace(fine) == []


class _Decision:
    """RouterDecision stand-in with the fields the exporter reads."""

    def __init__(self, at, tenant, instance, trace_id=None):
        self.at = at
        self.tenant = tenant
        self.instance = instance
        self.policy = "round-robin"
        self.shard = ("i0", "i1")
        self.score = 0.0
        self.trace_id = trace_id


def fleet_tracers():
    tracers = {}
    for index, ns in enumerate(("i0", "i1")):
        env = FakeClock()
        tracer = Tracer(env, namespace=ns)
        tracer.complete("a0", "wrapper", "c", "acc.compute", 0, 40,
                        trace_id=f"f-{index}")
        # Same bare sids in both tracers; overlapping async spans.
        tracer.complete("noc", "dma_req", "PKT", "noc.packet", 2, 9)
        tracer.complete("noc", "dma_req", "PKT", "noc.packet", 5, 12)
        env.now = 50
        tracers[ns] = tracer
    return tracers


class TestMergeChromeTraces:
    def test_tracks_namespaced_per_instance(self):
        trace = merge_chrome_traces(fleet_tracers())
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"
                and e["name"] == "process_name"]
        names = {e["args"]["name"] for e in meta}
        assert {"i0/a0", "i0/noc", "i1/a0", "i1/noc"} <= names
        assert trace["otherData"]["instances"] == ["i0", "i1"]
        assert trace["otherData"]["spans"] == 6

    def test_merged_trace_is_valid(self):
        assert validate_chrome_trace(
            merge_chrome_traces(fleet_tracers())) == []

    def test_async_ids_do_not_collide_across_instances(self):
        # Both tracers number their spans 0..2; the merge must keep
        # each instance's begin/end pairs distinct.
        trace = merge_chrome_traces(fleet_tracers())
        async_ids = {e["id"] for e in trace["traceEvents"]
                     if e.get("ph") in ("b", "e")}
        assert any(str(i).startswith("i0/") for i in async_ids)
        assert any(str(i).startswith("i1/") for i in async_ids)
        assert validate_chrome_trace(trace) == []

    def test_router_decisions_become_instants_with_trace_id(self):
        decisions = [_Decision(5, "tenant-a", "i0", trace_id="f-0"),
                     _Decision(9, "tenant-b", "i1")]
        trace = merge_chrome_traces(fleet_tracers(),
                                    decisions=decisions)
        routes = [e for e in trace["traceEvents"]
                  if e.get("cat") == "fleet.route"]
        assert [e["ph"] for e in routes] == ["i", "i"]
        assert routes[0]["args"]["trace_id"] == "f-0"
        assert routes[0]["args"]["instance"] == "i0"
        assert "trace_id" not in routes[1]["args"]
        assert trace["otherData"]["router_decisions"] == 2

    def test_namespace_mismatch_raises(self):
        tracers = fleet_tracers()
        with pytest.raises(ValueError, match="does not match"):
            merge_chrome_traces({"wrong": tracers["i0"]})

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            merge_chrome_traces({})
        with pytest.raises(ValueError):
            merge_chrome_traces({"": Tracer(FakeClock())})
        with pytest.raises(ValueError):
            merge_chrome_traces(fleet_tracers(), clock_mhz=0)

    def test_dropped_counts_aggregate(self):
        tracers = fleet_tracers()
        ring = Tracer(FakeClock(), namespace="i2", capacity=1)
        for i in range(5):
            ring.complete("t", "e", "s", "cat", i, i + 1)
        tracers["i2"] = ring
        trace = merge_chrome_traces(tracers)
        assert trace["otherData"]["dropped"] == ring.dropped > 0


class TestRoundTrip:
    def test_write_chrome_trace_serializes_valid_json(self, tmp_path):
        _, _, tracer = p2p_run(tracing=True)
        path = tmp_path / "trace.json"
        written = write_chrome_trace(tracer, str(path), clock_mhz=78.0)
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert validate_chrome_trace(loaded) == []
        assert loaded["otherData"]["spans"] == len(tracer.spans)


class TestFlameSummary:
    def test_hottest_track_first(self):
        tracer = Tracer(FakeClock())
        tracer.complete("a0", "wrapper", "c", "acc.compute", 0, 900)
        tracer.complete("b0", "wrapper", "c", "acc.compute", 0, 100)
        text = flame_summary(tracer)
        assert text.index("a0 / wrapper") < text.index("b0 / wrapper")
        assert "900" in text

    def test_top_limits_rows(self):
        tracer = Tracer(FakeClock())
        for i in range(30):
            tracer.complete(f"t{i}", "e", "x", "cat", 0, 30 - i)
        text = flame_summary(tracer, top=5)
        assert "top 5 tracks" in text
        assert text.count("\n") == 6   # header + column row + 5 entries

    def test_clock_converts_to_microseconds(self):
        tracer = Tracer(FakeClock())
        tracer.complete("a0", "wrapper", "c", "acc.compute", 0, 780)
        text = flame_summary(tracer, clock_mhz=78.0)
        assert "us" in text and "10.0" in text
