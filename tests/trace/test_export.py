"""Tests for the Chrome trace-event exporter, the schema validator and
the flame summary."""

import json

import pytest

from repro.trace import (
    ASYNC_CATEGORIES,
    Tracer,
    attach_tracer,
    flame_summary,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from tests.trace.test_tracer import FakeClock, p2p_run


def synthetic_tracer():
    env = FakeClock()
    tracer = Tracer(env)
    tracer.complete("a0", "wrapper", "load f0", "acc.load", 0, 10, n=64)
    tracer.complete("a0", "wrapper", "compute f0", "acc.compute", 10, 40)
    tracer.complete("a0", "socket", "toy", "acc.invocation", 0, 50,
                    device="a0")
    tracer.complete("noc", "dma_req", "DMA_REQ", "noc.packet", 2, 9)
    tracer.complete("noc", "dma_req", "DMA_REQ", "noc.packet", 5, 12)
    env.now = 7
    tracer.instant("a0", "socket", "irq", "acc.irq", status=1)
    tracer.counter("serve", "queue_depth", depth=2)
    return tracer


class TestToChromeTrace:
    def test_metadata_names_every_track(self):
        trace = to_chrome_trace(synthetic_tracer())
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        process_names = {e["args"]["name"] for e in meta
                         if e["name"] == "process_name"}
        thread_names = {e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        assert process_names == {"a0", "noc", "serve"}
        assert {"wrapper", "socket", "dma_req"} <= thread_names

    def test_overlapping_categories_export_as_async_pairs(self):
        trace = to_chrome_trace(synthetic_tracer())
        events = trace["traceEvents"]
        # The two overlapping noc.packet spans must not be X events on
        # one track (Perfetto would mis-nest them).
        assert "noc.packet" in ASYNC_CATEGORIES
        noc = [e for e in events if e.get("cat") == "noc.packet"]
        assert {e["ph"] for e in noc} == {"b", "e"}
        begins = sum(1 for e in noc if e["ph"] == "b")
        ends = sum(1 for e in noc if e["ph"] == "e")
        assert begins == ends == 2

    def test_plain_spans_export_as_complete_events(self):
        trace = to_chrome_trace(synthetic_tracer())
        load = next(e for e in trace["traceEvents"]
                    if e.get("cat") == "acc.load")
        assert load["ph"] == "X"
        assert (load["ts"], load["dur"]) == (0, 10)
        assert load["args"] == {"n": 64}

    def test_clock_scales_cycles_to_microseconds(self):
        trace = to_chrome_trace(synthetic_tracer(), clock_mhz=100.0)
        load = next(e for e in trace["traceEvents"]
                    if e.get("cat") == "acc.load")
        assert load["dur"] == pytest.approx(0.1)   # 10 cycles @ 100 MHz
        assert trace["otherData"]["clock_mhz"] == 100.0

    def test_rejects_nonpositive_clock(self):
        with pytest.raises(ValueError):
            to_chrome_trace(synthetic_tracer(), clock_mhz=0)

    def test_instants_and_counters_exported(self):
        trace = to_chrome_trace(synthetic_tracer())
        phs = {e["ph"] for e in trace["traceEvents"]}
        assert "i" in phs and "C" in phs
        counter = next(e for e in trace["traceEvents"] if e["ph"] == "C")
        assert counter["args"] == {"depth": 2}

    def test_counters_can_be_dropped(self):
        trace = to_chrome_trace(synthetic_tracer(),
                                include_counters=False)
        assert not any(e["ph"] == "C" for e in trace["traceEvents"])

    def test_open_spans_not_exported_but_counted(self):
        tracer = synthetic_tracer()
        tracer.begin("a0", "wrapper", "dangling", "acc.load")
        trace = to_chrome_trace(tracer)
        assert trace["otherData"]["open_spans"] == 1
        names = [e["name"] for e in trace["traceEvents"]]
        assert "dangling" not in names


class TestValidator:
    def test_synthetic_trace_is_valid(self):
        assert validate_chrome_trace(to_chrome_trace(
            synthetic_tracer())) == []

    def test_traced_p2p_run_is_valid(self):
        _, _, tracer = p2p_run(tracing=True)
        trace = to_chrome_trace(tracer, clock_mhz=78.0)
        assert validate_chrome_trace(trace) == []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) == \
            ["traceEvents missing or not a list"]

    def test_rejects_missing_required_keys(self):
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "ts": 0}]})
        assert any("missing" in p for p in problems)

    def test_rejects_negative_timestamps_and_durations(self):
        bad_ts = {"traceEvents": [
            {"ph": "i", "name": "x", "pid": 1, "ts": -1}]}
        assert any("bad ts" in p
                   for p in validate_chrome_trace(bad_ts))
        bad_dur = {"traceEvents": [
            {"ph": "X", "name": "x", "pid": 1, "ts": 0, "dur": -5}]}
        assert any("bad dur" in p
                   for p in validate_chrome_trace(bad_dur))

    def test_rejects_unbalanced_async(self):
        dangling_end = {"traceEvents": [
            {"ph": "e", "name": "p", "pid": 1, "ts": 1, "id": 7}]}
        assert any("end without begin" in p
                   for p in validate_chrome_trace(dangling_end))
        dangling_begin = {"traceEvents": [
            {"ph": "b", "name": "p", "pid": 1, "ts": 1, "id": 7}]}
        assert any("left 1 open" in p
                   for p in validate_chrome_trace(dangling_begin))

    def test_rejects_straddling_spans_on_one_track(self):
        straddle = {"traceEvents": [
            {"ph": "X", "name": "a", "pid": 1, "tid": 1,
             "ts": 0, "dur": 10},
            {"ph": "X", "name": "b", "pid": 1, "tid": 1,
             "ts": 5, "dur": 10},
        ]}
        assert any("straddles" in p
                   for p in validate_chrome_trace(straddle))

    def test_accepts_nested_and_disjoint_spans(self):
        fine = {"traceEvents": [
            {"ph": "X", "name": "outer", "pid": 1, "tid": 1,
             "ts": 0, "dur": 10},
            {"ph": "X", "name": "inner", "pid": 1, "tid": 1,
             "ts": 2, "dur": 4},
            {"ph": "X", "name": "later", "pid": 1, "tid": 1,
             "ts": 10, "dur": 3},
        ]}
        assert validate_chrome_trace(fine) == []


class TestRoundTrip:
    def test_write_chrome_trace_serializes_valid_json(self, tmp_path):
        _, _, tracer = p2p_run(tracing=True)
        path = tmp_path / "trace.json"
        written = write_chrome_trace(tracer, str(path), clock_mhz=78.0)
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert validate_chrome_trace(loaded) == []
        assert loaded["otherData"]["spans"] == len(tracer.spans)


class TestFlameSummary:
    def test_hottest_track_first(self):
        tracer = Tracer(FakeClock())
        tracer.complete("a0", "wrapper", "c", "acc.compute", 0, 900)
        tracer.complete("b0", "wrapper", "c", "acc.compute", 0, 100)
        text = flame_summary(tracer)
        assert text.index("a0 / wrapper") < text.index("b0 / wrapper")
        assert "900" in text

    def test_top_limits_rows(self):
        tracer = Tracer(FakeClock())
        for i in range(30):
            tracer.complete(f"t{i}", "e", "x", "cat", 0, 30 - i)
        text = flame_summary(tracer, top=5)
        assert "top 5 tracks" in text
        assert text.count("\n") == 6   # header + column row + 5 entries

    def test_clock_converts_to_microseconds(self):
        tracer = Tracer(FakeClock())
        tracer.complete("a0", "wrapper", "c", "acc.compute", 0, 780)
        text = flame_summary(tracer, clock_mhz=78.0)
        assert "us" in text and "10.0" in text
