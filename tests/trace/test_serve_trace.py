"""Serve-layer tracing: request/grant/dispatch spans and the
end-to-end attribution of one served request."""

import numpy as np

from repro.runtime import EspRuntime, chain
from repro.serve import (
    InferenceServer,
    ServerConfig,
    TenantConfig,
    TracedRequest,
)
from repro.trace import (
    analyze_request,
    attach_tracer,
    to_chrome_trace,
    validate_chrome_trace,
)
from tests.conftest import make_soc, make_spec


def traced_serve(n_requests=2):
    specs = [("a0", make_spec(name="a")), ("b0", make_spec(name="b"))]
    runtime = EspRuntime(make_soc(specs))
    tracer = attach_tracer(runtime.soc)
    server = InferenceServer(runtime, ServerConfig())
    server.register(TenantConfig(name="app",
                                 dataflow=chain("app", ["a0", "b0"])))
    frames = np.random.default_rng(3).uniform(0, 1, (2, 16))
    trace = [TracedRequest(i * 10, "app", frames)
             for i in range(n_requests)]
    report = server.run_trace(trace)
    return report, tracer


class TestServeSpans:
    def test_every_request_span_closes_completed(self):
        report, tracer = traced_serve()
        spans = tracer.all_spans(cat="serve.request")
        assert len(spans) == len(report.completions) == 2
        assert {s.args["outcome"] for s in spans} == {"completed"}
        assert {s.tid for s in spans} == {"tenant:app"}
        assert not tracer.open_spans   # nothing dangling after drain

    def test_grant_and_dispatch_recorded(self):
        _, tracer = traced_serve()
        grants = tracer.all_spans(cat="serve.grant_wait")
        assert grants and all(s.args["granted"] for s in grants)
        dispatches = tracer.all_spans(cat="serve.dispatch")
        assert {s.args["outcome"] for s in dispatches} == {"completed"}

    def test_queue_depth_counter_sampled(self):
        _, tracer = traced_serve()
        depth = [c for c in tracer.counters if c.name == "queue_depth"]
        assert depth
        assert all(c.values["depth"] >= 0 for c in depth)

    def test_request_attribution_covers_window(self):
        _, tracer = traced_serve()
        report = analyze_request(tracer)
        assert report.coverage >= 0.95, report.render()

    def test_serve_trace_exports_valid(self):
        _, tracer = traced_serve()
        trace = to_chrome_trace(tracer, clock_mhz=78.0)
        assert validate_chrome_trace(trace) == []
