"""Tests for critical-path attribution: synthetic precedence cases and
the end-to-end coverage guarantee on an instrumented p2p run."""

import pytest

from repro.trace import (
    GROUP_PRECEDENCE,
    Tracer,
    analyze_run,
    attribute_interval,
    group_of,
)
from tests.trace.test_tracer import FakeClock, p2p_run


class TestGroupMapping:
    def test_category_groups(self):
        assert group_of("acc.compute") == "compute"
        assert group_of("acc.load") == "dma"
        assert group_of("acc.store") == "dma"
        assert group_of("dma.p2p_load") == "dma"
        assert group_of("noc.packet") == "noc"
        assert group_of("noc.link") == "noc"
        assert group_of("runtime.ioctl") == "software"
        assert group_of("runtime.config") == "software"
        assert group_of("runtime.irq_wait") == "sync"
        assert group_of("runtime.sync") == "sync"
        assert group_of("serve.grant_wait") == "queue"

    def test_unmapped_categories_fall_to_other(self):
        assert group_of("acc.invocation") == "other"
        assert group_of("runtime.run") == "other"
        assert group_of("sim.process") == "other"

    def test_prefix_match_is_segment_aware(self):
        # "dma" must not claim "dmax.whatever".
        assert group_of("dmax.thing") == "other"

    def test_every_group_is_ranked(self):
        mapped = {group_of(cat) for cat in (
            "acc.compute", "dma.load", "noc.link", "runtime.ioctl",
            "serve.queue", "runtime.sync", "unknown.cat")}
        assert mapped <= set(GROUP_PRECEDENCE)


class TestAttributeInterval:
    def test_precedence_compute_beats_sync(self):
        tracer = Tracer(FakeClock())
        # Software waits on the IRQ for the whole window while the
        # kernel computes in the middle: the overlap is compute time.
        tracer.complete("cpu", "drv", "wait", "runtime.irq_wait", 0, 100)
        tracer.complete("a0", "wrap", "c", "acc.compute", 30, 70)
        report = attribute_interval(tracer, 0, 100)
        assert report.by_group == {"sync": 60, "compute": 40}
        assert report.coverage == 1.0
        assert report.fraction("compute") == pytest.approx(0.4)

    def test_unattributed_gap_reported(self):
        tracer = Tracer(FakeClock())
        tracer.complete("a0", "wrap", "c", "acc.compute", 10, 20)
        report = attribute_interval(tracer, 0, 40)
        assert report.by_group == {"compute": 10}
        assert report.unattributed_cycles == 30
        assert report.coverage == pytest.approx(0.25)
        gaps = [s for s in report.segments if s.group == "unattributed"]
        assert [(s.start, s.end) for s in gaps] == [(0, 10), (20, 40)]

    def test_exclude_sids_removes_wrapper_span(self):
        tracer = Tracer(FakeClock())
        wrapper = tracer.complete("cpu", "main", "run", "acc.compute",
                                  0, 100)
        report = attribute_interval(tracer, 0, 100,
                                    exclude_sids=(wrapper.sid,))
        assert report.coverage == 0.0

    def test_spans_clipped_to_window(self):
        tracer = Tracer(FakeClock())
        tracer.complete("a0", "w", "c", "acc.compute", -50, 1000)
        report = attribute_interval(tracer, 10, 30)
        assert report.by_group == {"compute": 20}
        assert report.total_cycles == 20

    def test_zero_length_spans_never_own_cycles(self):
        tracer = Tracer(FakeClock())
        tracer.complete("a0", "w", "blip", "acc.compute", 5, 5)
        tracer.complete("cpu", "d", "wait", "runtime.sync", 0, 10)
        report = attribute_interval(tracer, 0, 10)
        assert report.by_group == {"sync": 10}

    def test_empty_window(self):
        report = attribute_interval(Tracer(FakeClock()), 10, 10)
        assert report.total_cycles == 0
        assert report.coverage == 1.0
        assert report.fraction("compute") == 0.0

    def test_backwards_window_raises(self):
        with pytest.raises(ValueError):
            attribute_interval(Tracer(FakeClock()), 10, 0)

    def test_by_category_sums_to_by_group(self):
        tracer = Tracer(FakeClock())
        tracer.complete("a0", "w", "l", "acc.load", 0, 10)
        tracer.complete("a0", "w", "s", "acc.store", 10, 30)
        report = attribute_interval(tracer, 0, 30)
        assert report.by_group == {"dma": 30}
        assert report.by_category == {"acc.load": 10, "acc.store": 20}

    def test_render_mentions_groups_and_coverage(self):
        tracer = Tracer(FakeClock())
        tracer.complete("a0", "w", "c", "acc.compute", 0, 80)
        text = attribute_interval(tracer, 0, 100, label="demo").render()
        assert "demo" in text
        assert "compute" in text
        assert "coverage: 80.0% attributed" in text
        assert "(none)" in text


class TestAnalyzeRun:
    """The ISSUE acceptance bar: attribute one p2p frame pipeline."""

    def test_p2p_run_coverage_at_least_95_percent(self):
        _, _, tracer = p2p_run(tracing=True)
        report = analyze_run(tracer)
        assert report.coverage >= 0.95, report.render()

    def test_attribution_is_dominated_by_named_work(self):
        _, _, tracer = p2p_run(tracing=True)
        report = analyze_run(tracer)
        # Something real must land in each of the big buckets of a p2p
        # run: kernel compute, DMA/streaming, software setup.
        assert report.by_group.get("compute", 0) > 0
        assert report.by_group.get("dma", 0) > 0
        assert report.by_group.get("software", 0) > 0
        # And the window is the esp_run itself.
        run_span = tracer.find_span("runtime.run")
        assert (report.t0, report.t1) == (run_span.start, run_span.end)

    def test_groups_never_exceed_window(self):
        _, _, tracer = p2p_run(tracing=True)
        report = analyze_run(tracer)
        assert sum(report.by_group.values()) <= report.total_cycles
        assert sum(s.cycles for s in report.segments) == \
            report.total_cycles

    def test_missing_run_span_raises(self):
        with pytest.raises(KeyError):
            analyze_run(Tracer(FakeClock()))
