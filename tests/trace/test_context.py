"""Distributed trace identity: deterministic allocation, span
binding, and end-to-end propagation through a served request."""

import numpy as np
import pytest

from repro.runtime import EspRuntime, chain
from repro.serve import (
    InferenceServer,
    ServerConfig,
    TenantConfig,
    TracedRequest,
)
from repro.trace import (
    TraceContext,
    TraceIdAllocator,
    attach_tracer,
    batch_trace_ids,
    primary_trace_id,
)
from repro.trace.tracer import Tracer
from tests.conftest import make_soc, make_spec
from tests.trace.test_tracer import FakeClock


class TestAllocator:
    def test_sequential_ids_in_allocation_order(self):
        alloc = TraceIdAllocator("t")
        assert [alloc.next_id() for _ in range(3)] == \
            ["t-0", "t-1", "t-2"]
        assert alloc.allocated == 3

    def test_mint_wraps_id_in_context(self):
        ctx = TraceIdAllocator("f").mint()
        assert isinstance(ctx, TraceContext)
        assert ctx.trace_id == "f-0"
        assert str(ctx) == "f-0"

    def test_independent_allocators_do_not_share_state(self):
        a, b = TraceIdAllocator("t"), TraceIdAllocator("t")
        a.next_id()
        assert b.next_id() == "t-0"

    def test_prefix_validation(self):
        with pytest.raises(ValueError):
            TraceIdAllocator("")
        with pytest.raises(ValueError):
            TraceIdAllocator("a-b")   # "-" is the id separator

    def test_context_is_frozen(self):
        ctx = TraceContext("t-0")
        with pytest.raises(AttributeError):
            ctx.trace_id = "t-1"


class TestBatchHelpers:
    class _Req:
        def __init__(self, ctx):
            self.trace_ctx = ctx

    def test_batch_ids_skip_missing_contexts(self):
        reqs = [self._Req(TraceContext("t-0")), self._Req(None),
                self._Req(TraceContext("t-2")), object()]
        assert batch_trace_ids(reqs) == ("t-0", "t-2")

    def test_primary_is_first_present(self):
        reqs = [self._Req(None), self._Req(TraceContext("t-7"))]
        assert primary_trace_id(reqs) == "t-7"
        assert primary_trace_id([self._Req(None)]) is None


class TestBindings:
    def test_bound_key_annotates_matching_track(self):
        tracer = Tracer(FakeClock())
        tracer.bind("a0", ("t-3",))
        span = tracer.complete("a0", "wrapper", "load", "acc.load",
                               0, 5)
        assert span.args["trace_id"] == "t-3"
        tracer.unbind("a0")
        clean = tracer.complete("a0", "wrapper", "load", "acc.load",
                                5, 9)
        assert "trace_id" not in clean.args

    def test_multi_request_batch_gets_id_tuple(self):
        tracer = Tracer(FakeClock())
        tracer.bind("a0", ("t-0", "t-1"))
        span = tracer.complete("a0", "wrapper", "c", "acc.compute",
                               0, 5)
        assert span.args["trace_id"] == "t-0"
        assert span.args["trace_ids"] == ("t-0", "t-1")

    def test_explicit_trace_id_wins_over_binding(self):
        tracer = Tracer(FakeClock())
        tracer.bind("a0", ("t-9",))
        span = tracer.complete("a0", "wrapper", "c", "acc.compute",
                               0, 5, trace_id="t-0")
        assert span.args["trace_id"] == "t-0"

    def test_src_dst_args_match_bound_coordinates(self):
        tracer = Tracer(FakeClock())
        tracer.bind("(1, 1)", ("t-4",))
        span = tracer.complete("noc", "dma_req", "PKT", "noc.packet",
                               0, 3, src="(0, 0)", dst="(1, 1)")
        assert span.args["trace_id"] == "t-4"

    def test_unbound_tracks_record_clean_args(self):
        tracer = Tracer(FakeClock())
        tracer.bind("a0", ("t-0",))
        span = tracer.complete("b9", "wrapper", "c", "acc.compute",
                               0, 5)
        assert "trace_id" not in span.args


def traced_serve(n_requests=3):
    """A two-stage chain served with tracing on; IDs server-minted."""
    specs = [("a0", make_spec(name="a")), ("b0", make_spec(name="b"))]
    runtime = EspRuntime(make_soc(specs))
    tracer = attach_tracer(runtime.soc)
    server = InferenceServer(runtime, ServerConfig())
    server.register(TenantConfig(name="app",
                                 dataflow=chain("app", ["a0", "b0"])))
    frames = np.random.default_rng(3).uniform(0, 1, (1, 16))
    trace = [TracedRequest(i * 10, "app", frames)
             for i in range(n_requests)]
    report = server.run_trace(trace)
    return report, tracer, server


class TestEndToEndPropagation:
    def test_server_mints_deterministic_ids_in_submission_order(self):
        report, tracer, _ = traced_serve()
        spans = tracer.all_spans(cat="serve.request")
        assert [s.args["trace_id"] for s in spans] == \
            ["t-0", "t-1", "t-2"]
        # Re-running the identical trace re-mints the identical IDs.
        report2, tracer2, _ = traced_serve()
        spans2 = tracer2.all_spans(cat="serve.request")
        assert [s.args["trace_id"] for s in spans2] == \
            [s.args["trace_id"] for s in spans]

    def test_explicit_context_is_propagated_not_reminted(self):
        specs = [("a0", make_spec(name="a"))]
        runtime = EspRuntime(make_soc(specs))
        tracer = attach_tracer(runtime.soc)
        server = InferenceServer(runtime, ServerConfig())
        server.register(TenantConfig(
            name="app", dataflow=chain("app1", ["a0"])))
        frames = np.random.default_rng(3).uniform(0, 1, (1, 16))
        server.start()
        server.submit("app", frames,
                      trace_ctx=TraceContext("f-41"))
        server.env.run(until=server.wait_terminal(1))
        server.env.run(until=server.env.now)
        span = tracer.find_span("serve.request")
        assert span.args["trace_id"] == "f-41"
        assert server._trace_ids.allocated == 0

    def test_id_reaches_every_layer(self):
        _, tracer, _ = traced_serve(n_requests=1)
        for cat in ("serve.request", "serve.dispatch",
                    "runtime.ioctl", "runtime.irq_wait",
                    "dma.load", "acc.load", "acc.compute",
                    "acc.store", "acc.invocation", "noc.packet"):
            spans = [s for s in tracer.all_spans(cat=cat)
                     if s.args.get("trace_id") == "t-0"]
            assert spans, f"no {cat} span carries t-0"

    def test_bindings_released_after_dispatch(self):
        _, tracer, _ = traced_serve()
        assert not tracer._bindings

    def test_ids_do_not_leak_across_requests(self):
        # Spaced-out requests: each request's accelerator spans carry
        # its own ID only (bindings rebound per dispatch).
        specs = [("a0", make_spec(name="a"))]
        runtime = EspRuntime(make_soc(specs))
        tracer = attach_tracer(runtime.soc)
        server = InferenceServer(runtime, ServerConfig())
        server.register(TenantConfig(
            name="app", dataflow=chain("app2", ["a0"])))
        frames = np.random.default_rng(3).uniform(0, 1, (1, 16))
        server.run_trace([TracedRequest(0, "app", frames),
                          TracedRequest(100_000, "app", frames)])
        invocations = tracer.all_spans(cat="acc.invocation")
        ids = [s.args.get("trace_id") for s in invocations]
        assert ids == ["t-0", "t-1"]
