"""Tests for baseline platform models and the FPGA power model."""

import pytest

from repro.hls import ResourceEstimate
from repro.platforms import (
    ANALYTIC_I7,
    DEFAULT_POWER_MODEL,
    INTEL_I7_8700K,
    JETSON_TX1,
    KERNEL_FLOPS,
    PAPER_FPS,
    PowerModel,
    derive_kernel_fps,
    soc_power_watts,
)


class TestCalibration:
    def test_classifier_anchored_to_multitile_column(self):
        fps = derive_kernel_fps("i7")
        assert fps["classifier"] == PAPER_FPS["i7"]["multitile"]

    def test_serial_composition_recovers_table1(self):
        """Composing the derived kernels must reproduce the app rows."""
        for platform, model in (("i7", INTEL_I7_8700K),
                                ("jetson", JETSON_TX1)):
            assert model.app_fps(["night_vision", "classifier"]) == \
                pytest.approx(PAPER_FPS[platform]["nv_cl"], rel=1e-6)
            assert model.app_fps(["denoiser", "classifier"]) == \
                pytest.approx(PAPER_FPS[platform]["de_cl"], rel=1e-6)
            assert model.app_fps(["classifier"]) == \
                pytest.approx(PAPER_FPS[platform]["multitile"], rel=1e-6)

    def test_night_vision_is_the_cpu_bottleneck(self):
        # The paper: i7 wins everywhere except NV ("a single-threaded
        # program").
        fps = derive_kernel_fps("i7")
        assert fps["night_vision"] < fps["classifier"] / 10


class TestSoftwarePlatform:
    def test_app_fps_slower_than_slowest_kernel(self):
        fps = INTEL_I7_8700K.app_fps(["night_vision", "classifier"])
        assert fps < INTEL_I7_8700K.fps_for("night_vision")

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            INTEL_I7_8700K.fps_for("transformer")

    def test_empty_app(self):
        with pytest.raises(ValueError):
            INTEL_I7_8700K.app_fps([])

    def test_energy_uses_paper_power(self):
        fpj = INTEL_I7_8700K.app_frames_per_joule(["classifier"])
        assert fpj == pytest.approx(
            PAPER_FPS["i7"]["multitile"] / 78.6)

    def test_jetson_uses_gpu_power(self):
        assert JETSON_TX1.power_watts == 10.0


class TestAnalyticModel:
    def test_tracks_anchor_within_tolerance(self):
        measured = ANALYTIC_I7.fps_for("classifier")
        assert measured == pytest.approx(PAPER_FPS["i7"]["multitile"],
                                         rel=0.05)

    def test_flops_table_matches_topologies(self):
        assert KERNEL_FLOPS["classifier"] == 2 * 305_472
        assert KERNEL_FLOPS["denoiser"] == 2 * 425_984


class TestPowerModel:
    def test_scales_with_resources(self):
        small = DEFAULT_POWER_MODEL.dynamic_watts(
            ResourceEstimate(luts=10_000))
        large = DEFAULT_POWER_MODEL.dynamic_watts(
            ResourceEstimate(luts=500_000))
        assert large > small > DEFAULT_POWER_MODEL.base_watts

    def test_scales_with_clock(self):
        usage = ResourceEstimate(luts=100_000, brams=100, dsps=100)
        at78 = DEFAULT_POWER_MODEL.dynamic_watts(usage, clock_mhz=78.0)
        at156 = DEFAULT_POWER_MODEL.dynamic_watts(usage, clock_mhz=156.0)
        assert at156 == pytest.approx(2 * at78)

    def test_invalid_clock(self):
        with pytest.raises(ValueError):
            DEFAULT_POWER_MODEL.dynamic_watts(ResourceEstimate(),
                                              clock_mhz=0)

    def test_paper_design_points(self):
        """The two Table I power cells are fit exactly by construction."""
        from repro.eval import build_soc1, build_soc2
        assert soc_power_watts(build_soc1()) == pytest.approx(1.70,
                                                              abs=0.02)
        assert soc_power_watts(build_soc2()) == pytest.approx(0.98,
                                                              abs=0.02)

    def test_custom_model(self):
        model = PowerModel(base_watts=1.0, watts_per_lut=0.0,
                           watts_per_bram=0.0, watts_per_dsp=0.0)
        assert model.dynamic_watts(ResourceEstimate(luts=10**6)) == 1.0
