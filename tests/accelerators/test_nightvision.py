"""Tests for the Night-Vision kernels and accelerator."""

import numpy as np
import pytest

from repro.accelerators import (
    histogram_equalization_kernel,
    histogram_kernel,
    night_vision_spec,
    noise_filter_kernel,
)
from repro.accelerators.nightvision import HISTOGRAM_BINS, night_vision_compute
from repro.datasets import FRAME_PIXELS, darken, flatten_frames, generate


@pytest.fixture(scope="module")
def frames():
    imgs, _ = generate(4, seed=0)
    return flatten_frames(imgs)


class TestNoiseFilter:
    def test_shape_preserved(self, frames):
        out = noise_filter_kernel(frames[0])
        assert out.shape == (FRAME_PIXELS,)

    def test_removes_salt_and_pepper(self, frames):
        frame = frames[0].copy()
        rng = np.random.default_rng(1)
        idx = rng.choice(FRAME_PIXELS, 40, replace=False)
        corrupted = frame.copy()
        corrupted[idx[:20]] = 1.0
        corrupted[idx[20:]] = 0.0
        restored = noise_filter_kernel(corrupted)
        clean = noise_filter_kernel(frame)
        assert np.abs(restored - clean).mean() < 0.02

    def test_constant_frame_unchanged(self):
        frame = np.full(FRAME_PIXELS, 0.5)
        np.testing.assert_allclose(noise_filter_kernel(frame), 0.5,
                                   atol=1e-3)


class TestHistogram:
    def test_counts_sum_to_pixels(self, frames):
        hist = histogram_kernel(frames[0])
        assert hist.sum() == FRAME_PIXELS
        assert len(hist) == HISTOGRAM_BINS

    def test_dark_frame_concentrates_low_bins(self, frames):
        dark = darken(frames[0].reshape(1, -1), factor=0.2)[0]
        hist = histogram_kernel(dark)
        low = hist[:HISTOGRAM_BINS // 4].sum()
        assert low > 0.9 * FRAME_PIXELS

    def test_values_at_one_clip_to_last_bin(self):
        hist = histogram_kernel(np.ones(16))
        assert hist[-1] == 16


class TestEqualization:
    def test_stretches_dark_frames(self, frames):
        dark = darken(frames[0].reshape(1, -1), factor=0.2)[0]
        hist = histogram_kernel(dark)
        out = histogram_equalization_kernel(dark, hist)
        assert out.max() > 0.9
        assert out.max() - out.min() > dark.max() - dark.min()

    def test_monotone_mapping(self, frames):
        dark = darken(frames[0].reshape(1, -1), factor=0.3)[0]
        hist = histogram_kernel(dark)
        out = histogram_equalization_kernel(dark, hist)
        order = np.argsort(dark)
        assert np.all(np.diff(out[order]) >= -1e-9)

    def test_constant_frame_handled(self):
        frame = np.full(FRAME_PIXELS, 0.3)
        hist = histogram_kernel(frame)
        out = histogram_equalization_kernel(frame, hist)
        assert np.all(np.isfinite(out))


class TestNightVisionSpec:
    def test_geometry(self):
        spec = night_vision_spec()
        assert spec.input_words == FRAME_PIXELS
        assert spec.output_words == FRAME_PIXELS
        assert spec.design_flow == "stratus"

    def test_compute_matches_kernel_composition(self, frames):
        spec = night_vision_spec()
        dark = darken(frames[:1], factor=0.25)[0]
        np.testing.assert_array_equal(spec.run(dark),
                                      night_vision_compute(dark))

    def test_is_slow_stage_of_nv_cl_pipeline(self):
        """The paper replicates NV because it is the slower stage."""
        from repro.accelerators import classifier_spec
        nv = night_vision_spec()
        cl = classifier_spec()
        assert nv.latency_cycles > cl.latency_cycles

    def test_restores_classifier_accuracy_on_dark_frames(self):
        """The motivating property: equalized dark frames look like
        normal frames to downstream consumers (dynamic range restored)."""
        imgs, _ = generate(8, seed=5)
        flat = flatten_frames(imgs)
        dark = darken(flat, factor=0.2)
        spec = night_vision_spec()
        restored = np.stack([spec.run(f) for f in dark])
        # Restored frames span most of the dynamic range again.
        assert restored.max() > 0.9
        assert dark.max() <= 0.2 + 1e-9
