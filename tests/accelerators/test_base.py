"""Tests for the accelerator spec interface."""

import numpy as np
import pytest

from repro.accelerators import AcceleratorSpec, chain_specs
from tests.conftest import make_spec


class TestSpecValidation:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            make_spec(input_words=0)
        with pytest.raises(ValueError):
            make_spec(output_words=0)

    def test_rejects_bad_timing(self):
        with pytest.raises(ValueError):
            make_spec(latency=0)
        with pytest.raises(ValueError):
            make_spec(interval=0)

    def test_rejects_bad_word_width(self):
        with pytest.raises(ValueError):
            make_spec(word_bits=12)

    def test_rejects_unknown_flow(self):
        with pytest.raises(ValueError):
            AcceleratorSpec(name="x", input_words=4, output_words=4,
                            compute=lambda f: f, latency_cycles=1,
                            interval_cycles=1, design_flow="chisel")


class TestRun:
    def test_checks_input_size(self):
        spec = make_spec(input_words=8)
        with pytest.raises(ValueError):
            spec.run(np.zeros(7))

    def test_checks_output_size(self):
        spec = make_spec(input_words=4, output_words=4,
                         compute=lambda f: np.zeros(3))
        with pytest.raises(ValueError):
            spec.run(np.zeros(4))

    def test_flattens_input(self):
        spec = make_spec(input_words=4, output_words=4)
        out = spec.run(np.zeros((2, 2)))
        np.testing.assert_array_equal(out, np.ones(4))

    def test_plm_words(self):
        spec = make_spec(input_words=10, output_words=6)
        assert spec.plm_words == 16


class TestChain:
    def test_chained_compute_composes(self):
        a = make_spec(name="a", input_words=4, output_words=4)
        b = make_spec(name="b", input_words=4, output_words=4)
        fused = chain_specs("ab", [a, b])
        out = fused.run(np.zeros(4))
        np.testing.assert_array_equal(out, np.full(4, 2.0))

    def test_latency_adds(self):
        a = make_spec(name="a", latency=100, interval=100)
        b = make_spec(name="b", latency=50, interval=50)
        fused = chain_specs("ab", [a, b])
        assert fused.latency_cycles == 150
        assert fused.interval_cycles == 150

    def test_resources_add(self):
        a, b = make_spec(name="a"), make_spec(name="b")
        fused = chain_specs("ab", [a, b])
        assert fused.resources.luts == a.resources.luts + b.resources.luts

    def test_geometry_mismatch_rejected(self):
        a = make_spec(name="a", output_words=4)
        b = make_spec(name="b", input_words=8, output_words=8)
        with pytest.raises(ValueError):
            chain_specs("ab", [a, b])

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            chain_specs("none", [])
