"""Tests for the classifier, denoiser and multi-tile accelerators."""

import numpy as np
import pytest

from repro.accelerators import (
    classifier_model,
    classifier_spec,
    denoiser_model,
    denoiser_spec,
    partition_classifier,
)
from repro.accelerators.classifier import CLASSIFIER_TOPOLOGY
from repro.accelerators.denoiser import DENOISER_TOPOLOGY


class TestClassifier:
    def test_paper_topology(self):
        model = classifier_model()
        assert model.topology == list(CLASSIFIER_TOPOLOGY)
        assert CLASSIFIER_TOPOLOGY == (1024, 256, 128, 64, 32, 10)

    def test_dropout_rate_from_paper(self):
        from repro.nn import Dropout
        rates = [l.rate for l in classifier_model().layers
                 if isinstance(l, Dropout)]
        assert rates == [0.2] * 4

    def test_spec_geometry(self):
        spec = classifier_spec()
        assert spec.input_words == 1024
        assert spec.output_words == 10
        assert spec.design_flow == "hls4ml"

    def test_spec_output_is_probability_like(self, rng):
        spec = classifier_spec()
        out = spec.run(rng.uniform(0, 1, 1024))
        assert out.shape == (10,)
        assert out.sum() == pytest.approx(1.0, abs=0.05)

    def test_reuse_factor_controls_timing(self):
        fast = classifier_spec(reuse_factor=128)
        slow = classifier_spec(reuse_factor=2048)
        assert slow.latency_cycles > fast.latency_cycles
        assert slow.resources.dsps < fast.resources.dsps


class TestDenoiser:
    def test_paper_topology_and_compression(self):
        model = denoiser_model()
        assert model.topology == list(DENOISER_TOPOLOGY)
        # "the compression factor in the bottleneck is 8"
        assert DENOISER_TOPOLOGY[0] / DENOISER_TOPOLOGY[2] == 8

    def test_spec_geometry(self):
        spec = denoiser_spec()
        assert spec.input_words == 1024
        assert spec.output_words == 1024

    def test_output_in_unit_range(self, rng):
        spec = denoiser_spec()
        out = spec.run(rng.uniform(0, 1, 1024))
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_denoiser_slower_than_classifier(self):
        # Table I: De+Cl runs at ~1/6th the NV+Cl rate; the denoiser is
        # the heavyweight stage.
        assert denoiser_spec().latency_cycles > \
            classifier_spec().latency_cycles


class TestMultiTile:
    def test_five_partitions(self):
        parts = partition_classifier()
        assert len(parts) == 5

    def test_partitions_chain_geometrically(self):
        parts = partition_classifier()
        sizes = [parts[0].input_words] + [p.output_words for p in parts]
        assert sizes == list(CLASSIFIER_TOPOLOGY)

    def test_partitioned_equals_monolithic(self, rng):
        from repro.accelerators.classifier import classifier_hls
        from repro.accelerators.classifier import spec_from_hls
        hls = classifier_hls()
        mono = spec_from_hls(hls, name="mono")
        parts = partition_classifier(hls_model=hls)
        x = rng.uniform(0, 1, 1024)
        staged = x
        for part in parts:
            staged = part.run(staged)
        np.testing.assert_array_equal(staged, mono.run(x))

    def test_each_partition_faster_than_whole(self):
        from repro.accelerators.classifier import classifier_hls
        hls = classifier_hls(reuse_factor=2048)
        parts = partition_classifier(hls_model=hls)
        whole_latency = hls.latency_cycles
        assert all(p.latency_cycles < whole_latency for p in parts)


class TestRegistry:
    def test_default_catalog(self):
        from repro.accelerators import AcceleratorRegistry
        registry = AcceleratorRegistry.default()
        assert set(registry.names()) == {"classifier", "denoiser",
                                         "night_vision"}
        spec = registry.build("night_vision")
        assert spec.input_words == 1024

    def test_unknown_name(self):
        from repro.accelerators import AcceleratorRegistry
        with pytest.raises(KeyError):
            AcceleratorRegistry.default().build("transformer")

    def test_duplicate_registration(self):
        from repro.accelerators import AcceleratorRegistry
        registry = AcceleratorRegistry.default()
        with pytest.raises(ValueError):
            registry.register("classifier", classifier_spec)
        registry.register("classifier", classifier_spec, replace=True)
