"""Tests for the 3-tile split Night-Vision variant (Fig. 1 mapping)."""

import numpy as np
import pytest

from repro.accelerators import night_vision_spec, night_vision_stage_specs
from repro.accelerators.nightvision import HISTOGRAM_BINS
from repro.datasets import FRAME_PIXELS, darken, flatten_frames, generate
from repro.runtime import chain
from tests.conftest import make_runtime


@pytest.fixture(scope="module")
def stages():
    return night_vision_stage_specs()


class TestStageGeometry:
    def test_three_stages(self, stages):
        assert [s.name for s in stages] == ["nv_filter", "nv_histogram",
                                            "nv_equalize"]

    def test_chainable(self, stages):
        for prev, nxt in zip(stages, stages[1:]):
            assert prev.output_words == nxt.input_words

    def test_histogram_forwards_frame_plus_bins(self, stages):
        assert stages[1].output_words == FRAME_PIXELS + HISTOGRAM_BINS

    def test_split_resources_sum_close_to_fused(self, stages):
        fused = night_vision_spec()
        split_dsp_luts = sum(s.resources.luts for s in stages)
        # Same kernel bodies; the split variant repeats control logic.
        assert split_dsp_luts >= fused.resources.luts - 1000


class TestFunctional:
    def test_split_equals_fused(self, stages):
        fused = night_vision_spec()
        frames, _ = generate(4, seed=1)
        dark = flatten_frames(darken(frames))
        for frame in dark:
            packed = stages[1].run(stages[0].run(frame))
            out = stages[2].run(packed)
            np.testing.assert_array_equal(out, fused.run(frame))

    def test_split_pipeline_on_soc(self, stages):
        rt = make_runtime([("f0", stages[0]), ("h0", stages[1]),
                           ("e0", stages[2])])
        frames, _ = generate(4, seed=2)
        dark = flatten_frames(darken(frames))
        result = rt.esp_run(chain("nv3", ["f0", "h0", "e0"]), dark,
                            mode="p2p")
        fused = night_vision_spec()
        expected = np.stack([fused.run(f) for f in dark])
        np.testing.assert_array_equal(result.outputs, expected)

    def test_split_pipeline_throughput_beats_fused_tile(self, stages):
        """The split mapping pipelines the three kernels across tiles,
        so per-frame cadence drops from the sum of the three kernels
        to the slowest one."""
        fused = night_vision_spec()
        rt_split = make_runtime([("f0", stages[0]), ("h0", stages[1]),
                                 ("e0", stages[2])])
        rt_fused = make_runtime([("nv0", fused)])
        frames, _ = generate(8, seed=3)
        dark = flatten_frames(darken(frames))
        from repro.runtime import Dataflow
        split = rt_split.esp_run(chain("nv3", ["f0", "h0", "e0"]), dark,
                                 mode="p2p")
        fused_run = rt_fused.esp_run(
            Dataflow(name="nv1", devices=["nv0"]), dark, mode="p2p")
        assert split.frames_per_second > fused_run.frames_per_second
