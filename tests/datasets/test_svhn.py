"""Tests for the synthetic SVHN generator."""

import numpy as np
import pytest

from repro.datasets import (
    FRAME_SIDE,
    N_CLASSES,
    SvhnConfig,
    all_glyphs,
    generate,
    generate_frame,
    glyph,
    splits,
)


class TestGlyphs:
    def test_all_ten_digits(self):
        stack = all_glyphs()
        assert stack.shape == (10, 7, 5)

    def test_glyphs_binary(self):
        stack = all_glyphs()
        assert set(np.unique(stack)) <= {0.0, 1.0}

    def test_glyphs_distinct(self):
        stack = all_glyphs()
        flat = stack.reshape(10, -1)
        for i in range(10):
            for j in range(i + 1, 10):
                assert not np.array_equal(flat[i], flat[j])

    def test_invalid_digit(self):
        with pytest.raises(ValueError):
            glyph(10)


class TestGenerate:
    def test_shapes_and_range(self):
        frames, labels = generate(12, seed=0)
        assert frames.shape == (12, FRAME_SIDE, FRAME_SIDE)
        assert labels.shape == (12, N_CLASSES)
        assert frames.min() >= 0.0
        assert frames.max() <= 1.0

    def test_labels_one_hot(self):
        _, labels = generate(20, seed=1)
        np.testing.assert_array_equal(labels.sum(axis=1), 1.0)

    def test_deterministic_per_seed(self):
        a, la = generate(5, seed=7)
        b, lb = generate(5, seed=7)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(la, lb)

    def test_different_seeds_differ(self):
        a, _ = generate(5, seed=1)
        b, _ = generate(5, seed=2)
        assert not np.array_equal(a, b)

    def test_digit_region_brighter_than_background(self):
        # The labelled digit should add energy near the center.
        rng = np.random.default_rng(0)
        config = SvhnConfig(noise_stddev=0.0, shadow_prob=0.0,
                            distractor_prob=0.0)
        frame = generate_frame(8, rng, config)
        center = frame[8:24, 8:24]
        border = np.concatenate([frame[:4].ravel(), frame[-4:].ravel()])
        assert center.max() > border.mean()

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            generate(0)

    def test_classes_roughly_balanced(self):
        _, labels = generate(600, seed=3)
        counts = labels.sum(axis=0)
        assert counts.min() > 600 / N_CLASSES * 0.5

    def test_environmental_noise_present(self):
        # Default config has noise: two frames of the same digit differ.
        rng = np.random.default_rng(0)
        f1 = generate_frame(3, rng)
        f2 = generate_frame(3, rng)
        assert not np.array_equal(f1, f2)


class TestSplits:
    def test_two_way(self):
        (xtr, ytr), (xte, yte) = splits(10, 4)
        assert len(xtr) == 10 and len(xte) == 4

    def test_three_way_mirrors_svhn(self):
        (xtr, _), (xte, _), (xex, _) = splits(6, 3, n_extra=9)
        assert len(xex) == 9

    def test_splits_disjoint_content(self):
        (xtr, _), (xte, _) = splits(5, 5, seed=0)
        assert not np.array_equal(xtr, xte)
