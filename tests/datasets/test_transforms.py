"""Tests for the frame transforms (darken, noise, pixel conversion)."""

import numpy as np
import pytest

from repro.datasets import (
    FRAME_PIXELS,
    add_gaussian_noise,
    darken,
    flatten_frames,
    from_pixels,
    generate,
    normalize,
    to_pixels,
    unflatten_frames,
)


class TestFlatten:
    def test_roundtrip(self):
        frames, _ = generate(3, seed=0)
        flat = flatten_frames(frames)
        assert flat.shape == (3, FRAME_PIXELS)
        np.testing.assert_array_equal(unflatten_frames(flat), frames)

    def test_row_major_order(self):
        frame = np.arange(1024).reshape(1, 32, 32)
        flat = flatten_frames(frame)
        assert flat[0, 0] == 0
        assert flat[0, 33] == 33   # row 1, col 1


class TestNoise:
    def test_clipped_to_unit_range(self, rng):
        frames = rng.uniform(0, 1, (4, 16))
        noisy = add_gaussian_noise(frames, stddev=0.5, seed=1)
        assert noisy.min() >= 0.0 and noisy.max() <= 1.0

    def test_noise_magnitude(self):
        frames = np.full((50, 100), 0.5)
        noisy = add_gaussian_noise(frames, stddev=0.1, seed=2)
        assert (noisy - frames).std() == pytest.approx(0.1, rel=0.1)

    def test_deterministic(self):
        frames = np.full((2, 8), 0.5)
        a = add_gaussian_noise(frames, seed=3)
        b = add_gaussian_noise(frames, seed=3)
        np.testing.assert_array_equal(a, b)


class TestDarken:
    def test_scales_down(self, rng):
        frames = rng.uniform(0, 1, (2, 8))
        dark = darken(frames, factor=0.25)
        np.testing.assert_allclose(dark, frames * 0.25)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            darken(np.zeros((1, 4)), factor=0.0)
        with pytest.raises(ValueError):
            darken(np.zeros((1, 4)), factor=1.5)

    def test_floor_offset(self):
        dark = darken(np.ones((1, 4)), factor=0.5, floor=0.1)
        np.testing.assert_allclose(dark, 0.6)


class TestPixels:
    def test_roundtrip_quantized(self, rng):
        frames = rng.uniform(0, 1, (2, 64))
        pixels = to_pixels(frames)
        assert pixels.dtype == np.int64
        assert pixels.min() >= 0 and pixels.max() <= 255
        back = from_pixels(pixels)
        assert np.abs(back - frames).max() <= 1 / 255 / 2 + 1e-9

    def test_extremes(self):
        assert to_pixels(np.array([[0.0, 1.0]])).tolist() == [[0, 255]]


class TestNormalize:
    def test_output_spans_unit_interval(self, rng):
        frames = rng.uniform(0.3, 0.5, (3, 32, 32))
        out = normalize(frames)
        for frame in out:
            assert frame.min() == pytest.approx(0.0)
            assert frame.max() == pytest.approx(1.0)

    def test_constant_frame_handled(self):
        out = normalize(np.full((1, 4, 4), 0.7))
        assert np.all(np.isfinite(out))
