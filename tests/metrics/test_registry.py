"""Tests for the metrics registry: series types, labels, buckets."""

import pytest

from repro.metrics import (
    CYCLE_BUCKETS,
    MetricsError,
    MetricsRegistry,
    MetricsSampler,
    attach_metrics,
    detach_metrics,
)
from repro.sim import Environment


def fresh_registry():
    return MetricsRegistry(Environment())


class TestCounter:
    def test_inc_and_total(self):
        registry = fresh_registry()
        counter = registry.counter("widgets_total", "w", ("kind",))
        counter.labels("a").inc()
        counter.labels("a").inc(4)
        counter.labels("b").inc(2)
        assert counter.labels("a").value == 5
        assert counter.total == 7

    def test_negative_increment_rejected(self):
        registry = fresh_registry()
        counter = registry.counter("c_total")
        with pytest.raises(MetricsError):
            counter.inc(-1)

    def test_unlabeled_convenience(self):
        registry = fresh_registry()
        counter = registry.counter("plain_total")
        counter.inc()
        counter.inc(2)
        assert counter.labels().value == 3

    def test_label_arity_enforced(self):
        registry = fresh_registry()
        counter = registry.counter("lab_total", "", ("a", "b"))
        with pytest.raises(MetricsError):
            counter.labels("only-one")


class TestGauge:
    def test_set_inc_dec(self):
        registry = fresh_registry()
        gauge = registry.gauge("depth")
        gauge.set(7)
        assert gauge.value == 7
        gauge.labels().inc(3)
        gauge.labels().dec()
        assert gauge.value == 9


class TestHistogram:
    def test_default_buckets_are_powers_of_two(self):
        assert CYCLE_BUCKETS[0] == 1
        assert all(b == a * 2 for a, b in
                   zip(CYCLE_BUCKETS, CYCLE_BUCKETS[1:]))

    def test_pow2_bucket_index_matches_bisect(self):
        """The O(1) bit_length index equals the generic search."""
        registry = fresh_registry()
        hist = registry.histogram("h_cycles")
        series = hist.labels()
        bounds = series.bounds
        for value in [1, 2, 3, 4, 5, 7, 8, 9, 100, 1023, 1024, 1025,
                      bounds[-1], bounds[-1] + 1, bounds[-1] * 7]:
            fast = series.bucket_index(value)
            slow = series._bisect(value)
            expected = min(slow, len(bounds))
            assert fast == expected, value

    def test_observe_accumulates(self):
        registry = fresh_registry()
        hist = registry.histogram("lat_cycles", buckets=(1, 2, 4, 8))
        for value in (1, 2, 3, 8, 100):
            hist.observe(value)
        series = hist.labels()
        assert series.count == 5
        assert series.sum == 114
        assert series.max == 100
        # buckets: <=1, <=2, <=4, <=8, +Inf
        assert series.counts == [1, 1, 1, 1, 1]

    def test_fraction_over(self):
        registry = fresh_registry()
        hist = registry.histogram("f_cycles", buckets=(1, 2, 4, 8))
        for value in (1, 2, 4, 8):
            hist.observe(value)
        series = hist.labels()
        # Exact at bucket bounds.
        assert series.fraction_over(2) == 0.5
        assert series.fraction_over(8) == 0.0
        # Conservative inside a bucket: 3 shares 4's bucket -> "over".
        assert series.fraction_over(3) == 0.5

    def test_bad_buckets_rejected(self):
        registry = fresh_registry()
        with pytest.raises(MetricsError):
            registry.histogram("bad_cycles", buckets=())
        with pytest.raises(MetricsError):
            registry.histogram("bad2_cycles", buckets=(4, 2))


class TestRegistry:
    def test_standard_families_exist(self):
        registry = fresh_registry()
        names = {f.name for f in registry.families}
        assert "noc_packets_total" in names
        assert "serve_request_cycles" in names
        assert "runtime_watchdog_timeouts_total" in names

    def test_get_unknown_raises(self):
        registry = fresh_registry()
        with pytest.raises(KeyError):
            registry.get("nope")

    def test_reregistration_idempotent(self):
        registry = fresh_registry()
        first = registry.counter("again_total", "", ("x",))
        second = registry.counter("again_total", "", ("x",))
        assert first is second

    def test_reregistration_kind_clash_rejected(self):
        registry = fresh_registry()
        registry.counter("clash")
        with pytest.raises(MetricsError):
            registry.gauge("clash")

    def test_invalid_names_rejected(self):
        registry = fresh_registry()
        with pytest.raises(MetricsError):
            registry.counter("bad name")
        with pytest.raises(MetricsError):
            registry.counter("ok_total", "", ("bad-label",))

    def test_snapshot_shape(self):
        registry = fresh_registry()
        registry.noc_packets.labels("dma-req").inc(3)
        registry.serve_request_cycles.labels("t").observe(100)
        snap = registry.snapshot()
        assert snap["cycle"] == 0
        by_name = {f["name"]: f for f in snap["families"]}
        packets = by_name["noc_packets_total"]
        assert packets["series"] == [
            {"labels": {"plane": "dma-req"}, "value": 3}]
        hist = by_name["serve_request_cycles"]["series"][0]
        assert hist["count"] == 1 and hist["sum"] == 100
        assert len(hist["buckets"]) == len(hist["bounds"]) + 1

    def test_collectors_run_on_collect(self):
        registry = fresh_registry()
        gauge = registry.gauge("refreshed")
        calls = []

        def collector(reg):
            calls.append(reg)
            gauge.set(42)

        registry.register_collector(collector)
        registry.collect()
        assert calls == [registry]
        assert gauge.value == 42


class TestAttach:
    def test_attach_detach_idempotent(self):
        env = Environment()
        assert env.metrics is None
        registry = attach_metrics(env)
        assert env.metrics is registry
        assert attach_metrics(env) is registry
        assert detach_metrics(env) is registry
        assert env.metrics is None
        assert detach_metrics(env) is None

    def test_attach_through_env_carrier(self):
        class Carrier:
            def __init__(self):
                self.env = Environment()

        carrier = Carrier()
        registry = attach_metrics(carrier)
        assert carrier.env.metrics is registry


class TestSampler:
    def test_periodic_ticks(self):
        env = Environment()
        registry = attach_metrics(env)
        seen = []
        sampler = MetricsSampler(registry, interval=10,
                                 callbacks=[lambda r: seen.append(
                                     r.env.now)])
        sampler.start()

        def workload():
            yield env.timeout(35)

        env.run(until=env.process(workload()))
        assert seen == [10, 20, 30]

    def test_max_samples_stops(self):
        env = Environment()
        registry = attach_metrics(env)
        seen = []
        MetricsSampler(registry, interval=5,
                       callbacks=[lambda r: seen.append(r.env.now)],
                       max_samples=2).start()

        def workload():
            yield env.timeout(100)

        env.run(until=env.process(workload()))
        assert seen == [5, 10]

    def test_bad_interval(self):
        registry = fresh_registry()
        with pytest.raises(ValueError):
            MetricsSampler(registry, interval=0, callbacks=[])


class TestNamespace:
    """Per-instance namespacing for fleet-style multi-registry scrapes."""

    def test_families_are_prefixed(self):
        registry = MetricsRegistry(Environment(), namespace="i3")
        counter = registry.counter("fleet_test_total", "a")
        counter.labels().inc()
        assert registry.qualify("fleet_test_total") \
            == "i3_fleet_test_total"
        names = [f["name"] for f in registry.snapshot()["families"]]
        assert "i3_fleet_test_total" in names
        # The pre-registered schema families are namespaced too.
        assert all(name.startswith("i3_") for name in names)

    def test_qualify_is_idempotent(self):
        registry = MetricsRegistry(Environment(), namespace="i0")
        assert registry.qualify("i0_latency_cycles") \
            == "i0_latency_cycles"

    def test_get_falls_back_to_qualified_name(self):
        """SLO rules and dashboards use bare schema names; they must
        keep resolving on a namespaced registry."""
        registry = MetricsRegistry(Environment(), namespace="i1")
        registry.gauge("queue_depth", "q")
        assert registry.get("queue_depth").name == "i1_queue_depth"
        assert registry.get("i1_queue_depth").name == "i1_queue_depth"

    def test_invalid_namespace_rejected(self):
        for bad in ("3i", "a-b", "__x", ""):
            with pytest.raises(MetricsError):
                MetricsRegistry(Environment(), namespace=bad)

    def test_reattach_with_other_namespace_rejected(self):
        env = Environment()
        attach_metrics(env, namespace="i0")
        with pytest.raises(MetricsError):
            attach_metrics(env, namespace="i1")
        detach_metrics(env)

    def test_unnamespaced_snapshots_collide_on_merge(self):
        """The regression the namespace option exists for: N identical
        servers scraped into one snapshot must fail loudly, not
        silently drop or double-count a series."""
        from repro.metrics import merge_snapshots

        snapshots = []
        for _ in range(2):
            registry = fresh_registry()
            registry.counter("fleet_test_total", "a").labels().inc()
            snapshots.append(registry.snapshot())
        with pytest.raises(MetricsError, match="appears in snapshot"):
            merge_snapshots(snapshots)

    def test_namespaced_snapshots_merge_cleanly(self):
        from repro.metrics import merge_snapshots

        snapshots = []
        for index in range(2):
            registry = MetricsRegistry(Environment(),
                                       namespace=f"i{index}")
            registry.counter("fleet_test_total", "a") \
                .labels().inc(index + 1)
            snapshots.append(registry.snapshot())
        merged = merge_snapshots(snapshots)
        names = [f["name"] for f in merged["families"]]
        assert len(names) == len(set(names))
        assert "i0_fleet_test_total" in names
        assert "i1_fleet_test_total" in names
