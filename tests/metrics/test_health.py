"""HealthMonitor rule evaluation, transitions, and the fault scenario.

The last test is the subsystem's acceptance scenario: a hung
accelerator kernel plus an admission-queue pileup on a live serving
run must drive two *distinct* alerts (``accelerator-stall`` and
``queue-saturation``) through the full ``firing -> resolved``
lifecycle, with the stall detected from the progress heartbeat while
the watchdog is still counting down.
"""

import numpy as np
import pytest

from repro.eval import build_soc1
from repro.eval.apps import de_cl_inputs
from repro.faults import FaultInjector, FaultPlan, FaultSpec, \
    RecoveryPolicy
from repro.metrics import (
    HealthMonitor,
    MetricsRegistry,
    MetricsSampler,
    SloRule,
    accelerator_stall_rule,
    default_rules,
    instrument_server,
    latency_slo_rule,
    link_congestion_rule,
    queue_saturation_rule,
)
from repro.metrics.health import STATE_FIRING, STATE_RESOLVED
from repro.runtime import EspRuntime, chain
from repro.serve import (
    InferenceServer,
    ServerConfig,
    TenantConfig,
    TracedRequest,
)
from repro.sim import Environment


def fresh_registry():
    return MetricsRegistry(Environment())


def flag_rule(name="flag", severity="warning"):
    """A rule toggled by mutating ``state['violated']``."""
    state = {"violated": False}

    def check(registry, now):
        return "violated" if state["violated"] else None

    return SloRule(name=name, check=check, severity=severity), state


class TestMonitor:
    def test_fire_hold_resolve(self):
        registry = fresh_registry()
        rule, state = flag_rule()
        monitor = HealthMonitor(registry, [rule])

        assert monitor.evaluate() == []
        assert monitor.status() == "healthy"

        state["violated"] = True
        transitions = monitor.evaluate()
        assert [a.state for a in transitions] == [STATE_FIRING]
        assert monitor.status() == "degraded"
        # Still violated: no new transition, same alert held.
        assert monitor.evaluate() == []
        assert len(monitor.history) == 1

        state["violated"] = False
        transitions = monitor.evaluate()
        assert [a.state for a in transitions] == [STATE_RESOLVED]
        assert monitor.status() == "healthy"
        assert monitor.history[0].resolved_at is not None

    def test_refire_is_a_new_incident(self):
        registry = fresh_registry()
        rule, state = flag_rule()
        monitor = HealthMonitor(registry, [rule])
        for _ in range(2):
            state["violated"] = True
            monitor.evaluate()
            state["violated"] = False
            monitor.evaluate()
        assert len(monitor.history) == 2
        assert all(a.state == STATE_RESOLVED for a in monitor.history)

    def test_critical_dominates_status(self):
        registry = fresh_registry()
        warn, warn_state = flag_rule("warn", "warning")
        crit, crit_state = flag_rule("crit", "critical")
        monitor = HealthMonitor(registry, [warn, crit])
        warn_state["violated"] = crit_state["violated"] = True
        monitor.evaluate()
        assert monitor.status() == "critical"
        assert len(monitor.firing()) == 2
        assert "FIRING [critical] crit" in monitor.render()

    def test_duplicate_rule_names_rejected(self):
        registry = fresh_registry()
        rule, _ = flag_rule()
        with pytest.raises(ValueError):
            HealthMonitor(registry, [rule, rule])
        monitor = HealthMonitor(registry, [rule])
        with pytest.raises(ValueError):
            monitor.add_rule(rule)

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError):
            SloRule(name="x", check=lambda r, n: None,
                    severity="catastrophic")


class TestHysteresisAndHistory:
    def advance(self, registry, cycles):
        env = registry.env
        env.run(until=env.timeout(cycles))

    def test_fire_after_requires_consecutive_breaches(self):
        registry = fresh_registry()
        rule, state = flag_rule()
        monitor = HealthMonitor(registry, [rule], fire_after=3)
        state["violated"] = True
        assert monitor.evaluate() == []
        assert monitor.evaluate() == []
        assert monitor.status() == "healthy"
        transitions = monitor.evaluate()
        assert [a.state for a in transitions] == [STATE_FIRING]

    def test_noisy_scrape_cannot_flap_an_alert(self):
        registry = fresh_registry()
        rule, state = flag_rule()
        monitor = HealthMonitor(registry, [rule], fire_after=2)
        # Alternating breach/clean never accumulates the streak.
        for _ in range(4):
            state["violated"] = True
            assert monitor.evaluate() == []
            state["violated"] = False
            assert monitor.evaluate() == []
        assert monitor.history == []

    def test_resolve_after_holds_through_one_clean_scrape(self):
        registry = fresh_registry()
        rule, state = flag_rule()
        monitor = HealthMonitor(registry, [rule], resolve_after=2)
        state["violated"] = True
        monitor.evaluate()
        state["violated"] = False
        assert monitor.evaluate() == []          # one clean: held
        state["violated"] = True
        assert monitor.evaluate() == []          # breach resets streak
        state["violated"] = False
        assert monitor.evaluate() == []
        transitions = monitor.evaluate()         # two clean: resolves
        assert [a.state for a in transitions] == [STATE_RESOLVED]
        assert len(monitor.history) == 1

    def test_rule_override_beats_monitor_default(self):
        registry = fresh_registry()
        slow, slow_state = flag_rule("slow")
        fast, fast_state = flag_rule("fast")
        fast = SloRule(name="fast", check=fast.check,
                       severity="warning", fire_after=1)
        monitor = HealthMonitor(registry, [slow, fast], fire_after=3)
        slow_state["violated"] = fast_state["violated"] = True
        transitions = monitor.evaluate()
        assert [a.rule for a in transitions] == ["fast"]

    def test_defaults_must_be_positive(self):
        registry = fresh_registry()
        with pytest.raises(ValueError):
            HealthMonitor(registry, [], fire_after=0)
        with pytest.raises(ValueError):
            HealthMonitor(registry, [], resolve_after=0)

    def test_lifecycle_history_is_ordered_and_non_overlapping(self):
        """Satellite acceptance: repeated fire -> resolve -> fire
        cycles on one rule keep an ordered, non-overlapping history
        with the cycles the hysteresis thresholds were crossed at."""
        registry = fresh_registry()
        rule, state = flag_rule()
        monitor = HealthMonitor(registry, [rule],
                                fire_after=2, resolve_after=2)
        expected = []
        for _ in range(3):
            state["violated"] = True
            for tick in range(2):       # fires on the second breach
                self.advance(registry, 100)
                monitor.evaluate()
            expected.append({"fired_at": registry.env.now})
            state["violated"] = False
            for tick in range(2):       # resolves on the second clean
                self.advance(registry, 100)
                monitor.evaluate()
            expected[-1]["resolved_at"] = registry.env.now

        assert len(monitor.history) == 3
        assert monitor.active == {}
        for alert, want in zip(monitor.history, expected):
            assert alert.state == STATE_RESOLVED
            assert alert.fired_at == want["fired_at"]
            assert alert.resolved_at == want["resolved_at"]
            assert alert.fired_at < alert.resolved_at
        # Ordered and non-overlapping: each incident resolves before
        # the next one fires.
        for earlier, later in zip(monitor.history,
                                  monitor.history[1:]):
            assert earlier.resolved_at <= later.fired_at
        # The fourth incident, left firing, appends after all three.
        state["violated"] = True
        self.advance(registry, 100)
        monitor.evaluate()
        self.advance(registry, 100)
        monitor.evaluate()
        assert len(monitor.history) == 4
        assert monitor.history[-1].state == STATE_FIRING
        assert monitor.history[-1].fired_at >= \
            monitor.history[-2].resolved_at

    def test_subscribers_run_after_every_evaluation(self):
        registry = fresh_registry()
        rule, state = flag_rule()
        monitor = HealthMonitor(registry, [rule])
        seen = []
        monitor.subscribe(
            lambda mon, transitions: seen.append(
                (mon is monitor, [a.state for a in transitions])))
        monitor.evaluate()                   # quiet pass still notifies
        state["violated"] = True
        monitor.evaluate()
        monitor.evaluate()                   # persistence, no transition
        assert seen == [(True, []), (True, [STATE_FIRING]),
                        (True, [])]


class TestRuleFactories:
    def test_queue_saturation(self):
        registry = fresh_registry()
        rule = queue_saturation_rule(max_depth=10, fraction=0.8)
        registry.serve_queue_depth.set(7)
        assert rule.check(registry, 0) is None
        registry.serve_queue_depth.set(8)
        assert "queue depth 8 >= 8" in rule.check(registry, 0)

    def test_latency_slo_quiet_below_min_requests(self):
        registry = fresh_registry()
        rule = latency_slo_rule("t", target_cycles=100,
                                min_requests=5)
        series = registry.serve_request_cycles.labels("t")
        for _ in range(4):
            series.observe(10_000)   # way over, but too few samples
        assert rule.check(registry, 0) is None
        series.observe(10_000)
        assert "error budget" in rule.description
        assert rule.check(registry, 0) is not None

    def test_latency_slo_within_budget(self):
        registry = fresh_registry()
        rule = latency_slo_rule("t", target_cycles=1 << 20,
                                error_budget=0.5)
        series = registry.serve_request_cycles.labels("t")
        for _ in range(10):
            series.observe(100)
        assert rule.check(registry, 0) is None

    def test_link_congestion_silent_without_collectors(self):
        registry = fresh_registry()
        rule = link_congestion_rule()
        assert rule.check(registry, 0) is None
        # With the gauge present the worst offender is named.
        gauge = registry.gauge("noc_link_utilization", "",
                               ("link", "plane"))
        gauge.labels("0,0->1,0", "dma-req").set(0.95)
        gauge.labels("1,0->1,1", "dma-rsp").set(0.97)
        detail = rule.check(registry, 0)
        assert "1,0->1,1" in detail and "97%" in detail

    def test_accelerator_stall_needs_running_status(self):
        from repro.soc.registers import STATUS_RUNNING
        registry = fresh_registry()
        rule = accelerator_stall_rule(quiet_cycles=100)
        status = registry.gauge("acc_status", "", ("device",))
        registry.acc_last_progress.labels("de0").set(0)
        # Idle device: never a stall, however quiet.
        status.labels("de0").set(0)
        assert rule.check(registry, 10_000) is None
        # Running and quiet past the threshold: stalled.
        status.labels("de0").set(STATUS_RUNNING)
        assert rule.check(registry, 99) is None
        assert "de0" in rule.check(registry, 101)

    def test_default_rules_derive_quiet_cycles(self):
        runtime = EspRuntime(build_soc1())
        server = InferenceServer(runtime, ServerConfig())
        server.register(TenantConfig(
            name="denoiser", dataflow=chain("1de-hr", ["de0"]),
            mode="pipe"))
        rules = default_rules(server)
        names = {r.name for r in rules}
        assert {"queue-saturation", "link-congestion",
                "accelerator-stall"} <= names
        stall = next(r for r in rules
                     if r.name == "accelerator-stall")
        # 2x the slowest kernel (de0: 14370) — one full COMPUTE phase
        # of heartbeat silence is legitimate, twice that is not.
        assert "28740" in stall.description


class TestFaultScenario:
    """Acceptance: acc hang + queue pileup -> two alerts, full cycle."""

    def test_hang_and_saturation_fire_and_resolve(self):
        runtime = EspRuntime(
            build_soc1(),
            recovery=RecoveryPolicy(watchdog_cycles=45_000,
                                    max_retries=2,
                                    software_fallback=False))
        FaultInjector(FaultPlan([
            FaultSpec(kind="acc_hang", target="de0", at_cycle=1,
                      count=1)])).attach(runtime.soc)
        # max_batch_frames=1 defeats coalescing so queued requests sit
        # in the admission queue (not one batch) while de0 is hung.
        server = InferenceServer(runtime,
                                 ServerConfig(max_queue_depth=8))
        server.register(TenantConfig(
            name="denoiser", dataflow=chain("1de-hang", ["de0"]),
            mode="pipe", max_batch_frames=1))
        registry = instrument_server(server)
        monitor = HealthMonitor(registry, [
            # Depth >= 4 of 8 while the hung batch blocks the loop.
            queue_saturation_rule(max_depth=8, fraction=0.5),
            # One COMPUTE phase of silence (14370) is legitimate;
            # 30000 is not, and the watchdog only fires at 45000 —
            # the monitor sees the stall before recovery kicks in.
            accelerator_stall_rule(quiet_cycles=30_000),
        ])
        MetricsSampler(registry, interval=2_500,
                       callbacks=[lambda r: monitor.evaluate()]).start()

        frames, _ = de_cl_inputs(6, seed=0)
        trace = [TracedRequest(500 * i, "denoiser",
                               np.atleast_2d(frames)[i:i + 1])
                 for i in range(6)]
        report = server.run_trace(trace)
        monitor.evaluate()

        # The hang was recovered, not dropped: all six served.
        assert len(report.completions) == 6
        assert registry.get(
            "runtime_watchdog_timeouts_total").total >= 1

        by_rule = {}
        for alert in monitor.history:
            by_rule.setdefault(alert.rule, []).append(alert)
        assert {"queue-saturation", "accelerator-stall"} <= \
            set(by_rule), monitor.history
        for rule in ("queue-saturation", "accelerator-stall"):
            alert = by_rule[rule][0]
            assert alert.state == STATE_RESOLVED, alert
            assert alert.resolved_at > alert.fired_at > 0, alert
        # The stall was caught mid-hang, before the watchdog (45000)
        # reset the tile.
        stall = by_rule["accelerator-stall"][0]
        assert stall.fired_at < 45_000
        assert monitor.status() == "healthy"
