"""Prometheus exposition conformance and round-trip tests."""

import pytest

from repro.metrics import (
    MetricsRegistry,
    parse_exemplars,
    parse_exposition,
    to_prometheus,
)
from repro.sim import Environment


def fresh_registry():
    return MetricsRegistry(Environment())


class TestFormat:
    def test_help_and_type_lines(self):
        registry = fresh_registry()
        registry.noc_packets.labels("dma-req").inc(5)
        text = to_prometheus(registry)
        assert "# HELP repro_noc_packets_total " in text
        assert "# TYPE repro_noc_packets_total counter" in text
        assert 'repro_noc_packets_total{plane="dma-req"} 5' in text

    def test_namespace_prefix(self):
        registry = fresh_registry()
        registry.counter("x_total").inc()
        assert "soc_x_total" in to_prometheus(registry,
                                              namespace="soc")
        assert "\nx_total" in to_prometheus(registry, namespace="")

    def test_empty_families_omitted(self):
        registry = fresh_registry()
        text = to_prometheus(registry)
        # No series recorded anywhere: nothing but whitespace.
        assert text.strip() == ""

    def test_label_escaping(self):
        registry = fresh_registry()
        counter = registry.counter("esc_total", "", ("path",))
        counter.labels('a\\b"c\nd').inc()
        text = to_prometheus(registry)
        assert r'path="a\\b\"c\nd"' in text
        # ...and the parser reverses it.
        samples = parse_exposition(text)
        name, labels, value = samples[0]
        assert labels["path"] == 'a\\b"c\nd'
        assert value == 1

    def test_histogram_expansion(self):
        registry = fresh_registry()
        hist = registry.histogram("lat_cycles", "latency", ("t",),
                                  buckets=(1, 2, 4))
        for value in (1, 2, 3, 100):
            hist.labels("a").observe(value)
        text = to_prometheus(registry)
        assert "# TYPE repro_lat_cycles histogram" in text
        # Cumulative bucket counts, in bound order, with +Inf last.
        assert 'repro_lat_cycles_bucket{t="a",le="1"} 1' in text
        assert 'repro_lat_cycles_bucket{t="a",le="2"} 2' in text
        assert 'repro_lat_cycles_bucket{t="a",le="4"} 3' in text
        assert 'repro_lat_cycles_bucket{t="a",le="+Inf"} 4' in text
        assert 'repro_lat_cycles_sum{t="a"} 106' in text
        assert 'repro_lat_cycles_count{t="a"} 4' in text

    def test_bucket_order_and_monotonicity(self):
        registry = fresh_registry()
        hist = registry.histogram("m_cycles")
        for value in (3, 17, 900, 70_000):
            hist.observe(value)
        text = to_prometheus(registry)
        counts = [float(line.rsplit(" ", 1)[1])
                  for line in text.splitlines()
                  if line.startswith("repro_m_cycles_bucket")]
        assert counts == sorted(counts)
        assert counts[-1] == 4   # +Inf holds everything


class TestRoundTrip:
    def test_counter_gauge_round_trip(self):
        registry = fresh_registry()
        registry.serve_admitted.labels("tenant-a").inc(3)
        registry.serve_queue_depth.set(9)
        samples = dict(
            ((name, tuple(sorted(labels.items()))), value)
            for name, labels, value in
            parse_exposition(to_prometheus(registry)))
        assert samples[("repro_serve_admitted_total",
                        (("tenant", "tenant-a"),))] == 3
        assert samples[("repro_serve_queue_depth", ())] == 9

    def test_histogram_round_trip_reconstructs_counts(self):
        registry = fresh_registry()
        hist = registry.serve_request_cycles
        observations = [10, 10, 500, 9000, 1_000_000]
        for value in observations:
            hist.labels("t").observe(value)
        samples = parse_exposition(to_prometheus(registry))
        buckets = [(labels["le"], value) for name, labels, value
                   in samples
                   if name == "repro_serve_request_cycles_bucket"]
        count = next(value for name, labels, value in samples
                     if name == "repro_serve_request_cycles_count")
        total = next(value for name, labels, value in samples
                     if name == "repro_serve_request_cycles_sum")
        assert count == len(observations)
        assert total == sum(observations)
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == count
        # De-cumulate and compare against the live series.
        series = hist.labels("t")
        cumulative = [value for _, value in buckets]
        per_bucket = [b - a for a, b in
                      zip([0] + cumulative, cumulative)]
        assert per_bucket == series.counts

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_exposition("not-a-number-after {")
        with pytest.raises(ValueError):
            parse_exposition("name{a=unquoted} 1")


class TestExemplars:
    def _observed(self):
        registry = fresh_registry()
        hist = registry.histogram("lat_cycles", buckets=(100, 10_000))
        hist.observe(50, exemplar="t-0")
        hist.observe(70, exemplar="t-3")       # same bucket: last wins
        hist.observe(5_000)                    # no exemplar recorded
        hist.observe(1_000_000, exemplar="t-7")   # +Inf bucket
        return registry

    def test_bucket_lines_carry_openmetrics_suffix(self):
        text = to_prometheus(self._observed())
        assert ('le="100"} 2 # {trace_id="t-3"} 70' in text)
        assert ('le="+Inf"} 4 # {trace_id="t-7"} 1000000' in text)
        # The exemplar-less bucket has a bare sample line.
        assert 'le="10000"} 3\n' in text

    def test_parse_exemplars_round_trip(self):
        exemplars = parse_exemplars(to_prometheus(self._observed()))
        by_le = {labels["le"]: (ex_labels["trace_id"], ex_value)
                 for name, labels, value, ex_labels, ex_value
                 in exemplars}
        assert by_le == {"100": ("t-3", 70.0),
                         "+Inf": ("t-7", 1000000.0)}

    def test_parse_exposition_still_three_tuples(self):
        # The exemplar suffix must be invisible to the plain parser:
        # same shape, same values as an exemplar-free exposition.
        samples = parse_exposition(to_prometheus(self._observed()))
        buckets = [(labels["le"], value) for name, labels, value
                   in samples if name.endswith("_bucket")]
        assert buckets == [("100", 2.0), ("10000", 3.0),
                           ("+Inf", 4.0)]

    def test_snapshot_includes_exemplars(self):
        snap = self._observed().snapshot()
        family = next(f for f in snap["families"]
                      if f["name"] == "lat_cycles")
        exemplars = family["series"][0]["exemplars"]
        assert exemplars == {"0": ["t-3", 70],
                             "2": ["t-7", 1000000]}

    def test_exemplar_free_histogram_unchanged(self):
        registry = fresh_registry()
        hist = registry.histogram("plain_cycles", buckets=(10,))
        hist.observe(5)
        text = to_prometheus(registry)
        assert " # {" not in text
        snap = registry.snapshot()
        family = next(f for f in snap["families"]
                      if f["name"] == "plain_cycles")
        assert "exemplars" not in family["series"][0]
        assert parse_exemplars(text) == []


def test_snapshot_is_json_serializable(tmp_path):
    import json

    from repro.metrics import write_snapshot

    registry = fresh_registry()
    registry.noc_packets.labels("dma-req").inc()
    registry.serve_request_cycles.labels("t").observe(7)
    path = write_snapshot(registry, tmp_path / "snap.json")
    loaded = json.loads(path.read_text())
    assert loaded["cycle"] == 0
    assert any(f["name"] == "noc_packets_total"
               for f in loaded["families"])
