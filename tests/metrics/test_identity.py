"""Metrics recording must not change simulated time — ever.

The registry's contract (``Environment.metrics``) is that recording
only mutates Python ints and never yields, schedules, or touches the
event queue: a metrics-enabled run is *bit-identical* — same final
cycle, same number of dispatched kernel events — to the same run with
``env.metrics is None``. These tests enforce that contract on the same
workloads ``benchmarks/bench_perf.py`` pins (smoke sizes), plus the
multi-tenant serving trace.

The one deliberate exception is the opt-in :class:`MetricsSampler`,
which schedules its own periodic timeout events. Pure timeouts never
perturb *other* processes' timing, so a sampled run keeps the exact
cycle count while dispatching a few extra events — asserted here too.
"""

import numpy as np

from repro.eval import build_soc1
from repro.eval.apps import (
    APP_CONFIGS,
    classifier_inputs,
    dataflow_nv_cl,
    de_cl_inputs,
    fresh_runtime,
    nv_cl_inputs,
)
from repro.metrics import (
    MetricsSampler,
    attach_metrics,
    instrument_server,
)
from repro.runtime import EspRuntime, chain
from repro.serve import (
    InferenceServer,
    ServerConfig,
    TenantConfig,
    TracedRequest,
)

#: Smoke pins from benchmarks/bench_perf.py — the seed behaviour the
#: instrumented runs must land on exactly.
PIPE_FRAMES = 8
PINS = {"p2p": (24270, 1478), "dma": (28073, 2618)}


def run_pipeline(mode, instrumented):
    config = APP_CONFIGS["4nv_4cl"]
    frames, _ = config.make_inputs(PIPE_FRAMES, seed=0)
    runtime = fresh_runtime(config)
    registry = attach_metrics(runtime.soc.env) if instrumented else None
    runtime.esp_run(config.build_dataflow(), frames, mode=mode)
    env = runtime.soc.env
    return env.now, env.events_processed, registry


def build_server():
    runtime = EspRuntime(build_soc1())
    server = InferenceServer(runtime, ServerConfig())
    dataflows = {"night-vision": dataflow_nv_cl(1, 1),
                 "classifier": chain("1cl-id", ["cl1"]),
                 "denoiser": chain("1de-id", ["de0"])}
    modes = {"night-vision": "p2p", "classifier": "pipe",
             "denoiser": "pipe"}
    for name, dataflow in dataflows.items():
        server.register(TenantConfig(name=name, dataflow=dataflow,
                                     mode=modes[name]))
    return runtime, server


def build_trace(n_requests=1, frames_per_request=1):
    n = n_requests * frames_per_request
    inputs = {"night-vision": nv_cl_inputs(n)[0],
              "classifier": classifier_inputs(n, seed=1)[0],
              "denoiser": de_cl_inputs(n, seed=2)[0]}
    trace = []
    for tenant, frames in inputs.items():
        for index in range(n_requests):
            lo = index * frames_per_request
            trace.append(TracedRequest(
                0, tenant,
                np.atleast_2d(frames)[lo:lo + frames_per_request]))
    return trace


def run_serve(instrumented, sampler_interval=None):
    runtime, server = build_server()
    registry = instrument_server(server) if instrumented else None
    if sampler_interval is not None:
        MetricsSampler(registry, interval=sampler_interval,
                       callbacks=[]).start()
    server.run_trace(build_trace())
    env = runtime.soc.env
    return env.now, env.events_processed, registry


class TestPassiveIdentity:
    def test_p2p_pipeline_bit_identical(self):
        bare = run_pipeline("p2p", instrumented=False)
        instrumented = run_pipeline("p2p", instrumented=True)
        assert bare[:2] == instrumented[:2] == PINS["p2p"]

    def test_dma_pipeline_bit_identical(self):
        bare = run_pipeline("pipe", instrumented=False)
        instrumented = run_pipeline("pipe", instrumented=True)
        assert bare[:2] == instrumented[:2] == PINS["dma"]

    def test_serve_trace_bit_identical(self):
        bare = run_serve(instrumented=False)
        instrumented = run_serve(instrumented=True)
        assert bare[:2] == instrumented[:2]

    def test_instrumented_run_actually_recorded(self):
        """Identity is vacuous if nothing was recorded — prove the
        counters moved while the timing did not."""
        _, _, registry = run_serve(instrumented=True)
        assert registry.noc_packets.total > 0
        assert registry.dma_transactions.total > 0
        assert registry.serve_completed.total == 3
        assert registry.acc_invocations.total > 0
        for tenant in ("night-vision", "classifier", "denoiser"):
            series = registry.serve_request_cycles.labels(tenant)
            assert series.count == 1 and series.sum > 0


class TestSamplerIdentity:
    def test_sampler_keeps_cycles_exact(self):
        """Scraping adds sampler timeout events but zero cycles."""
        passive = run_serve(instrumented=True)
        sampled = run_serve(instrumented=True, sampler_interval=1000)
        assert sampled[0] == passive[0]          # cycles identical
        assert sampled[1] > passive[1]           # its own ticks only
        extra = sampled[1] - passive[1]
        assert extra <= passive[0] // 1000 + 1

    def test_sampler_callbacks_see_live_state(self):
        depths = []
        runtime, server = build_server()
        registry = instrument_server(server)
        MetricsSampler(
            registry, interval=2000,
            callbacks=[lambda r: depths.append(
                r.serve_completed.total)]).start()
        server.run_trace(build_trace())
        assert depths, "sampler never ticked"
        assert depths == sorted(depths)          # monotone counter
        assert depths[-1] <= 3
