"""Dashboard rendering: tile grid, tenant table, full frame."""

import numpy as np

from repro.eval import build_soc1
from repro.eval.apps import de_cl_inputs
from repro.metrics import (
    HEAT_RAMP,
    HealthMonitor,
    MetricsRegistry,
    default_rules,
    instrument_server,
    render_dashboard,
    render_tenant_table,
    render_tile_grid,
)
from repro.runtime import EspRuntime, chain
from repro.serve import (
    InferenceServer,
    ServerConfig,
    TenantConfig,
    TracedRequest,
)
from repro.sim import Environment


def served_setup(n_requests=2):
    runtime = EspRuntime(build_soc1())
    server = InferenceServer(runtime, ServerConfig())
    server.register(TenantConfig(
        name="denoiser", dataflow=chain("1de-dash", ["de0"]),
        mode="pipe"))
    registry = instrument_server(server)
    frames, _ = de_cl_inputs(n_requests, seed=0)
    server.run_trace([
        TracedRequest(0, "denoiser", np.atleast_2d(frames)[i:i + 1])
        for i in range(n_requests)])
    return runtime.soc, server, registry


def test_heat_ramp_is_monotone_and_bounded():
    assert HEAT_RAMP[0] == " " and len(HEAT_RAMP) == 10


def test_tile_grid_shape_and_cells():
    soc, _, registry = served_setup()
    lines = render_tile_grid(soc, registry)
    # rows of cells interleaved with rows of vertical link heat.
    assert len(lines) == 2 * soc.config.rows - 1
    grid = "\n".join(lines)
    for name in ("de0", "nv0", "cl0"):
        assert name[:4] in grid
    assert "[   cpu   ]" in grid or "cpu" in grid
    assert "mem" in grid


def test_tenant_table_lists_traffic():
    _, _, registry = served_setup()
    lines = render_tenant_table(registry)
    assert any(line.startswith("denoiser") for line in lines)
    header = lines[0]
    assert "p99 cyc" in header
    # Scaled variant switches the unit.
    assert "p99 us" in render_tenant_table(registry,
                                           clock_mhz=500.0)[0]


def test_tenant_table_empty_registry():
    registry = MetricsRegistry(Environment())
    assert render_tenant_table(registry) == ["(no serve traffic yet)"]


def test_full_dashboard_frame():
    soc, server, registry = served_setup()
    monitor = HealthMonitor(registry, default_rules(server))
    monitor.evaluate()
    frame = render_dashboard(soc, registry, monitor)
    assert f" {soc.name}  cycle " in frame
    assert "health: healthy" in frame
    assert "denoiser" in frame
    # Collector-backed utilization gauges got refreshed by the render.
    busy = registry.get("acc_busy_cycles")
    assert any(series.value > 0 for _, series in busy.series())


def test_dashboard_shows_firing_alerts():
    soc, server, registry = served_setup()
    from repro.metrics import SloRule
    monitor = HealthMonitor(registry, [SloRule(
        name="always-on", severity="warning",
        check=lambda reg, now: "synthetic violation")])
    monitor.evaluate()
    frame = render_dashboard(soc, registry, monitor)
    assert "FIRING [warning] always-on" in frame
    assert "synthetic violation" in frame
