"""End-to-end fleet tests: policies, determinism, fidelity pins.

The campaign cases run the short ("smoke") overload workload of
``repro.eval.fleet`` — the same skewed, bursty trace the fleet
benchmark grades — once per policy, shared module-wide through
fixtures (fleets are cheap but not free).
"""

import pytest

from repro.eval.apps import APP_CONFIGS, build_soc_for, build_soc1
from repro.eval.fleet import (
    CAMPAIGN_POLICIES,
    build_standard_fleet,
    overload_workload,
    run_fleet_campaign,
    standard_inputs,
    standard_tenants,
)
from repro.fleet import (
    Arrival,
    Fleet,
    FleetInstance,
    FleetRouter,
    build_fleet,
    generate_arrivals,
)
from repro.metrics import merge_snapshots
from repro.serve import ServerConfig

# The bench_perf seed pins (tests must not import from benchmarks/).
PIN_P2P = 77460
PIN_DMA = 90139
PIN_SERVE = 65324


@pytest.fixture(scope="module")
def campaign():
    """One smoke campaign: all three policies, same arrival trace."""
    return run_fleet_campaign(policies=CAMPAIGN_POLICIES,
                              n_instances=4, seed=0, smoke=True)


class TestCampaignPolicies:
    def test_overload_regime(self, campaign):
        """Every policy rejects (bounded queues push back) yet still
        completes most traffic — the regime the benchmark grades."""
        for policy, report in campaign.items():
            assert report.rejections, policy
            assert report.completed_frames > 0, policy
            assert report.failed == 0, policy
            assert all(r.reason == "queue-full"
                       for _, r in report.rejections), policy

    def test_accounting_conserved(self, campaign):
        for policy, report in campaign.items():
            assert len(report.decisions) == report.offered_requests
            assert report.admitted + len(report.rejections) \
                == report.offered_requests, policy
            routed = report.requests_by_instance()
            assert sum(routed.values()) == report.offered_requests

    def test_least_loaded_beats_round_robin_p99(self, campaign):
        """Under the skewed tenant mix, queue-depth feedback must beat
        blind rotation on the fleet-wide tail."""
        assert campaign["least-loaded"].latency.p99 \
            < campaign["round-robin"].latency.p99

    def test_policies_share_the_trace(self, campaign):
        offered = {(r.offered_requests, r.offered_frames)
                   for r in campaign.values()}
        assert len(offered) == 1

    def test_round_robin_spreads_within_shards(self, campaign):
        report = campaign["round-robin"]
        routed = report.requests_by_instance()
        # With replicas=3 of 4 instances, at least 3 instances see
        # traffic and no single instance takes everything.
        active = [n for n, count in routed.items() if count > 0]
        assert len(active) >= 3
        assert max(routed.values()) < report.offered_requests


class TestDeterminism:
    def test_same_seed_same_decisions_and_tail(self):
        """request_ids come from a process-global counter, so compare
        decision (at, tenant, instance) triples, never ids."""
        def run():
            report = run_fleet_campaign(policies=("least-loaded",),
                                        n_instances=4, seed=0,
                                        smoke=True)["least-loaded"]
            return ([(d.at, d.tenant, d.instance)
                     for d in report.decisions],
                    report.latency.p99, report.makespan_cycles,
                    len(report.rejections))

        assert run() == run()

    def test_workload_seed_changes_decisions(self):
        first = run_fleet_campaign(policies=("round-robin",),
                                   n_instances=4, seed=0,
                                   smoke=True)["round-robin"]
        second = run_fleet_campaign(policies=("round-robin",),
                                    n_instances=4, seed=1,
                                    smoke=True)["round-robin"]
        assert [(d.at, d.tenant) for d in first.decisions] \
            != [(d.at, d.tenant) for d in second.decisions]


class TestSingleInstanceFidelity:
    """A 1-instance fleet executes the standalone event sequence —
    pinned to the seed cycle counts of ``bench_perf``."""

    def test_serve_trace_pins(self):
        instance = FleetInstance.build(
            "i0", build_soc1, standard_tenants(),
            server_config=ServerConfig())
        fleet = Fleet([instance], FleetRouter([instance]))
        inputs = standard_inputs(n_frames=4)
        arrivals = [Arrival(0, tenant, 2)
                    for tenant in inputs for _ in range(2)]
        report = fleet.run(arrivals, inputs)
        assert not report.rejections and report.failed == 0
        assert report.makespan_cycles == PIN_SERVE

    @pytest.mark.parametrize("mode,pin", [("p2p", PIN_P2P),
                                          ("pipe", PIN_DMA)])
    def test_pipeline_pins_through_instance_runtime(self, mode, pin):
        """The instance's runtime is the plain runtime: driving the
        4nv_4cl pipeline through it lands on the pinned cycles."""
        config = APP_CONFIGS["4nv_4cl"]
        instance = FleetInstance.build(
            "i0", lambda: build_soc_for(config), tenants=[])
        frames, _ = config.make_inputs(32, seed=0)
        instance.runtime.esp_run(config.build_dataflow(), frames,
                                 mode=mode)
        assert instance.now == pin


class TestFleetMechanics:
    def test_build_fleet_rejects_empty(self):
        with pytest.raises(ValueError):
            build_fleet(0, build_soc1, standard_tenants)

    def test_advance_to_rejects_rewind(self):
        instance = FleetInstance.build("i0", build_soc1,
                                       standard_tenants())
        instance.advance_to(100)
        with pytest.raises(ValueError):
            instance.advance_to(50)
        assert instance.now == 100

    def test_poll_completions_is_incremental(self):
        fleet = build_standard_fleet(n_instances=1,
                                     policy="round-robin")
        instance = fleet.instances[0]
        inputs = standard_inputs(n_frames=2)
        fleet.run([Arrival(0, "classifier", 1)], inputs)
        # Fleet.run's final observe() already polled everything.
        assert instance.server.completions
        assert instance.poll_completions() == []

    def test_same_cycle_arrival_on_busy_instance_is_not_stranded(self):
        """An arrival landing on a busy instance's *current* cycle.

        The coordinator's ``advance_to`` for such an arrival is an
        equal-cycle no-op; the submission must still be admitted and
        served exactly like the standalone server's back-to-back
        same-cycle submissions, with nothing stranded at drain.
        """
        instance = FleetInstance.build("i0", build_soc1,
                                       standard_tenants())
        fleet = Fleet([instance], FleetRouter([instance]))
        inputs = standard_inputs(n_frames=2)
        instance.start()
        assert instance.submit("classifier", inputs["classifier"]) is None
        # Advance into the middle of the first request's service.
        mid = instance.now + 500
        instance.advance_to(mid)
        assert instance.load().est_backlog_cycles > 0   # still busy
        # The arrival lands at exactly the instance's current cycle:
        # the lockstep advance is a no-op and must not strand the
        # admission handshake.
        instance.advance_to(mid)
        assert instance.submit("classifier", inputs["classifier"]) is None
        instance.drain()
        assert len(instance.poll_completions()) == 2
        # Nothing due at the final cycle is left undispatched: drain's
        # zero-delay flush emptied the ready deque.
        assert not instance.env._ready

    def test_drain_flushes_same_cycle_events(self):
        """After drain(), no same-cycle event is left pending.

        ``run(until=event)`` aborts mid-cycle when the terminal event
        processes; drain's flush must dispatch the rest of that cycle
        (completion callbacks, metric updates) so reports and the
        router's completion feed see every finished request even when
        the coordinator never advances the clock again.
        """
        fleet = build_standard_fleet(n_instances=2,
                                     policy="round-robin")
        inputs = standard_inputs(n_frames=2)
        report = fleet.run([Arrival(0, "classifier", 1),
                            Arrival(0, "denoiser", 1),
                            Arrival(100, "classifier", 1)], inputs)
        assert report.failed == 0 and not report.rejections
        for instance in fleet.instances:
            assert not instance.env._ready

    def test_idle_instances_age_in_lockstep(self):
        """Every instance ends at the same fleet-final cycle, busy or
        not."""
        fleet = build_standard_fleet(n_instances=3,
                                     policy="round-robin")
        inputs = standard_inputs(n_frames=4)
        report = fleet.run([Arrival(0, "classifier", 1),
                            Arrival(500, "denoiser", 1)], inputs)
        assert len({i.now for i in fleet.instances}) == 1
        assert report.makespan_cycles == fleet.instances[0].now


class TestFleetMetrics:
    def test_namespaced_registries_merge(self):
        fleet = build_standard_fleet(n_instances=2,
                                     policy="round-robin",
                                     metrics=True)
        inputs = standard_inputs(n_frames=4)
        spec = overload_workload(seed=3, smoke=True)
        arrivals = generate_arrivals(spec)[:8]
        fleet.run(arrivals, inputs)
        snapshots = [instance.metrics.snapshot()
                     for instance in fleet.instances]
        merged = merge_snapshots(snapshots)
        names = [family["name"] for family in merged["families"]]
        assert len(names) == len(set(names))
        assert any(name.startswith("i0_") for name in names)
        assert any(name.startswith("i1_") for name in names)
