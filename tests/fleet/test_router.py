"""Tests for tenant sharding and the load-balancing policies.

Policy mechanics are tested against stub instances (the router only
touches ``name`` / ``load()`` / ``poll_completions()``), so each case
pins one decision rule without simulating SoCs; the end-to-end policy
behaviour on real instances lives in ``test_cluster.py``.
"""

from types import SimpleNamespace

import pytest

from repro.fleet import FleetRouter, ROUTER_POLICIES, shard_tenant


class StubInstance:
    """Duck-typed instance: controllable backlog + completion feed."""

    def __init__(self, name, backlog=0):
        self.name = name
        self.backlog = backlog
        self.pending = []

    def load(self):
        return SimpleNamespace(est_backlog_cycles=self.backlog)

    def poll_completions(self):
        fresh, self.pending = self.pending, []
        return fresh

    def complete(self, latency_cycles):
        self.pending.append(
            SimpleNamespace(latency_cycles=latency_cycles))


def stubs(n, backlogs=None):
    backlogs = backlogs or [0] * n
    return [StubInstance(f"i{k}", backlogs[k]) for k in range(n)]


class TestSharding:
    NAMES = [f"i{k}" for k in range(5)]

    def test_deterministic_and_sized(self):
        shard = shard_tenant("classifier", self.NAMES, replicas=3)
        assert shard == shard_tenant("classifier", self.NAMES, 3)
        assert len(shard) == 3
        assert set(shard) <= set(self.NAMES)

    def test_salt_moves_placement(self):
        shards = {shard_tenant("classifier", self.NAMES, 3, salt=s)
                  for s in range(20)}
        assert len(shards) > 1

    def test_consistency_on_instance_removal(self):
        """Removing an instance only touches tenants it hosted: the
        survivors of the old shard stay placed, and tenants that never
        shard onto it keep their placement bit-for-bit."""
        tenants = [f"tenant-{k}" for k in range(40)]
        for tenant in tenants:
            before = shard_tenant(tenant, self.NAMES, 2)
            after = shard_tenant(tenant, self.NAMES[:-1], 2)
            if self.NAMES[-1] not in before:
                assert after == before
            else:
                survivors = [n for n in before if n != self.NAMES[-1]]
                assert set(survivors) <= set(after)

    def test_replicas_bounds(self):
        with pytest.raises(ValueError):
            shard_tenant("t", self.NAMES, 0)
        with pytest.raises(ValueError):
            shard_tenant("t", self.NAMES, 6)


class TestRouterConstruction:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            FleetRouter(stubs(2), policy="random")

    def test_rejects_duplicate_names(self):
        pair = [StubInstance("dup"), StubInstance("dup")]
        with pytest.raises(ValueError):
            FleetRouter(pair)

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            FleetRouter([])

    def test_replicas_default_to_fleet_size(self):
        router = FleetRouter(stubs(3))
        assert router.replicas == 3

    def test_all_policies_exported(self):
        for policy in ROUTER_POLICIES:
            FleetRouter(stubs(2), policy=policy)


class TestRoundRobin:
    def test_rotates_through_shard(self):
        router = FleetRouter(stubs(3), policy="round-robin")
        shard = router.shard("t")
        picks = [router.route("t").name for _ in range(6)]
        assert picks == list(shard) * 2

    def test_rotation_is_per_tenant(self):
        router = FleetRouter(stubs(3), policy="round-robin")
        first_a = router.route("a").name
        router.route("a")
        # Tenant b starts its own rotation at its own shard head.
        assert router.route("b").name == router.shard("b")[0]
        assert first_a == router.shard("a")[0]


class TestLeastLoaded:
    def test_picks_smallest_backlog(self):
        fleet = stubs(3, backlogs=[500, 20, 300])
        router = FleetRouter(fleet, policy="least-loaded")
        assert router.route("t").name == "i1"

    def test_reacts_to_load_changes(self):
        fleet = stubs(2, backlogs=[10, 0])
        router = FleetRouter(fleet, policy="least-loaded")
        assert router.route("t").name == "i1"
        fleet[1].backlog = 1_000
        assert router.route("t").name == "i0"

    def test_tie_breaks_on_shard_order(self):
        router = FleetRouter(stubs(3), policy="least-loaded")
        assert router.route("t").name == router.shard("t")[0]


class TestLatencyAware:
    def test_cold_instances_explored_first(self):
        fleet = stubs(2)
        router = FleetRouter(fleet, policy="latency-aware")
        fleet[0].complete(9_000)
        router.observe()
        # i1 has no signal yet and no backlog (scores 0), so it wins
        # over i0's 9000-cycle EWMA.
        assert router.route("t").name == "i1"

    def test_stalled_cold_instance_stops_attracting_requests(self):
        """Regression: a never-completing instance must not look fastest.

        Under the old ``ewma or 0.0`` coercion, an instance that had
        completed nothing scored 0.0 forever — so a *stalled* instance
        (admits work, never finishes it) permanently won every route
        and absorbed all traffic. Cold instances are now scored by
        their live backlog, so the stalled instance's growing queue
        pushes new arrivals to the healthy (observed) instance.
        """
        fleet = stubs(2)
        router = FleetRouter(fleet, policy="latency-aware")
        healthy, stalled = fleet
        healthy.complete(2_000)
        router.observe()
        # The stalled instance admits requests but never completes any:
        # its EWMA stays None while its backlog climbs.
        for _ in range(5):
            picked = router.route("t")
            if picked is stalled:
                stalled.backlog += 3_000
        assert router.ewma_latency("i1") is None
        # Once its backlog exceeds the healthy EWMA, every further
        # decision must go to the healthy instance.
        later = [router.route("t").name for _ in range(10)]
        assert set(later) == {"i0"}

    def test_prefers_lower_ewma(self):
        fleet = stubs(2)
        router = FleetRouter(fleet, policy="latency-aware",
                             ewma_alpha=0.5)
        fleet[0].complete(1_000)
        fleet[1].complete(4_000)
        router.observe()
        assert router.route("t").name == "i0"
        assert router.ewma_latency("i0") == 1_000.0

    def test_ewma_folds_with_alpha(self):
        fleet = stubs(1)
        router = FleetRouter(fleet, policy="latency-aware",
                             ewma_alpha=0.25)
        fleet[0].complete(1_000)
        router.observe()
        fleet[0].complete(2_000)
        router.observe()
        assert router.ewma_latency("i0") \
            == pytest.approx(0.25 * 2_000 + 0.75 * 1_000)

    def test_observe_consumes_each_completion_once(self):
        fleet = stubs(1)
        router = FleetRouter(fleet, policy="latency-aware")
        fleet[0].complete(1_000)
        router.observe()
        router.observe()   # nothing new: EWMA must not move
        assert router.ewma_latency("i0") == 1_000.0


class TestDecisionLog:
    def test_decisions_recorded_and_deterministic(self):
        def drive():
            fleet = stubs(3, backlogs=[5, 1, 3])
            router = FleetRouter(fleet, policy="least-loaded",
                                 replicas=2, salt=4)
            for at, tenant in enumerate(["a", "b", "a", "c"]):
                router.route(tenant, at=at)
            return [(d.at, d.tenant, d.instance, d.shard, d.score)
                    for d in router.decisions]

        assert drive() == drive()

    def test_decision_carries_policy_and_shard(self):
        router = FleetRouter(stubs(2), policy="round-robin")
        router.route("t", at=42)
        decision = router.decisions[0]
        assert decision.policy == "round-robin"
        assert decision.at == 42
        assert decision.instance in decision.shard
