"""Tests for the open-loop workload generator."""

import numpy as np
import pytest

from repro.fleet import (
    TenantLoad,
    WorkloadSpec,
    burst_windows,
    generate_arrivals,
    offered_load,
)


def spec_of(**overrides):
    base = dict(
        tenants=(TenantLoad("hot", weight=6.0, frames_min=1,
                            frames_max=8),
                 TenantLoad("warm", weight=2.0),
                 TenantLoad("cold", weight=1.0)),
        horizon_cycles=50_000,
        mean_interarrival_cycles=500.0,
        seed=7,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


class TestValidation:
    def test_needs_tenants(self):
        with pytest.raises(ValueError):
            spec_of(tenants=())

    def test_bad_frame_range(self):
        with pytest.raises(ValueError):
            TenantLoad("t", frames_min=3, frames_max=2)

    def test_bad_weight(self):
        with pytest.raises(ValueError):
            TenantLoad("t", weight=0.0)

    def test_diurnal_needs_period(self):
        with pytest.raises(ValueError):
            spec_of(diurnal_amplitude=0.5)

    def test_bursts_need_duration(self):
        with pytest.raises(ValueError):
            spec_of(burst_every_cycles=1_000.0)

    def test_burst_multiplier_at_least_one(self):
        with pytest.raises(ValueError):
            spec_of(burst_every_cycles=1_000.0,
                    burst_duration_cycles=100,
                    burst_multiplier=0.5)


class TestDeterminism:
    def test_same_spec_same_trace(self):
        spec = spec_of(diurnal_period_cycles=50_000,
                       diurnal_amplitude=0.4,
                       burst_every_cycles=10_000.0,
                       burst_duration_cycles=2_000,
                       burst_multiplier=3.0)
        assert generate_arrivals(spec) == generate_arrivals(spec)

    def test_seed_changes_trace(self):
        assert generate_arrivals(spec_of(seed=1)) \
            != generate_arrivals(spec_of(seed=2))


class TestTrace:
    def test_arrivals_ordered_and_bounded(self):
        arrivals = generate_arrivals(spec_of())
        assert all(0 <= a.at < 50_000 for a in arrivals)
        assert all(a.at <= b.at
                   for a, b in zip(arrivals, arrivals[1:]))

    def test_mean_rate_near_base_rate(self):
        """With no envelopes the count concentrates around
        horizon/mean_interarrival (Poisson, ~100 expected)."""
        arrivals = generate_arrivals(spec_of())
        assert 60 <= len(arrivals) <= 140

    def test_skewed_mix_respects_weights(self):
        load = offered_load(spec_of(), generate_arrivals(spec_of()))
        by_tenant = load["by_tenant"]
        assert by_tenant["hot"]["requests"] \
            > by_tenant["warm"]["requests"] \
            > by_tenant["cold"]["requests"]

    def test_frame_counts_within_tenant_range(self):
        arrivals = generate_arrivals(spec_of())
        hot = [a.n_frames for a in arrivals if a.tenant == "hot"]
        assert all(1 <= n <= 8 for n in hot)
        assert max(hot) > 1    # the range is actually exercised
        cold = [a.n_frames for a in arrivals if a.tenant == "cold"]
        assert all(n == 1 for n in cold)

    def test_priority_propagates(self):
        spec = spec_of(tenants=(TenantLoad("t", priority=3),))
        arrivals = generate_arrivals(spec)
        assert arrivals and all(a.priority == 3 for a in arrivals)


class TestEnvelopes:
    def test_bursts_add_arrivals(self):
        calm = generate_arrivals(spec_of())
        bursty = generate_arrivals(spec_of(
            burst_every_cycles=10_000.0, burst_duration_cycles=5_000,
            burst_multiplier=4.0))
        assert len(bursty) > len(calm)

    def test_burst_windows_seeded_and_in_horizon(self):
        spec = spec_of(burst_every_cycles=10_000.0,
                       burst_duration_cycles=2_000)
        first = burst_windows(spec, np.random.default_rng(spec.seed))
        again = burst_windows(spec, np.random.default_rng(spec.seed))
        assert first == again and first
        assert all(0 <= start < spec.horizon_cycles
                   for start, _ in first)

    def test_diurnal_shifts_arrivals_toward_peak(self):
        """With a full-horizon sine envelope the first half of the
        horizon (rising sine) must carry more arrivals than the
        second (falling below base rate)."""
        spec = spec_of(diurnal_period_cycles=50_000,
                       diurnal_amplitude=0.9)
        arrivals = generate_arrivals(spec)
        first = sum(1 for a in arrivals if a.at < 25_000)
        second = len(arrivals) - first
        assert first > second


class TestOfferedLoad:
    def test_totals_consistent(self):
        spec = spec_of()
        arrivals = generate_arrivals(spec)
        load = offered_load(spec, arrivals)
        assert load["requests"] == len(arrivals)
        assert load["frames"] == sum(a.n_frames for a in arrivals)
        assert sum(t["requests"] for t in load["by_tenant"].values()) \
            == load["requests"]
