"""Tests for fixed-point formats (ap_fixed emulation)."""

import numpy as np
import pytest

from repro.fixed import DEFAULT_FORMAT, FixedFormat, mac_result_format


class TestConstruction:
    def test_default_paper_format(self):
        assert DEFAULT_FORMAT.width == 16
        assert DEFAULT_FORMAT.integer_bits == 6
        assert DEFAULT_FORMAT.fraction_bits == 10

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            FixedFormat(width=0, integer_bits=0)
        with pytest.raises(ValueError):
            FixedFormat(width=65, integer_bits=6)

    def test_integer_bits_exceeding_width(self):
        with pytest.raises(ValueError):
            FixedFormat(width=8, integer_bits=9)

    def test_signed_needs_sign_bit(self):
        with pytest.raises(ValueError):
            FixedFormat(width=8, integer_bits=0, signed=True)
        FixedFormat(width=8, integer_bits=0, signed=False)  # ok

    def test_invalid_rounding_overflow(self):
        with pytest.raises(ValueError):
            FixedFormat(width=8, integer_bits=4, rounding="banker")
        with pytest.raises(ValueError):
            FixedFormat(width=8, integer_bits=4, overflow="ignore")


class TestRanges:
    def test_signed_range(self):
        fmt = FixedFormat(width=16, integer_bits=6)
        assert fmt.max_value == pytest.approx(32.0 - fmt.scale)
        assert fmt.min_value == pytest.approx(-32.0)

    def test_unsigned_range(self):
        fmt = FixedFormat(width=8, integer_bits=8, signed=False)
        assert fmt.min_value == 0.0
        assert fmt.max_value == 255.0
        assert fmt.scale == 1.0

    def test_resolution(self):
        fmt = FixedFormat(width=16, integer_bits=6)
        assert fmt.resolution == 2.0 ** -10


class TestQuantize:
    def test_exact_values_pass_through(self):
        fmt = FixedFormat(width=16, integer_bits=6)
        values = np.array([0.0, 1.0, -1.5, 0.25, 31.0])
        np.testing.assert_array_equal(fmt.quantize(values), values)

    def test_truncation_rounds_toward_negative_infinity(self):
        fmt = FixedFormat(width=16, integer_bits=6, rounding="truncate")
        scale = fmt.scale
        assert fmt.quantize(0.4 * scale) == 0.0
        assert fmt.quantize(-0.4 * scale) == -scale

    def test_nearest_rounding(self):
        fmt = FixedFormat(width=16, integer_bits=6, rounding="nearest")
        scale = fmt.scale
        assert fmt.quantize(0.6 * scale) == scale
        assert fmt.quantize(0.4 * scale) == 0.0

    def test_saturation(self):
        fmt = FixedFormat(width=8, integer_bits=4)  # range [-8, 8)
        assert fmt.quantize(100.0) == fmt.max_value
        assert fmt.quantize(-100.0) == fmt.min_value

    def test_wrap_overflow(self):
        fmt = FixedFormat(width=8, integer_bits=8, signed=False,
                          overflow="wrap")
        assert fmt.quantize(256.0) == 0.0
        assert fmt.quantize(257.0) == 1.0

    def test_quantize_idempotent(self):
        fmt = FixedFormat(width=12, integer_bits=4)
        values = np.linspace(-10, 10, 101)
        once = fmt.quantize(values)
        np.testing.assert_array_equal(fmt.quantize(once), once)

    def test_quantization_error_bounded_by_lsb(self):
        fmt = FixedFormat(width=16, integer_bits=6)
        values = np.random.default_rng(0).uniform(-30, 30, 1000)
        err = np.abs(fmt.quantize(values) - values)
        assert np.all(err <= fmt.scale)

    def test_raw_roundtrip(self):
        fmt = FixedFormat(width=16, integer_bits=6)
        values = fmt.quantize(np.array([0.5, -3.25, 7.0]))
        raw = fmt.to_raw(values)
        np.testing.assert_array_equal(fmt.from_raw(raw), values)

    def test_rms_error_zero_for_representable(self):
        fmt = FixedFormat(width=16, integer_bits=6)
        assert fmt.quantization_error(np.array([1.0, 2.5])) == 0.0


class TestParse:
    def test_parse_ap_fixed(self):
        fmt = FixedFormat.parse("ap_fixed<16,6>")
        assert fmt == FixedFormat(width=16, integer_bits=6)

    def test_parse_ap_ufixed(self):
        fmt = FixedFormat.parse("ap_ufixed<8,1>")
        assert fmt.signed is False
        assert fmt.width == 8

    def test_parse_roundtrip_str(self):
        fmt = FixedFormat(width=12, integer_bits=3)
        assert FixedFormat.parse(str(fmt)) == fmt

    def test_parse_garbage(self):
        with pytest.raises(ValueError):
            FixedFormat.parse("float32")
        with pytest.raises(ValueError):
            FixedFormat.parse("ap_fixed<16>")


class TestMacFormat:
    def test_widths_add(self):
        a = FixedFormat(width=16, integer_bits=6)
        result = mac_result_format(a, a, terms=1)
        assert result.width == 32
        assert result.integer_bits == 12

    def test_guard_bits_grow_with_terms(self):
        a = FixedFormat(width=16, integer_bits=6)
        r1 = mac_result_format(a, a, terms=2)
        r2 = mac_result_format(a, a, terms=1024)
        assert r2.integer_bits - r1.integer_bits == 9

    def test_width_capped_at_64(self):
        a = FixedFormat(width=32, integer_bits=16)
        result = mac_result_format(a, a, terms=1 << 20)
        assert result.width == 64

    def test_invalid_terms(self):
        a = FixedFormat(width=16, integer_bits=6)
        with pytest.raises(ValueError):
            mac_result_format(a, a, terms=0)
