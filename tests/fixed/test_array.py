"""Tests for fixed-point array arithmetic and NoC word packing."""

import numpy as np
import pytest

from repro.fixed import (
    DEFAULT_FORMAT,
    FixedFormat,
    fixed_matvec,
    fixed_relu,
    fixed_sigmoid,
    fixed_softmax,
    pack_words,
    roundtrip,
    unpack_words,
    words_to_flits,
)


class TestMatvec:
    def test_matches_float_for_small_values(self, rng):
        fmt = FixedFormat(width=24, integer_bits=10)
        weights = rng.uniform(-1, 1, (8, 4))
        x = rng.uniform(-1, 1, 4)
        bias = rng.uniform(-1, 1, 8)
        exact = weights @ x + bias
        fixed = fixed_matvec(weights, x, bias, fmt, fmt, fmt)
        np.testing.assert_allclose(fixed, exact, atol=16 * fmt.scale)

    def test_batch_dimension(self, rng):
        fmt = DEFAULT_FORMAT
        weights = rng.uniform(-1, 1, (8, 4))
        xs = rng.uniform(-1, 1, (4, 5))   # batch of 5 columns
        bias = np.zeros(8)
        out = fixed_matvec(weights, xs, bias, fmt, fmt, fmt)
        assert out.shape == (8, 5)
        single = fixed_matvec(weights, xs[:, 0], bias, fmt, fmt, fmt)
        np.testing.assert_array_equal(out[:, 0], single)

    def test_output_saturates(self):
        fmt = FixedFormat(width=8, integer_bits=4)   # max < 8
        weights = np.full((1, 4), 7.0)
        x = np.full(4, 7.0)
        out = fixed_matvec(weights, x, np.zeros(1), fmt, fmt, fmt)
        assert out[0] == fmt.max_value


class TestActivations:
    def test_relu_clamps_negative(self):
        fmt = DEFAULT_FORMAT
        out = fixed_relu(np.array([-1.0, 0.0, 2.5]), fmt)
        np.testing.assert_array_equal(out, [0.0, 0.0, 2.5])

    def test_sigmoid_monotone_and_bounded(self):
        fmt = DEFAULT_FORMAT
        x = np.linspace(-10, 10, 201)
        y = fixed_sigmoid(x, fmt)
        assert np.all(np.diff(y) >= 0)
        assert np.all((y >= 0) & (y <= 1))

    def test_sigmoid_midpoint(self):
        fmt = DEFAULT_FORMAT
        assert fixed_sigmoid(np.array([0.0]), fmt)[0] == pytest.approx(
            0.5, abs=0.01)

    def test_softmax_preserves_argmax(self, rng):
        fmt = DEFAULT_FORMAT
        logits = rng.uniform(-4, 4, (50, 10))
        probs = fixed_softmax(logits, fmt)
        np.testing.assert_array_equal(np.argmax(probs, axis=1),
                                      np.argmax(logits, axis=1))

    def test_softmax_rows_near_one(self, rng):
        fmt = FixedFormat(width=18, integer_bits=2)
        probs = fixed_softmax(rng.uniform(-2, 2, (8, 10)), fmt)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=0.01)


class TestPacking:
    def test_pack_four_16bit_words_per_flit(self):
        raw = np.array([1, 2, 3, 4], dtype=np.int64)
        flits = pack_words(raw, word_bits=16, flit_bits=64)
        assert len(flits) == 1
        assert flits[0] == (4 << 48) | (3 << 32) | (2 << 16) | 1

    def test_unpack_inverse_of_pack(self, rng):
        raw = rng.integers(-32768, 32767, 100)
        flits = pack_words(raw, 16, 64)
        back = unpack_words(flits, 100, 16, 64, signed=True)
        np.testing.assert_array_equal(back, raw)

    def test_unsigned_unpack(self):
        raw = np.array([65535, 0, 255], dtype=np.int64)
        flits = pack_words(raw, 16, 64)
        back = unpack_words(flits, 3, 16, 64, signed=False)
        np.testing.assert_array_equal(back, raw)

    def test_partial_final_flit_padded(self):
        raw = np.array([7, 8, 9], dtype=np.int64)
        flits = pack_words(raw, 16, 64)
        assert len(flits) == 1
        back = unpack_words(flits, 3, 16, 64)
        np.testing.assert_array_equal(back, raw)

    def test_word_width_must_divide_flit(self):
        with pytest.raises(ValueError):
            pack_words(np.array([1]), word_bits=24, flit_bits=64)

    def test_words_to_flits(self):
        assert words_to_flits(1024, 16, 64) == 256
        assert words_to_flits(1025, 16, 64) == 257
        assert words_to_flits(1, 16, 64) == 1
        assert words_to_flits(10, 32, 32) == 10

    def test_words_wider_than_flit_rejected(self):
        with pytest.raises(ValueError):
            words_to_flits(4, 64, 32)

    def test_roundtrip_lossless_for_quantized(self, rng):
        fmt = DEFAULT_FORMAT
        values = fmt.quantize(rng.uniform(-30, 30, 257))
        back, flits = roundtrip(values, fmt, 16, 64)
        np.testing.assert_array_equal(back, values)
        assert len(flits) == words_to_flits(257, 16, 64)
