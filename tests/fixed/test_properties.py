"""Property-based tests on the fixed-point substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.fixed import FixedFormat, pack_words, unpack_words


def formats(max_width=32):
    """Strategy over valid signed fixed-point formats."""
    return st.integers(2, max_width).flatmap(
        lambda w: st.integers(1, w).map(
            lambda i: FixedFormat(width=w, integer_bits=i)))


@given(fmt=formats(), values=st.lists(
    st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=150, deadline=None)
def test_quantize_is_idempotent(fmt, values):
    arr = np.array(values)
    once = fmt.quantize(arr)
    np.testing.assert_array_equal(fmt.quantize(once), once)


@given(fmt=formats(), values=st.lists(
    st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=150, deadline=None)
def test_quantize_stays_in_range(fmt, values):
    out = fmt.quantize(np.array(values))
    assert np.all(out >= fmt.min_value)
    assert np.all(out <= fmt.max_value)


@given(fmt=formats(), values=st.lists(
    st.floats(-30, 30, allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=150, deadline=None)
def test_quantize_error_below_one_lsb_in_range(fmt, values):
    arr = np.clip(np.array(values), fmt.min_value, fmt.max_value)
    err = np.abs(fmt.quantize(arr) - arr)
    assert np.all(err <= fmt.scale + 1e-12)


@given(fmt=formats(), values=st.lists(
    st.floats(-1e3, 1e3, allow_nan=False), min_size=2, max_size=50))
@settings(max_examples=150, deadline=None)
def test_quantize_is_monotone(fmt, values):
    arr = np.sort(np.array(values))
    out = fmt.quantize(arr)
    assert np.all(np.diff(out) >= 0)


@given(word_bits=st.sampled_from([8, 16, 32]),
       raw=st.lists(st.integers(-128, 127), min_size=1, max_size=200))
@settings(max_examples=150, deadline=None)
def test_pack_unpack_roundtrip(word_bits, raw):
    arr = np.array(raw, dtype=np.int64)
    flits = pack_words(arr, word_bits, 64)
    back = unpack_words(flits, len(arr), word_bits, 64, signed=True)
    np.testing.assert_array_equal(back, arr)


@given(n=st.integers(1, 2000), word_bits=st.sampled_from([8, 16, 32, 64]))
@settings(max_examples=150, deadline=None)
def test_flit_count_is_ceiling_division(n, word_bits):
    from repro.fixed import words_to_flits
    per_flit = 64 // word_bits
    assert words_to_flits(n, word_bits, 64) == -(-n // per_flit)
