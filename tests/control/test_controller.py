"""ControlPlane: attach contract, remediation loop, and safety rails.

The gate tests drive :meth:`ControlPlane._act` directly — an alert
storm is just many calls through the same gate, so cooldown and
budget behavior is pinned without simulating a storm. The scenario
test at the end is the closed loop for real: a hung tile under live
traffic is forced to software, a spare is activated, and the tenant
is resharded onto it.
"""

import numpy as np
import pytest

from repro.control import (
    ACTION_ACTIVATE_SPARE,
    ACTION_FORCE_DEGRADE,
    ACTION_RESHARD,
    ACTION_WIDEN_BATCH,
    BROKEN_TILE_RULE,
    ControlConfig,
    ControlPlane,
    OUTCOME_APPLIED,
    OUTCOME_BUDGET,
    OUTCOME_COOLDOWN,
    OUTCOME_FAILED,
    OUTCOME_NOOP,
)
from repro.eval import build_soc1
from repro.eval.apps import classifier_inputs
from repro.faults import FaultInjector, FaultPlan, FaultSpec, \
    RecoveryPolicy
from repro.metrics import (
    HealthMonitor,
    MetricsSampler,
    accelerator_stall_rule,
    instrument_server,
    queue_saturation_rule,
    render_control_actions,
)
from repro.runtime import EspRuntime, chain
from repro.serve import (
    InferenceRequest,
    InferenceServer,
    ServerConfig,
    TenantConfig,
    TracedRequest,
)


def make_stack(reserve=("cl2", "cl3"), rules=(), **config):
    """A one-tenant (classifier on cl1) serving stack with the
    controller attached; alerts are driven by the given rules."""
    runtime = EspRuntime(build_soc1(), recovery=RecoveryPolicy(
        watchdog_cycles=200_000, max_retries=1,
        software_fallback=True))
    server = InferenceServer(runtime,
                             ServerConfig(max_queue_depth=8))
    server.register(TenantConfig(name="classifier",
                                 dataflow=chain("1cl-ctl", ["cl1"]),
                                 mode="pipe"))
    registry = instrument_server(server)
    monitor = HealthMonitor(registry, list(rules))
    controller = ControlPlane(server, monitor, ControlConfig(
        reserve_pool=tuple(reserve), **config)).attach()
    return runtime, server, monitor, controller


def advance(env, cycles):
    env.run(until=env.timeout(cycles))


class TestAttach:
    def test_reserve_pool_quarantined_and_rule_registered(self):
        _, server, monitor, controller = make_stack()
        assert {"cl2", "cl3"} <= server.arbiter.unavailable_tiles
        assert BROKEN_TILE_RULE in {r.name for r in monitor.rules}
        assert controller.spares == {"cl2", "cl3"}
        # Idempotent: a second attach must not re-register the rule.
        controller.attach()
        names = [r.name for r in monitor.rules]
        assert names.count(BROKEN_TILE_RULE) == 1

    def test_unknown_reserve_tile_rejected(self):
        runtime = EspRuntime(build_soc1())
        server = InferenceServer(runtime, ServerConfig())
        server.register(TenantConfig(
            name="classifier", dataflow=chain("1cl-x", ["cl1"]),
            mode="pipe"))
        registry = instrument_server(server)
        monitor = HealthMonitor(registry, [])
        plane = ControlPlane(server, monitor,
                             ControlConfig(reserve_pool=("zz9",)))
        with pytest.raises(KeyError, match="zz9"):
            plane.attach()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ControlConfig(max_actions_per_window=0)
        with pytest.raises(ValueError):
            ControlConfig(stall_escalation_evals=0)
        with pytest.raises(ValueError):
            ControlConfig(widen_factor=1.0)
        with pytest.raises(ValueError):
            ControlConfig(window_cycles=0)


class TestActionGate:
    def test_cooldown_suppresses_then_releases(self):
        _, server, _, controller = make_stack(
            cooldown_cycles=10_000)
        env = server.env
        first = controller._act(ACTION_WIDEN_BATCH, "classifier",
                                "storm", lambda: "ok")
        assert first.outcome == OUTCOME_APPLIED
        held = controller._act(ACTION_WIDEN_BATCH, "classifier",
                               "storm", lambda: "ok")
        assert held.outcome == OUTCOME_COOLDOWN
        # A different target is its own cooldown key.
        other = controller._act(ACTION_WIDEN_BATCH, "other",
                                "storm", lambda: "ok")
        assert other.outcome == OUTCOME_APPLIED
        advance(env, 10_000)
        again = controller._act(ACTION_WIDEN_BATCH, "classifier",
                                "storm", lambda: "ok")
        assert again.outcome == OUTCOME_APPLIED

    def test_budget_bounds_an_alert_storm(self):
        _, server, _, controller = make_stack(
            cooldown_cycles=0, max_actions_per_window=2,
            window_cycles=10_000)
        env = server.env
        outcomes = [controller._act(ACTION_WIDEN_BATCH, f"t{i}",
                                    "storm", lambda: "ok").outcome
                    for i in range(5)]
        assert outcomes == [OUTCOME_APPLIED, OUTCOME_APPLIED,
                            OUTCOME_BUDGET, OUTCOME_BUDGET,
                            OUTCOME_BUDGET]
        # The window slides: after it passes, the budget refills.
        advance(env, 10_000)
        refilled = controller._act(ACTION_WIDEN_BATCH, "t9",
                                   "storm", lambda: "ok")
        assert refilled.outcome == OUTCOME_APPLIED

    def test_failure_is_contained_and_noop_is_free(self):
        _, _, _, controller = make_stack(cooldown_cycles=0)

        def boom():
            raise RuntimeError("remediation exploded")

        failed = controller._act(ACTION_RESHARD, "t", "r", boom)
        assert failed.outcome == OUTCOME_FAILED
        assert "remediation exploded" in failed.detail
        noop = controller._act(ACTION_RESHARD, "t", "r",
                               lambda: None)
        assert noop.outcome == OUTCOME_NOOP
        # Neither consumed budget nor armed the cooldown.
        applied = controller._act(ACTION_RESHARD, "t", "r",
                                  lambda: "ok")
        assert applied.outcome == OUTCOME_APPLIED

    def test_every_decision_is_metric_instrumented(self):
        _, server, monitor, controller = make_stack(
            cooldown_cycles=10_000)
        env = server.env
        advance(env, 500)
        controller._act(ACTION_WIDEN_BATCH, "t", "r", lambda: "ok")
        controller._act(ACTION_WIDEN_BATCH, "t", "r", lambda: "ok")
        registry = monitor.registry
        assert registry.control_actions.labels(
            ACTION_WIDEN_BATCH, OUTCOME_APPLIED).value == 1
        assert registry.control_actions.labels(
            ACTION_WIDEN_BATCH, OUTCOME_COOLDOWN).value == 1
        assert registry.control_last_action.labels(
            ACTION_WIDEN_BATCH).value == 500
        rows = "\n".join(render_control_actions(registry))
        assert ACTION_WIDEN_BATCH in rows
        assert OUTCOME_COOLDOWN in rows


class TestBrokenTileLoop:
    def test_failed_tile_activates_spare_and_reshards(self):
        _, server, monitor, controller = make_stack()
        env = server.env
        advance(env, 1_000)
        server.executor.registry.mark_failed("cl1")
        monitor.evaluate()

        assert BROKEN_TILE_RULE in {a.rule for a in monitor.history}
        kinds = [(a.kind, a.target) for a in
                 controller.applied_actions()]
        assert kinds == [(ACTION_ACTIVATE_SPARE, "cl2"),
                         (ACTION_RESHARD, "classifier")]
        assert server.tenant_tiles()["classifier"] == {"cl2"}
        # The consumed spare left the pool and the arbiter hold;
        # the remaining spare is still quarantined.
        assert controller.spares == {"cl3"}
        assert "cl2" not in server.arbiter.unavailable_tiles
        assert "cl3" in server.arbiter.unavailable_tiles
        # With the tenant moved, the incident resolves.
        monitor.evaluate()
        assert BROKEN_TILE_RULE not in monitor.active

    def test_forced_software_tile_counts_as_broken(self):
        _, server, monitor, controller = make_stack()
        advance(server.env, 1_000)
        server.executor.force_software("cl1")
        monitor.evaluate()
        assert {a.kind for a in controller.applied_actions()} == \
            {ACTION_ACTIVATE_SPARE, ACTION_RESHARD}
        assert server.tenant_tiles()["classifier"] == {"cl2"}

    def test_no_matching_spare_leaves_alert_firing(self):
        # The reserve pool has classifier tiles only; the denoiser's
        # de0 has no compatible spare, so the controller must not act.
        runtime = EspRuntime(build_soc1())
        server = InferenceServer(runtime, ServerConfig())
        server.register(TenantConfig(
            name="denoiser", dataflow=chain("1de-ctl", ["de0"]),
            mode="pipe"))
        registry = instrument_server(server)
        monitor = HealthMonitor(registry, [])
        controller = ControlPlane(server, monitor, ControlConfig(
            reserve_pool=("cl2",))).attach()
        advance(server.env, 1_000)
        server.executor.registry.mark_failed("de0")
        monitor.evaluate()
        assert controller.applied_actions() == []
        assert BROKEN_TILE_RULE in monitor.active


class TestWidenBatch:
    def _saturate(self, server, n=4):
        frames, _ = classifier_inputs(n, seed=1)
        for row in np.atleast_2d(frames):
            rejection = server.queue.submit(
                InferenceRequest(tenant="classifier",
                                 frames=row[np.newaxis, :]),
                now=server.env.now)
            assert rejection is None

    def test_saturation_widens_deepest_tenant(self):
        _, server, monitor, controller = make_stack(
            rules=[queue_saturation_rule(max_depth=8, fraction=0.5)])
        before = server.batch_bound("classifier")
        self._saturate(server)
        monitor.evaluate()
        applied = controller.applied_actions()
        assert [(a.kind, a.target) for a in applied] == \
            [(ACTION_WIDEN_BATCH, "classifier")]
        assert server.batch_bound("classifier") == 2 * before
        # Same alert next tick: the widen is cooldown-held, recorded
        # as a suppressed decision rather than growing unboundedly.
        monitor.evaluate()
        assert controller.actions[-1].outcome == OUTCOME_COOLDOWN

    def test_widen_at_cap_is_noop(self):
        _, server, monitor, controller = make_stack(
            rules=[queue_saturation_rule(max_depth=8, fraction=0.5)],
            widen_cap=1)
        self._saturate(server)
        monitor.evaluate()
        assert controller.actions[-1].outcome == OUTCOME_NOOP
        assert server.batch_bound("classifier") == \
            server.batch_bound("classifier")


class TestClosedLoopScenario:
    """The loop for real: hang under traffic -> force -> reshard."""

    def test_hang_is_forced_then_resharded_under_traffic(self):
        runtime = EspRuntime(build_soc1(), recovery=RecoveryPolicy(
            watchdog_cycles=200_000, max_retries=1,
            software_fallback=True))
        FaultInjector(FaultPlan([
            FaultSpec(kind="acc_hang", target="cl1", at_cycle=1,
                      count=None)])).attach(runtime.soc)
        server = InferenceServer(runtime,
                                 ServerConfig(max_queue_depth=16))
        server.register(TenantConfig(
            name="classifier", dataflow=chain("1cl-loop", ["cl1"]),
            mode="pipe", max_batch_frames=1))
        registry = instrument_server(server)
        monitor = HealthMonitor(registry, [
            accelerator_stall_rule(quiet_cycles=10_000)])
        controller = ControlPlane(server, monitor, ControlConfig(
            reserve_pool=("cl2",), cooldown_cycles=10_000,
            stall_escalation_evals=2)).attach()
        MetricsSampler(registry, interval=2_500,
                       callbacks=[lambda r: monitor.evaluate()]).start()

        frames, _ = classifier_inputs(6, seed=1)
        trace = [TracedRequest(5_000 * i, "classifier",
                               np.atleast_2d(frames)[i:i + 1])
                 for i in range(6)]
        report = server.run_trace(trace)
        monitor.evaluate()

        assert len(report.completions) == 6
        kinds = [a.kind for a in controller.applied_actions()]
        assert kinds[:3] == [ACTION_FORCE_DEGRADE,
                             ACTION_ACTIVATE_SPARE, ACTION_RESHARD]
        assert server.tenant_tiles()["classifier"] == {"cl2"}
        assert monitor.status() == "healthy"
