"""Trace identity across remediation: a request keeps its trace ID
while the control plane degrades, reshards and re-dispatches around
it — and the armed flight recorder's postmortem captures the
offending window with those IDs."""

import json

import numpy as np

from repro.control import (
    ACTION_ACTIVATE_SPARE,
    ACTION_FORCE_DEGRADE,
    ACTION_RESHARD,
    ControlConfig,
    ControlPlane,
)
from repro.eval import build_soc1
from repro.eval.apps import classifier_inputs
from repro.faults import FaultInjector, FaultPlan, FaultSpec, \
    RecoveryPolicy
from repro.metrics import (
    HealthMonitor,
    MetricsSampler,
    accelerator_stall_rule,
    instrument_server,
)
from repro.runtime import EspRuntime, chain
from repro.serve import (
    InferenceServer,
    ServerConfig,
    TenantConfig,
    TracedRequest,
)
from repro.trace import FlightRecorder, attach_tracer


def run_remediated_stack(tmp_path):
    """The closed-loop scenario of ``test_controller`` with the full
    observability stack on: tracer, armed recorder, live traffic over
    a tile that hangs and is resharded away."""
    runtime = EspRuntime(build_soc1(), recovery=RecoveryPolicy(
        watchdog_cycles=200_000, max_retries=1,
        software_fallback=True))
    tracer = attach_tracer(runtime.soc)
    FaultInjector(FaultPlan([
        FaultSpec(kind="acc_hang", target="cl1", at_cycle=1,
                  count=None)])).attach(runtime.soc)
    server = InferenceServer(runtime, ServerConfig(max_queue_depth=16))
    server.register(TenantConfig(
        name="classifier", dataflow=chain("1cl-ts", ["cl1"]),
        mode="pipe", max_batch_frames=1))
    registry = instrument_server(server)
    monitor = HealthMonitor(registry, [
        accelerator_stall_rule(quiet_cycles=10_000)])
    controller = ControlPlane(server, monitor, ControlConfig(
        reserve_pool=("cl2",), cooldown_cycles=10_000,
        stall_escalation_evals=2)).attach()
    recorder = FlightRecorder(
        tmp_path / "pm", tracer, controller=controller,
        window_cycles=100_000).arm(monitor)
    MetricsSampler(registry, interval=2_500,
                   callbacks=[lambda r: monitor.evaluate()]).start()

    frames, _ = classifier_inputs(6, seed=1)
    trace = [TracedRequest(5_000 * i, "classifier",
                           np.atleast_2d(frames)[i:i + 1])
             for i in range(6)]
    report = server.run_trace(trace)
    monitor.evaluate()
    return report, tracer, server, controller, recorder


class TestTraceSurvivesRemediation:
    def test_ids_thread_through_degrade_and_reshard(self, tmp_path):
        report, tracer, server, controller, _ = \
            run_remediated_stack(tmp_path)
        assert len(report.completions) == 6
        kinds = [a.kind for a in controller.applied_actions()]
        assert kinds[:3] == [ACTION_FORCE_DEGRADE,
                             ACTION_ACTIVATE_SPARE, ACTION_RESHARD]
        assert server.tenant_tiles()["classifier"] == {"cl2"}

        # Every request span kept its server-minted ID through the
        # remediation (no re-mint, no loss mid-reshard).
        requests = tracer.all_spans(cat="serve.request")
        assert [s.args["trace_id"] for s in requests] == \
            [f"t-{i}" for i in range(6)]
        assert {s.args["outcome"] for s in requests} == {"completed"}

        # Requests dispatched after the reshard ran on the spare tile
        # and still carry their IDs across the hardware move.
        on_spare = [s for s in tracer.all_spans(cat="acc.invocation")
                    if s.args.get("device") == "cl2"]
        assert on_spare, "no invocation landed on the spare"
        spare_ids = {s.args["trace_id"] for s in on_spare}
        assert spare_ids and all(i.startswith("t-") for i in spare_ids)
        # Those same IDs have serve-layer request spans: the waterfall
        # is reconstructable end to end across the remediation.
        request_ids = {s.args["trace_id"] for s in requests}
        assert spare_ids <= request_ids

    def test_postmortem_captures_offending_window(self, tmp_path):
        _, _, _, controller, recorder = run_remediated_stack(tmp_path)
        assert recorder.dumps, "stall alert produced no postmortem"
        artifact = json.loads(recorder.dumps[0].read_text())
        assert artifact["schema"] == "repro.postmortem/v1"
        assert artifact["alert"]["rule"] == "accelerator-stall"
        assert artifact["alert"]["state"] == "firing"
        # The window holds the stalled request's spans, attributable
        # by its trace ID.
        assert "t-0" in artifact["trace_ids"]
        span_ids = {s["args"]["trace_id"]
                    for spans in artifact["spans"].values()
                    for s in spans if "trace_id" in s.get("args", {})}
        assert "t-0" in span_ids
        # The in-flight (hung) work is captured open, not lost.
        assert any(s["open"] for spans in artifact["spans"].values()
                   for s in spans)
