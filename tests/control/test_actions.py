"""ControlAction: the validated record of one remediation decision."""

import pytest

from repro.control import (
    ACTION_KINDS,
    ACTION_RESHARD,
    ControlAction,
    OUTCOME_APPLIED,
    OUTCOME_COOLDOWN,
    OUTCOMES,
)


class TestControlAction:
    def test_valid_action_and_describe(self):
        action = ControlAction(cycle=1234, kind=ACTION_RESHARD,
                               target="classifier",
                               rule="tenant-tile-broken",
                               outcome=OUTCOME_APPLIED,
                               detail="classifier: cl1 -> cl2")
        assert action.applied
        text = action.describe()
        assert "1234" in text and "reshard" in text
        assert "classifier: cl1 -> cl2" in text

    def test_suppressed_action_is_not_applied(self):
        action = ControlAction(cycle=0, kind=ACTION_RESHARD,
                               target="t", rule="r",
                               outcome=OUTCOME_COOLDOWN)
        assert not action.applied

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ControlAction(cycle=0, kind="reboot-the-datacenter",
                          target="t", rule="r",
                          outcome=OUTCOME_APPLIED)

    def test_unknown_outcome_rejected(self):
        with pytest.raises(ValueError, match="outcome"):
            ControlAction(cycle=0, kind=ACTION_RESHARD, target="t",
                          rule="r", outcome="shrug")

    def test_registries_are_consistent(self):
        assert len(set(ACTION_KINDS)) == len(ACTION_KINDS) == 4
        assert len(set(OUTCOMES)) == len(OUTCOMES) == 5
