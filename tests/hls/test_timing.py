"""Tests for the static timing model."""

import pytest

from repro.hls import (
    TimingConstants,
    adder_path_ns,
    control_path_ns,
    dense_layer_fmax_mhz,
    mac_stage_path_ns,
    memory_stage_path_ns,
    timing_report_for_model,
)
from repro.hls4ml_flow import HlsConfig, compile_model
from repro.nn import Dense, ReLU, Sequential


def small_hls(precision="ap_fixed<16,6>"):
    model = Sequential([Dense(16), ReLU(), Dense(4)], name="t").build(8)
    return compile_model(model, HlsConfig(precision=precision,
                                          reuse_factor=4))


class TestPaths:
    def test_adder_scales_with_width(self):
        assert adder_path_ns(64) > adder_path_ns(16)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            adder_path_ns(0)
        with pytest.raises(ValueError):
            control_path_ns(0)

    def test_mac_dominates_narrow_memories(self):
        # For wide accumulators the MAC stage is the critical path.
        assert mac_stage_path_ns(64) > memory_stage_path_ns()

    def test_fmax_decreases_with_accumulator_width(self):
        assert dense_layer_fmax_mhz(24) > dense_layer_fmax_mhz(64)

    def test_custom_constants(self):
        slow = TimingConstants(name="slow", lut_delay_ns=1.0,
                               net_delay_ns=1.0)
        assert adder_path_ns(16, slow) > adder_path_ns(16)


class TestReport:
    def test_paper_clock_met_with_huge_slack(self):
        """78 MHz on an Ultrascale+ is a very relaxed target — the
        paper's SoCs close timing trivially, as the report shows."""
        report = timing_report_for_model(small_hls(),
                                         target_clock_mhz=78.0)
        assert report.meets_timing()
        assert report.slack_ns > 5.0
        assert report.fmax_mhz > 200.0

    def test_violation_detected_at_absurd_clock(self):
        report = timing_report_for_model(small_hls(),
                                         target_clock_mhz=1000.0)
        assert not report.meets_timing()
        assert report.slack_ns < 0

    def test_wider_precision_lowers_fmax(self):
        narrow = timing_report_for_model(small_hls("ap_fixed<12,4>"))
        wide = timing_report_for_model(small_hls("ap_fixed<32,12>"))
        assert wide.fmax_mhz < narrow.fmax_mhz

    def test_critical_layer_is_widest_accumulator(self):
        report = timing_report_for_model(small_hls())
        widths = [l.accumulator_width for l in report.layers]
        assert report.critical_layer.accumulator_width == max(widths)

    def test_report_text(self):
        text = timing_report_for_model(small_hls()).to_text()
        assert "MET" in text
        assert "fmax" in text

    def test_one_row_per_layer(self):
        report = timing_report_for_model(small_hls())
        assert len(report.layers) == 2
