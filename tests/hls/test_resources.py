"""Tests for the FPGA resource models."""

import pytest

from repro.hls import (
    BRAM_BITS,
    FpgaDevice,
    ResourceEstimate,
    XCVU9P,
    XCZU9EG,
    control_overhead,
    memory_brams,
    multiplier_resources,
)


class TestResourceEstimate:
    def test_addition(self):
        a = ResourceEstimate(luts=10, ffs=20, brams=1, dsps=2)
        b = ResourceEstimate(luts=5, ffs=5, brams=1, dsps=1)
        total = a + b
        assert total == ResourceEstimate(luts=15, ffs=25, brams=2, dsps=3)

    def test_scaled(self):
        a = ResourceEstimate(luts=100, ffs=100, brams=10, dsps=10)
        half = a.scaled(0.5)
        assert half.luts == 50 and half.brams == 5

    def test_as_dict_keys(self):
        assert set(ResourceEstimate().as_dict()) == {"luts", "ffs",
                                                     "brams", "dsps"}


class TestDevice:
    def test_utilization_fractions(self):
        usage = ResourceEstimate(luts=XCVU9P.luts // 2, ffs=0, brams=0,
                                 dsps=0)
        assert XCVU9P.utilization(usage)["luts"] == pytest.approx(0.5)

    def test_fits(self):
        assert XCVU9P.fits(ResourceEstimate(luts=100))
        assert not XCZU9EG.fits(ResourceEstimate(luts=10**7))

    def test_vu9p_is_larger_than_zu9eg(self):
        assert XCVU9P.luts > XCZU9EG.luts
        assert XCVU9P.brams > XCZU9EG.brams


class TestMemoryBrams:
    def test_small_memory_one_block(self):
        assert memory_brams(16, 16) == 1

    def test_exact_block(self):
        words = BRAM_BITS // 16
        assert memory_brams(words, 16) == 1
        assert memory_brams(words + 1, 16) == 2

    def test_partitioning_inflates(self):
        words = BRAM_BITS // 16   # exactly one block unpartitioned
        assert memory_brams(words, 16, partitions=8) == 8

    def test_zero_words(self):
        assert memory_brams(0, 16) == 0

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            memory_brams(16, 16, partitions=0)

    def test_classifier_layer1_footprint(self):
        # 1024x256 16-bit weights = 4 Mb ~ 114 blocks minimum.
        assert memory_brams(1024 * 256, 16) == 114


class TestMultipliers:
    def test_narrow_width_one_dsp_each(self):
        assert multiplier_resources(10, width=16).dsps == 10

    def test_wide_width_two_dsps_each(self):
        assert multiplier_resources(10, width=24).dsps == 20

    def test_zero_multipliers(self):
        r = multiplier_resources(0, width=16)
        assert r.dsps == 0 and r.luts == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            multiplier_resources(-1, 16)


def test_control_overhead_scales_with_loops():
    assert control_overhead(2).luts == 2 * control_overhead(1).luts
