"""Tests for the HLS scheduling model (latency/II vs reuse factor)."""

import pytest

from repro.hls import (
    LoopSchedule,
    ResourceEstimate,
    dataflow_schedule,
    dense_layer_schedule,
    nearest_reuse_factor,
    pipelined_loop_schedule,
    sequential_schedule,
    valid_reuse_factor,
)


class TestReuseFactor:
    def test_valid_divisors(self):
        assert valid_reuse_factor(1024, 1)
        assert valid_reuse_factor(1024, 256)
        assert valid_reuse_factor(1024, 1024)
        assert not valid_reuse_factor(1024, 3)
        assert not valid_reuse_factor(1024, 2048)

    def test_nearest_snaps_to_divisor(self):
        assert nearest_reuse_factor(320, 512) == 320
        assert nearest_reuse_factor(1024, 100) == 128  # ties prefer lower
        assert nearest_reuse_factor(1024, 96) == 64

    def test_nearest_identity_when_valid(self):
        assert nearest_reuse_factor(1024, 64) == 64

    def test_nearest_invalid_request(self):
        with pytest.raises(ValueError):
            nearest_reuse_factor(1024, 0)


class TestDenseSchedule:
    def test_reuse_tradeoff(self):
        fast = dense_layer_schedule(1024, 256, reuse_factor=64)
        slow = dense_layer_schedule(1024, 256, reuse_factor=1024)
        # Larger reuse: longer latency/II, fewer multipliers (DSPs).
        assert slow.interval > fast.interval
        assert slow.latency > fast.latency
        assert slow.resources.dsps < fast.resources.dsps

    def test_multiplier_count_is_weights_over_reuse(self):
        schedule = dense_layer_schedule(1024, 256, reuse_factor=512)
        assert schedule.resources.dsps == 1024 * 256 // 512

    def test_interval_equals_reuse(self):
        schedule = dense_layer_schedule(128, 64, reuse_factor=32)
        assert schedule.interval == 32

    def test_latency_includes_tree_and_activation(self):
        schedule = dense_layer_schedule(1024, 256, reuse_factor=32)
        assert schedule.latency > 32   # reuse + log2(1024) tree + act

    def test_invalid_reuse_rejected_with_hint(self):
        with pytest.raises(ValueError, match="nearest valid"):
            dense_layer_schedule(1024, 256, reuse_factor=1000)

    def test_dsps_double_for_wide_weights(self):
        narrow = dense_layer_schedule(64, 64, 64, weight_width=16)
        wide = dense_layer_schedule(64, 64, 64, weight_width=24)
        assert wide.resources.dsps == 2 * narrow.resources.dsps


class TestLoopSchedules:
    def test_pipelined_loop_formula(self):
        schedule = pipelined_loop_schedule(1024, interval=1, depth=10)
        assert schedule.latency == 10 + 1023

    def test_pipelined_loop_ii_scales(self):
        ii2 = pipelined_loop_schedule(100, interval=2, depth=4)
        assert ii2.latency == 4 + 2 * 99

    def test_trip_count_validation(self):
        with pytest.raises(ValueError):
            pipelined_loop_schedule(0)

    def test_sequential_adds_latency(self):
        a = pipelined_loop_schedule(100)
        b = pipelined_loop_schedule(200)
        seq = sequential_schedule(a, b)
        assert seq.latency == a.latency + b.latency
        assert seq.interval == seq.latency

    def test_dataflow_overlaps(self):
        a = dense_layer_schedule(64, 64, 64)
        b = dense_layer_schedule(64, 64, 16)
        df = dataflow_schedule(a, b)
        assert df.interval == max(a.interval, b.interval)
        assert df.latency == a.latency + b.latency

    def test_resources_accumulate(self):
        a = pipelined_loop_schedule(
            10, body_resources=ResourceEstimate(luts=100))
        b = pipelined_loop_schedule(
            10, body_resources=ResourceEstimate(luts=200))
        assert sequential_schedule(a, b).resources.luts == \
            a.resources.luts + b.resources.luts

    def test_empty_stage_list_rejected(self):
        with pytest.raises(ValueError):
            sequential_schedule()
        with pytest.raises(ValueError):
            dataflow_schedule()

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            LoopSchedule(latency=0, interval=1,
                         resources=ResourceEstimate())
        with pytest.raises(ValueError):
            LoopSchedule(latency=1, interval=0,
                         resources=ResourceEstimate())
