"""Tests for HLS directive modelling and Tcl emission."""

import pytest

from repro.hls import (
    Directive,
    DirectiveFile,
    ap_fifo_interface,
    array_partition,
    pipeline,
    unroll,
)


class TestDirective:
    def test_pipeline_tcl(self):
        assert pipeline("top/loop", ii=4).to_tcl() == \
            'set_directive_pipeline -II 4 "top/loop"'

    def test_unroll_with_and_without_factor(self):
        assert "-factor 8" in unroll("top/loop", factor=8).to_tcl()
        assert "-factor" not in unroll("top/loop").to_tcl()

    def test_array_partition(self):
        tcl = array_partition("top", "weights", factor=16).to_tcl()
        assert "-type cyclic" in tcl
        assert "-variable weights" in tcl

    def test_ap_fifo_interface(self):
        tcl = ap_fifo_interface("compute", "input").to_tcl()
        assert "-mode ap_fifo" in tcl

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Directive("FUSE", "top")


class TestDirectiveFile:
    def test_renders_header_and_all_directives(self):
        f = DirectiveFile(top="compute")
        f.add(pipeline("compute/l1"))
        f.add(unroll("compute/l2", factor=2))
        text = f.to_tcl()
        assert "set_top compute" in text
        assert text.count("set_directive_") == 2
        assert text.endswith("\n")
