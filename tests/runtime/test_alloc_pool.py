"""Tests for per-buffer free, free-list reuse and scoped buffer pools."""

import numpy as np
import pytest

from repro.runtime import BufferPool, ContigAllocator
from tests.conftest import make_soc, make_spec


def make_allocator():
    soc = make_soc([("a0", make_spec(name="a"))])
    return ContigAllocator(soc.memory_map)


class TestFree:
    def test_free_is_idempotent(self):
        alloc = make_allocator()
        buffer = alloc.alloc(100)
        assert alloc.free(buffer) is True
        assert alloc.free(buffer) is False     # double-free: no-op
        assert alloc.free_list_words == 0      # cursor retracted fully

    def test_freed_buffer_rejects_access(self):
        alloc = make_allocator()
        buffer = alloc.alloc(8)
        alloc.free(buffer)
        with pytest.raises(RuntimeError, match="already freed"):
            buffer.read()
        with pytest.raises(RuntimeError, match="already freed"):
            buffer.write(np.zeros(8))

    def test_freed_space_reused_first_fit(self):
        alloc = make_allocator()
        first = alloc.alloc(128)
        keeper = alloc.alloc(64)
        alloc.free(first)
        assert alloc.free_list_words == 128
        again = alloc.alloc(128)
        assert again.offset == first.offset    # hole filled, not bumped
        assert keeper.offset != again.offset

    def test_adjacent_frees_coalesce(self):
        alloc = make_allocator()
        a = alloc.alloc(64)
        b = alloc.alloc(64)
        keeper = alloc.alloc(64)
        alloc.free(a)
        alloc.free(b)
        # One coalesced 128-word hole, reusable by a single allocation
        # bigger than either original block.
        big = alloc.alloc(128)
        assert big.offset == a.offset
        assert keeper.freed is False

    def test_cursor_retracts_when_tail_freed(self):
        alloc = make_allocator()
        probe = alloc.alloc(16)
        base_offset = probe.offset
        alloc.free(probe)
        tail = alloc.alloc(1024)
        alloc.free(tail)
        # Fully drained: the next allocation lands where the first did,
        # so one-shot runs after a serving session see pristine addresses.
        assert alloc.free_list_words == 0
        assert alloc.alloc(16).offset == base_offset

    def test_no_frees_keeps_bump_addresses(self):
        """The seed's bump behaviour is untouched when nobody frees —
        address assignment (hence cycle counts) of one-shot runs."""
        reference = [make_allocator().alloc(n).offset
                     for n in (100, 200, 300)]
        alloc = make_allocator()
        offsets = [alloc.alloc(n).offset for n in (100, 200, 300)]
        assert offsets[0] == reference[0]
        assert offsets == sorted(offsets)
        assert all(off % ContigAllocator.ALIGN == 0 for off in offsets)


class TestBufferPool:
    def test_pool_releases_on_exit(self):
        alloc = make_allocator()
        with alloc.pool() as pool:
            a = pool.alloc(64)
            b = pool.alloc(64)
            assert not a.freed and not b.freed
        assert a.freed and b.freed
        assert alloc.free_list_words == 0      # full retraction

    def test_pool_releases_on_exception(self):
        alloc = make_allocator()
        with pytest.raises(RuntimeError, match="boom"):
            with alloc.pool() as pool:
                buffer = pool.alloc(64)
                raise RuntimeError("boom")
        assert buffer.freed

    def test_early_free_inside_pool_is_safe(self):
        alloc = make_allocator()
        with alloc.pool() as pool:
            buffer = pool.alloc(64)
            alloc.free(buffer)
        assert buffer.freed        # no double-free blowup on exit

    def test_adopt_tracks_external_allocations(self):
        alloc = make_allocator()
        outside = alloc.alloc(32)
        with alloc.pool() as pool:
            assert pool.adopt(outside) is outside
        assert outside.freed

    def test_release_reports_live_count(self):
        alloc = make_allocator()
        pool = alloc.pool()
        pool.alloc(16)
        second = pool.alloc(16)
        alloc.free(second)
        assert pool.release() == 1     # only the still-live one
        assert pool.release() == 0     # emptied

    def test_pool_type_exported(self):
        alloc = make_allocator()
        assert isinstance(alloc.pool(), BufferPool)
