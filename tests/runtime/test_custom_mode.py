"""Tests for per-edge communication (the ``custom`` execution mode)."""

import numpy as np
import pytest

from repro.runtime import Dataflow, DataflowEdge, chain, replicated_stage
from tests.conftest import make_runtime, make_spec


def three_stage_specs():
    return [(name, make_spec(name=name, input_words=8, output_words=8,
                             latency=40 + 13 * i))
            for i, name in enumerate(["a0", "b0", "c0"])]


class TestEdgeComm:
    def test_comm_validation(self):
        with pytest.raises(ValueError):
            DataflowEdge("a", "b", comm="warp")

    def test_chain_comm_parameter(self):
        df = chain("c", ["a", "b"], comm="p2p")
        assert df.edges[0].comm == "p2p"

    def test_replicated_comm_parameter(self):
        df = replicated_stage("r", ["p0"], ["c0"], comm="p2p")
        assert all(e.comm == "p2p" for e in df.edges)

    def test_custom_validation_allows_dma_fanout(self):
        df = Dataflow(name="f", devices=["p0", "c0", "c1"],
                      edges=[DataflowEdge("p0", "c0", comm="dma"),
                             DataflowEdge("p0", "c1", comm="dma")])
        df.validate_for_custom()   # DMA fan-out is fine

    def test_custom_validation_rejects_p2p_fanout(self):
        df = Dataflow(name="f", devices=["p0", "c0", "c1"],
                      edges=[DataflowEdge("p0", "c0", comm="p2p"),
                             DataflowEdge("p0", "c1", comm="p2p")])
        with pytest.raises(ValueError, match="p2p"):
            df.validate_for_custom()


class TestCustomExecution:
    def _mixed_chain(self):
        # a -> b over p2p, b -> c over DMA.
        return Dataflow(
            name="mixed", devices=["a0", "b0", "c0"],
            edges=[DataflowEdge("a0", "b0", comm="p2p"),
                   DataflowEdge("b0", "c0", comm="dma")])

    def test_mixed_chain_outputs_correct(self, rng):
        rt = make_runtime(three_stage_specs())
        frames = rng.uniform(0, 1, (6, 8))
        result = rt.esp_run(self._mixed_chain(), frames, mode="custom")
        np.testing.assert_allclose(result.outputs, frames + 3.0)

    def test_custom_equals_other_modes(self, rng):
        frames = rng.uniform(0, 1, (6, 8))
        outputs = {}
        for mode in ("pipe", "custom", "p2p"):
            rt = make_runtime(three_stage_specs())
            df = self._mixed_chain() if mode == "custom" \
                else chain("mixed", ["a0", "b0", "c0"])
            outputs[mode] = rt.esp_run(df, frames, mode=mode).outputs
        np.testing.assert_array_equal(outputs["custom"], outputs["pipe"])
        np.testing.assert_array_equal(outputs["custom"], outputs["p2p"])

    def test_dram_traffic_between_pipe_and_p2p(self, rng):
        """Only the DMA boundary touches DRAM: in + (b->c) + out."""
        frames = rng.uniform(0, 1, (6, 8))
        dram = {}
        for mode, df in (("pipe", chain("m", ["a0", "b0", "c0"])),
                         ("custom", self._mixed_chain()),
                         ("p2p", chain("m", ["a0", "b0", "c0"]))):
            rt = make_runtime(three_stage_specs())
            dram[mode] = rt.esp_run(df, frames, mode=mode).dram_accesses
        assert dram["p2p"] < dram["custom"] < dram["pipe"]
        # pipe: in + 2 inter round trips + out = 6 passes of 48 words;
        # custom: in + 1 inter round trip + out = 4; p2p: 2.
        assert dram["pipe"] == 6 * 48
        assert dram["custom"] == 4 * 48
        assert dram["p2p"] == 2 * 48

    def test_all_p2p_edges_skip_intermediate_buffers(self, rng):
        rt = make_runtime(three_stage_specs())
        df = chain("m", ["a0", "b0", "c0"], comm="p2p")
        plan = rt.executor.plan(df, n_frames=4, mode="custom")
        assert plan.inter_buffers == [None, None]

    def test_gather_with_mixed_edges(self, rng):
        """4 producers -> 1 consumer where half the edges are p2p."""
        specs = [(f"p{i}", make_spec(name="p", input_words=8,
                                     output_words=8, latency=60))
                 for i in range(4)]
        specs.append(("c0", make_spec(name="c", input_words=8,
                                      output_words=8, latency=20)))
        edges = [DataflowEdge(f"p{i}", "c0",
                              comm="p2p" if i % 2 == 0 else "dma")
                 for i in range(4)]
        df = Dataflow(name="g", devices=[s for s, _ in specs],
                      edges=edges)
        rt = make_runtime(specs, cols=4, rows=3)
        frames = rng.uniform(0, 1, (8, 8))
        result = rt.esp_run(df, frames, mode="custom")
        np.testing.assert_allclose(result.outputs, frames + 2.0)
