"""Tests for the driver registry and the contiguous allocator."""

import numpy as np
import pytest

from repro.runtime import ContigAllocator, DeviceRegistry
from tests.conftest import make_soc, make_spec


def probed_soc():
    soc = make_soc([("b_acc", make_spec(name="b")),
                    ("a_acc", make_spec(name="a"))])
    registry = DeviceRegistry()
    registry.probe(soc)
    return soc, registry


class TestDriver:
    def test_probe_discovers_all_devices(self):
        _, registry = probed_soc()
        assert len(registry) == 2
        assert "a_acc" in registry and "b_acc" in registry

    def test_probe_order_deterministic(self):
        _, registry = probed_soc()
        assert registry.names() == sorted(registry.names())

    def test_name_to_coordinates(self):
        soc, registry = probed_soc()
        for name, tile in soc.accelerators.items():
            assert registry.coords_for(name) == tile.coord

    def test_location_reg_consistency_checked(self):
        soc, registry = probed_soc()
        device = registry.by_name("a_acc")
        assert device.location == device.coord

    def test_unknown_device(self):
        _, registry = probed_soc()
        with pytest.raises(KeyError):
            registry.by_name("zz")

    def test_reprobe_is_idempotent(self):
        soc, registry = probed_soc()
        registry.probe(soc)   # driver reload / rescan: no error
        assert len(registry) == 2
        assert registry.names() == sorted(registry.names())

    def test_reprobe_clears_failed_mark(self):
        soc, registry = probed_soc()
        registry.mark_failed("a_acc")
        assert registry.is_failed("a_acc")
        registry.probe(soc)
        assert not registry.is_failed("a_acc")

    def test_conflicting_probe_rejected(self):
        soc, registry = probed_soc()
        other = make_soc([("b_acc", make_spec(name="b")),
                          ("a_acc", make_spec(name="a"))])
        with pytest.raises(ValueError, match="different"):
            registry.probe(other)

    def test_mark_failed_unknown_device(self):
        _, registry = probed_soc()
        with pytest.raises(KeyError):
            registry.mark_failed("zz")

    def test_remove_device(self):
        soc, registry = probed_soc()
        registry.remove("a_acc")
        assert "a_acc" not in registry
        assert registry.names() == ["b_acc"]
        with pytest.raises(KeyError):
            registry.remove("a_acc")
        registry.probe(soc)   # rescan rediscovers the removed device
        assert "a_acc" in registry


class TestAllocator:
    def _allocator(self):
        soc = make_soc([("acc0", make_spec())], mem_words=4096)
        return ContigAllocator(soc.memory_map), soc

    def test_alloc_alignment(self):
        alloc, _ = self._allocator()
        a = alloc.alloc(10)
        b = alloc.alloc(10)
        assert a.offset % ContigAllocator.ALIGN == 0
        assert b.offset % ContigAllocator.ALIGN == 0
        assert b.offset >= a.offset + 10

    def test_buffer_read_write(self, rng):
        alloc, _ = self._allocator()
        buf = alloc.alloc(128)
        data = rng.uniform(-1, 1, 128)
        buf.write(data)
        np.testing.assert_array_equal(buf.read(), data)

    def test_partial_read_write(self, rng):
        alloc, _ = self._allocator()
        buf = alloc.alloc(64)
        buf.write(np.ones(16), start=32)
        np.testing.assert_array_equal(buf.read(32, 16), np.ones(16))

    def test_bounds_checked(self):
        alloc, _ = self._allocator()
        buf = alloc.alloc(16)
        with pytest.raises(ValueError):
            buf.write(np.zeros(17))
        with pytest.raises(ValueError):
            buf.read(10, 10)

    def test_out_of_memory(self):
        alloc, _ = self._allocator()
        with pytest.raises(MemoryError):
            alloc.alloc(1 << 20)

    def test_cleanup_frees_everything(self):
        alloc, _ = self._allocator()
        buf = alloc.alloc(16)
        alloc.cleanup()
        assert alloc.live_buffers == 0
        with pytest.raises(RuntimeError):
            buf.read()

    def test_space_reusable_after_cleanup(self):
        alloc, _ = self._allocator()
        alloc.alloc(2048)
        alloc.cleanup()
        alloc.alloc(2048)   # would not fit without the reset

    def test_word_address(self):
        alloc, _ = self._allocator()
        buf = alloc.alloc(16)
        assert buf.word_address(3) == buf.offset + 3
        with pytest.raises(ValueError):
            buf.word_address(16)

    def test_invalid_size(self):
        alloc, _ = self._allocator()
        with pytest.raises(ValueError):
            alloc.alloc(0)
