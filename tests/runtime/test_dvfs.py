"""Tests for per-tile DVFS (clock dividers)."""

import numpy as np
import pytest

from repro.platforms import soc_power_watts, soc_power_watts_dvfs
from repro.runtime import chain
from tests.conftest import make_runtime, make_spec


def slack_pipeline():
    """Producer 8x slower than consumer: the consumer has slack."""
    return [("slow0", make_spec(name="slow", input_words=8,
                                output_words=8, latency=1600)),
            ("fast0", make_spec(name="fast", input_words=8,
                                output_words=8, latency=200))]


class TestDvfsExecution:
    def test_outputs_unchanged(self, rng):
        frames = rng.uniform(0, 1, (6, 8))
        outs = {}
        for dvfs in (None, {"fast0": 4}):
            rt = make_runtime(slack_pipeline())
            outs[bool(dvfs)] = rt.esp_run(
                chain("sf", ["slow0", "fast0"]), frames, mode="p2p",
                dvfs=dvfs).outputs
        np.testing.assert_array_equal(outs[False], outs[True])

    def test_divider_stretches_compute(self, rng):
        frames = rng.uniform(0, 1, (4, 8))
        cycles = {}
        for divider in (1, 4):
            rt = make_runtime([("a0", make_spec(latency=1000))])
            from repro.runtime import Dataflow
            cycles[divider] = rt.esp_run(
                Dataflow(name="a", devices=["a0"]),
                rng.uniform(0, 1, (4, 16)), mode="base",
                dvfs={"a0": divider}).cycles
        # 4 frames x 1000 extra latency x (4-1) divider steps.
        assert cycles[4] - cycles[1] == pytest.approx(4 * 3000, rel=0.05)

    def test_slack_absorbs_divider(self, rng):
        """Slowing the underutilized stage barely moves throughput."""
        frames = rng.uniform(0, 1, (8, 8))
        fps = {}
        for dvfs in (None, {"fast0": 4}):
            rt = make_runtime(slack_pipeline())
            fps[bool(dvfs)] = rt.esp_run(
                chain("sf", ["slow0", "fast0"]), frames, mode="p2p",
                dvfs=dvfs).frames_per_second
        assert fps[True] > 0.95 * fps[False]

    def test_unknown_device_rejected(self, rng):
        rt = make_runtime(slack_pipeline())
        with pytest.raises(ValueError, match="not in"):
            rt.esp_run(chain("sf", ["slow0", "fast0"]),
                       rng.uniform(0, 1, (4, 8)), mode="p2p",
                       dvfs={"ghost": 2})

    def test_invalid_divider_rejected(self, rng):
        rt = make_runtime(slack_pipeline())
        with pytest.raises(ValueError, match=">= 1"):
            rt.esp_run(chain("sf", ["slow0", "fast0"]),
                       rng.uniform(0, 1, (4, 8)), mode="p2p",
                       dvfs={"fast0": 0})


class TestDvfsPower:
    def test_divider_reduces_power(self):
        rt = make_runtime(slack_pipeline())
        full = soc_power_watts_dvfs(rt.soc, {})
        slowed = soc_power_watts_dvfs(rt.soc, {"fast0": 4})
        assert slowed < full

    def test_no_dividers_matches_plain_model(self):
        rt = make_runtime(slack_pipeline())
        assert soc_power_watts_dvfs(rt.soc, {}) == pytest.approx(
            soc_power_watts(rt.soc), rel=1e-9)

    def test_energy_efficiency_improves_with_slack(self, rng):
        """The classic DVFS result: slow the idle stage, same fps,
        less power, better frames/J. The fast stage here is a big
        datapath (a power hog worth slowing); enough frames amortize
        the pipeline drain."""
        from repro.accelerators import AcceleratorSpec
        from repro.hls import ResourceEstimate

        def hog_pipeline():
            hog = AcceleratorSpec(
                name="hog", input_words=8, output_words=8,
                compute=lambda f: np.asarray(f) + 1.0,
                latency_cycles=200, interval_cycles=200,
                resources=ResourceEstimate(luts=200_000, ffs=150_000,
                                           brams=300, dsps=2_000))
            return [("slow0", make_spec(name="slow", input_words=8,
                                        output_words=8, latency=1600)),
                    ("fast0", hog)]

        frames = rng.uniform(0, 1, (32, 8))
        fpj = {}
        for key, dvfs in (("full", None), ("dvfs", {"fast0": 4})):
            rt = make_runtime(hog_pipeline())
            result = rt.esp_run(chain("sf", ["slow0", "fast0"]), frames,
                                mode="p2p", dvfs=dvfs)
            watts = soc_power_watts_dvfs(rt.soc, dvfs or {})
            fpj[key] = result.frames_per_second / watts
        assert fpj["dvfs"] > 1.1 * fpj["full"]

    def test_bad_divider_in_power_model(self):
        rt = make_runtime(slack_pipeline())
        with pytest.raises(ValueError):
            soc_power_watts_dvfs(rt.soc, {"fast0": 0})
