"""Tests for the dataflow executor: planning and the three modes."""

import numpy as np
import pytest

from repro.runtime import EspRuntime, chain, replicated_stage
from tests.conftest import make_runtime, make_spec


def two_stage_runtime(n_extra=0, **kwargs):
    """SoC with a producer and consumer (plus optional extra tiles)."""
    specs = [("prod0", make_spec(name="prod", input_words=8,
                                 output_words=8, latency=100)),
             ("cons0", make_spec(name="cons", input_words=8,
                                 output_words=8, latency=60))]
    for index in range(n_extra):
        specs.append((f"x{index}", make_spec(name=f"x{index}",
                                             input_words=8,
                                             output_words=8)))
    return make_runtime(specs, **kwargs)


class TestPlanning:
    def test_plan_allocates_buffers(self):
        rt = two_stage_runtime()
        df = chain("df", ["prod0", "cons0"])
        plan = rt.executor.plan(df, n_frames=4, mode="pipe")
        assert plan.input_buffer.words == 4 * 8
        assert plan.output_buffer.words == 4 * 8
        assert plan.inter_buffers[0].words == 4 * 8

    def test_p2p_plan_skips_intermediate_buffers(self):
        rt = two_stage_runtime()
        df = chain("df", ["prod0", "cons0"])
        plan = rt.executor.plan(df, n_frames=4, mode="p2p")
        assert plan.inter_buffers == [None]

    def test_unknown_mode(self):
        rt = two_stage_runtime()
        df = chain("df", ["prod0", "cons0"])
        with pytest.raises(ValueError):
            rt.executor.plan(df, 4, mode="turbo")

    def test_frames_must_split_evenly(self):
        specs = [("a0", make_spec(input_words=8, output_words=8)),
                 ("a1", make_spec(input_words=8, output_words=8)),
                 ("c0", make_spec(input_words=8, output_words=8))]
        rt = make_runtime(specs)
        df = replicated_stage("df", ["a0", "a1"], ["c0"])
        with pytest.raises(ValueError, match="split evenly"):
            rt.executor.plan(df, n_frames=5, mode="pipe")

    def test_geometry_mismatch_between_levels(self):
        specs = [("a0", make_spec(input_words=8, output_words=8)),
                 ("c0", make_spec(input_words=16, output_words=4))]
        rt = make_runtime(specs)
        df = chain("df", ["a0", "c0"])
        with pytest.raises(ValueError, match="outputs"):
            rt.executor.plan(df, 4, mode="pipe")


class TestExecutionModes:
    @pytest.mark.parametrize("mode", ["base", "pipe", "p2p"])
    def test_outputs_correct(self, mode, rng):
        rt = two_stage_runtime()
        df = chain("df", ["prod0", "cons0"])
        frames = rng.uniform(0, 1, (4, 8))
        result = rt.esp_run(df, frames, mode=mode)
        np.testing.assert_allclose(result.outputs, frames + 2.0)
        assert result.frames == 4
        assert result.mode == mode

    def test_modes_produce_identical_outputs(self, rng):
        frames = np.random.default_rng(1).uniform(0, 1, (8, 8))
        outputs = {}
        for mode in ("base", "pipe", "p2p"):
            rt = two_stage_runtime()
            df = chain("df", ["prod0", "cons0"])
            outputs[mode] = rt.esp_run(df, frames, mode=mode).outputs
        np.testing.assert_array_equal(outputs["base"], outputs["pipe"])
        np.testing.assert_array_equal(outputs["base"], outputs["p2p"])

    def test_pipe_faster_than_base(self, rng):
        frames = rng.uniform(0, 1, (8, 8))
        cycles = {}
        for mode in ("base", "pipe"):
            rt = two_stage_runtime()
            df = chain("df", ["prod0", "cons0"])
            cycles[mode] = rt.esp_run(df, frames, mode=mode).cycles
        assert cycles["pipe"] < cycles["base"]

    def test_p2p_reduces_dram_traffic(self, rng):
        frames = rng.uniform(0, 1, (8, 8))
        dram = {}
        for mode in ("pipe", "p2p"):
            rt = two_stage_runtime()
            df = chain("df", ["prod0", "cons0"])
            dram[mode] = rt.esp_run(df, frames, mode=mode).dram_accesses
        # no-p2p: in + inter(write+read) + out = 4 passes; p2p: 2.
        assert dram["pipe"] == pytest.approx(2 * dram["p2p"], rel=0.01)

    def test_p2p_fewer_ioctls(self, rng):
        frames = rng.uniform(0, 1, (8, 8))
        ioctls = {}
        for mode in ("base", "pipe", "p2p"):
            rt = two_stage_runtime()
            df = chain("df", ["prod0", "cons0"])
            ioctls[mode] = rt.esp_run(df, frames, mode=mode).ioctl_calls
        assert ioctls["base"] == 16    # 2 devices x 8 frames
        assert ioctls["pipe"] == 16
        assert ioctls["p2p"] == 2      # one streaming start per device

    def test_replicated_producers_gather(self, rng):
        specs = [(f"p{i}", make_spec(name="p", input_words=8,
                                     output_words=8, latency=400))
                 for i in range(4)]
        specs.append(("c0", make_spec(name="c", input_words=8,
                                      output_words=8, latency=50)))
        frames = rng.uniform(0, 1, (8, 8))
        for mode in ("pipe", "p2p"):
            rt = make_runtime(specs, cols=4, rows=3)
            df = replicated_stage("df", [f"p{i}" for i in range(4)],
                                  ["c0"])
            result = rt.esp_run(df, frames, mode=mode)
            np.testing.assert_allclose(result.outputs, frames + 2.0)

    def test_replication_improves_throughput(self, rng):
        frames = rng.uniform(0, 1, (16, 8))

        def run(n_producers):
            specs = [(f"p{i}", make_spec(name="p", input_words=8,
                                         output_words=8, latency=500))
                     for i in range(n_producers)]
            specs.append(("c0", make_spec(name="c", input_words=8,
                                          output_words=8, latency=50)))
            rt = make_runtime(specs, cols=4, rows=3)
            df = replicated_stage("df", [f"p{i}" for i in range(n_producers)],
                                  ["c0"])
            return rt.esp_run(df, frames, mode="p2p").cycles

        assert run(4) < run(1) * 0.5

    def test_input_size_validated(self, rng):
        rt = two_stage_runtime()
        df = chain("df", ["prod0", "cons0"])
        with pytest.raises(ValueError, match="words"):
            rt.esp_run(df, rng.uniform(0, 1, (4, 7)), mode="base")

    def test_single_device_dataflow(self, rng):
        rt = two_stage_runtime()
        from repro.runtime import Dataflow
        df = Dataflow(name="solo", devices=["prod0"])
        frames = rng.uniform(0, 1, (4, 8))
        result = rt.esp_run(df, frames, mode="p2p")
        np.testing.assert_allclose(result.outputs, frames + 1.0)


class TestRunResult:
    def test_fps_and_energy(self, rng):
        rt = two_stage_runtime()
        df = chain("df", ["prod0", "cons0"])
        result = rt.esp_run(df, rng.uniform(0, 1, (4, 8)), mode="p2p")
        assert result.frames_per_second == pytest.approx(
            4 / result.seconds)
        assert result.frames_per_joule(2.0) == pytest.approx(
            result.frames_per_second / 2.0)
        with pytest.raises(ValueError):
            result.frames_per_joule(0.0)


class TestApiSurface:
    def test_esp_alloc_and_cleanup(self):
        rt = two_stage_runtime()
        buf = rt.esp_alloc(64, label="user")
        assert len(buf) == 64
        rt.esp_cleanup()
        with pytest.raises(RuntimeError):
            buf.read()

    def test_device_names_and_location(self):
        rt = two_stage_runtime()
        assert set(rt.device_names()) == {"prod0", "cons0"}
        assert rt.device_location("prod0") == \
            rt.soc.accelerator("prod0").coord
