"""Tests for the dataflow specification (graph structure + validation)."""

import pytest

from repro.runtime import Dataflow, DataflowEdge, chain, replicated_stage


class TestConstruction:
    def test_needs_devices(self):
        with pytest.raises(ValueError):
            Dataflow(name="empty", devices=[])

    def test_duplicate_devices_rejected(self):
        with pytest.raises(ValueError):
            Dataflow(name="dup", devices=["a", "a"])

    def test_edge_references_must_exist(self):
        with pytest.raises(ValueError):
            Dataflow(name="bad", devices=["a"],
                     edges=[DataflowEdge("a", "ghost")])

    def test_self_edge_rejected(self):
        with pytest.raises(ValueError):
            DataflowEdge("a", "a")


class TestLevels:
    def test_single_node(self):
        df = Dataflow(name="one", devices=["a"])
        assert df.levels() == [["a"]]

    def test_chain_levels(self):
        df = chain("c", ["a", "b", "c"])
        assert df.levels() == [["a"], ["b"], ["c"]]

    def test_parallel_roots(self):
        df = replicated_stage("r", ["p0", "p1"], ["c0", "c1"])
        assert df.levels() == [["p0", "p1"], ["c0", "c1"]]

    def test_gather(self):
        df = replicated_stage("g", ["p0", "p1", "p2", "p3"], ["c0"])
        assert df.levels() == [["p0", "p1", "p2", "p3"], ["c0"]]
        assert df.producers_of("c0") == ["p0", "p1", "p2", "p3"]

    def test_cycle_detected(self):
        df = Dataflow(name="cyc", devices=["a", "b"],
                      edges=[DataflowEdge("a", "b"), DataflowEdge("b", "a")])
        with pytest.raises(ValueError, match="cycle"):
            df.levels()

    def test_level_skip_rejected(self):
        df = Dataflow(name="skip", devices=["a", "b", "c"],
                      edges=[DataflowEdge("a", "b"), DataflowEdge("b", "c"),
                             DataflowEdge("a", "c")])
        with pytest.raises(ValueError, match="skips a level"):
            df.validate()


class TestSourceRotation:
    def test_pairwise(self):
        df = replicated_stage("r", ["p0", "p1"], ["c0", "c1"])
        assert df.source_rotation("c0") == ["p0"]
        assert df.source_rotation("c1") == ["p1"]

    def test_gather_rotation_order(self):
        df = replicated_stage("g", ["p0", "p1", "p2", "p3"], ["c0"])
        assert df.source_rotation("c0") == ["p0", "p1", "p2", "p3"]

    def test_two_to_four(self):
        # 2 producers, 4 consumers: consumer j's frames come from
        # producer (j + 4t) mod 2 = j mod 2 always.
        df = Dataflow(
            name="x",
            devices=["p0", "p1", "c0", "c1", "c2", "c3"],
            edges=[DataflowEdge("p0", "c0"), DataflowEdge("p1", "c1"),
                   DataflowEdge("p0", "c2"), DataflowEdge("p1", "c3")])
        assert df.source_rotation("c0") == ["p0"]
        assert df.source_rotation("c3") == ["p1"]

    def test_rotation_mismatch_detected(self):
        # c0 is wired to p1 only, but the interleaving needs p0 and p1.
        df = Dataflow(name="bad", devices=["p0", "p1", "c0"],
                      edges=[DataflowEdge("p1", "c0")])
        with pytest.raises(ValueError, match="do not match"):
            df.source_rotation("c0")

    def test_root_has_no_rotation(self):
        df = chain("c", ["a", "b"])
        with pytest.raises(ValueError):
            df.source_rotation("a")


class TestP2PValidation:
    def test_fanout_rejected_for_p2p(self):
        df = replicated_stage("f", ["p0"], ["c0", "c1"])
        df.validate()   # fine for DMA modes
        with pytest.raises(ValueError, match="FIFO order"):
            df.validate_for_p2p()

    def test_max_sources_enforced(self):
        producers = [f"p{i}" for i in range(5)]
        df = replicated_stage("g", producers, ["c0"])
        with pytest.raises(ValueError, match="at most 4"):
            df.validate()

    def test_paper_configs_pass(self):
        replicated_stage("a", ["nv0"], ["cl0"]).validate_for_p2p()
        replicated_stage("b", [f"nv{i}" for i in range(4)],
                         ["cl0"]).validate_for_p2p()
        replicated_stage("c", [f"nv{i}" for i in range(4)],
                         [f"cl{i}" for i in range(4)]).validate_for_p2p()
        chain("d", [f"part{i}" for i in range(5)]).validate_for_p2p()


class TestHelpers:
    def test_chain_edges(self):
        df = chain("c", ["a", "b", "c"])
        assert len(df.edges) == 2
        assert df.consumers_of("a") == ["b"]

    def test_replicated_unsupported_shape(self):
        with pytest.raises(ValueError):
            replicated_stage("bad", ["p0", "p1"], ["c0", "c1", "c2"])


class TestSubstitute:
    """Device renaming: the structural rewrite behind resharding."""

    def test_substitute_preserves_structure(self):
        df = chain("c", ["a", "b", "c"])
        out = df.substitute({"b": "b2"})
        assert out.devices == ["a", "b2", "c"]
        assert out.consumers_of("a") == ["b2"]
        assert out.consumers_of("b2") == ["c"]
        assert out.name == df.name
        # The original is untouched.
        assert df.devices == ["a", "b", "c"]

    def test_substitute_unknown_device_rejected(self):
        df = chain("c", ["a", "b"])
        with pytest.raises(ValueError, match="not in dataflow"):
            df.substitute({"z": "b2"})

    def test_substitute_aliasing_rejected(self):
        df = chain("c", ["a", "b"])
        with pytest.raises(ValueError, match="aliases"):
            df.substitute({"a": "b"})

    def test_substituted_dataflow_still_validates_for_p2p(self):
        df = replicated_stage("r", ["nv0", "nv1"], ["cl0"])
        out = df.substitute({"nv1": "nv9", "cl0": "cl7"})
        out.validate_for_p2p()
