"""Tests for the re-entrant executor path and failure cleanup.

``run_process`` is ``execute`` expressed as a sim process: several
plans can be in flight on one SoC, and a plan that dies must put its
tiles and buffers back so the SoC stays serviceable — the properties
the serving layer is built on.
"""

import numpy as np
import pytest

from repro.faults import (
    AcceleratorTimeout,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    NodeFailed,
    RecoveryPolicy,
)
from repro.runtime import EspRuntime, RuntimeCosts, chain
from tests.conftest import make_runtime, make_soc, make_spec


def two_stage_specs():
    return [("a0", make_spec(name="a", latency=100)),
            ("b0", make_spec(name="b", latency=60)),
            ("c0", make_spec(name="c", latency=40))]


def drive(runtime, *run_args, **run_kwargs):
    """Run one ``run_process`` call to completion on the event loop."""
    env = runtime.soc.env
    process = env.process(
        runtime.executor.run_process(*run_args, **run_kwargs),
        name="drive")
    return env.run(until=process)


class TestRunProcess:
    @pytest.mark.parametrize("mode", ["base", "pipe", "p2p"])
    def test_bit_exact_with_blocking_execute(self, mode):
        frames = np.random.default_rng(0).uniform(0, 1, (4, 16))
        dataflow = chain("df", ["a0", "b0"])

        reference = make_runtime(two_stage_specs())
        expected = reference.esp_run(dataflow, frames, mode=mode)

        runtime = make_runtime(two_stage_specs())
        result = drive(runtime, dataflow, frames, mode)
        np.testing.assert_array_equal(result.outputs, expected.outputs)
        assert result.frames == 4
        assert result.cycles > 0

    def test_releases_buffers_on_completion(self):
        runtime = make_runtime(two_stage_specs())
        frames = np.ones((2, 16))
        base_probe = runtime.allocator.alloc(1)
        runtime.allocator.free(base_probe)
        drive(runtime, chain("df", ["a0", "b0"]), frames, "p2p")
        # Everything retracted: the next allocation lands at the base.
        assert runtime.allocator.free_list_words == 0
        assert runtime.allocator.alloc(1).offset == base_probe.offset

    def test_release_buffers_false_keeps_plan_memory(self):
        runtime = make_runtime(two_stage_specs())
        frames = np.ones((2, 16))
        result = drive(runtime, chain("df", ["a0", "b0"]), frames,
                       "p2p", release_buffers=False)
        assert result.frames == 2
        probe = runtime.allocator.alloc(1)
        assert probe.offset > 0        # plan buffers still resident

    def test_rejects_bad_input_shape_and_releases(self):
        runtime = make_runtime(two_stage_specs())
        with pytest.raises(ValueError, match="words"):
            drive(runtime, chain("df", ["a0"]), np.ones((2, 5)), "pipe")
        assert runtime.allocator.free_list_words == 0
        assert runtime.allocator.alloc(1).offset == 0

    def test_two_plans_interleave_on_disjoint_tiles(self):
        """The point of the whole refactor: two plans in flight on one
        SoC, overlapping in simulated time, both bit-exact."""
        runtime = make_runtime(two_stage_specs())
        env = runtime.soc.env
        fa = np.random.default_rng(1).uniform(0, 1, (4, 16))
        fb = np.random.default_rng(2).uniform(0, 1, (4, 16))
        results = {}
        spans = {}

        def run(key, dataflow, frames):
            start = env.now
            results[key] = yield from runtime.executor.run_process(
                dataflow, frames, "pipe")
            spans[key] = (start, env.now)

        pa = env.process(run("a", chain("da", ["a0", "b0"]), fa),
                         name="plan-a")
        pb = env.process(run("b", chain("db", ["c0"]), fb),
                         name="plan-b")
        env.run(until=env.all_of([pa, pb]))

        np.testing.assert_array_equal(results["a"].outputs, fa + 2.0)
        np.testing.assert_array_equal(results["b"].outputs, fb + 1.0)
        # Overlap in simulated time, not serialization.
        assert spans["a"][0] < spans["b"][1]
        assert spans["b"][0] < spans["a"][1]


class TestFailureCleanup:
    """A failed plan must leave the SoC serviceable: tiles reset,
    stale IRQs drained, buffers freed."""

    def poll_costs(self):
        return RuntimeCosts(completion="poll", max_wait_cycles=5_000)

    def hang_injector(self, soc, target="a0"):
        FaultInjector(FaultPlan([
            FaultSpec(kind="acc_hang", target=target, at_cycle=0,
                      count=1)])).attach(soc)

    def test_second_plan_succeeds_after_poll_timeout(self):
        """The satellite scenario: a plan times out mid-pipeline; a
        second plan over the same SoC right after must succeed."""
        soc = make_soc(two_stage_specs())
        self.hang_injector(soc)
        runtime = EspRuntime(soc, costs=self.poll_costs())
        dataflow = chain("df", ["a0", "b0"])
        frames = np.random.default_rng(0).uniform(0, 1, (4, 16))

        with pytest.raises(AcceleratorTimeout):
            runtime.esp_run(dataflow, frames, mode="pipe")
        # Cleanup ran: buffers retracted, tiles reset back to idle.
        assert runtime.allocator.free_list_words == 0
        from repro.soc.registers import STATUS_RUNNING
        for tile in soc.accelerators.values():
            assert tile.regs._values["STATUS_REG"] != STATUS_RUNNING

        result = runtime.esp_run(dataflow, frames, mode="pipe")
        np.testing.assert_array_equal(result.outputs, frames + 2.0)

    def test_second_plan_succeeds_after_node_failed(self):
        """Same, through the watchdog path with fallback disabled: the
        failed device stays quarantined but the rest of the SoC works."""
        soc = make_soc(two_stage_specs())
        self.hang_injector(soc)
        runtime = EspRuntime(
            soc, recovery=RecoveryPolicy(watchdog_cycles=5_000,
                                         max_retries=0,
                                         software_fallback=False))
        frames = np.random.default_rng(0).uniform(0, 1, (4, 16))

        with pytest.raises(NodeFailed):
            runtime.esp_run(chain("df", ["a0", "b0"]), frames,
                            mode="pipe")
        assert runtime.registry.is_failed("a0")
        assert runtime.allocator.free_list_words == 0

        result = runtime.esp_run(chain("df2", ["b0", "c0"]), frames,
                                 mode="pipe")
        np.testing.assert_array_equal(result.outputs, frames + 2.0)

    def test_run_process_failure_releases_for_concurrent_peer(self):
        """A dying plan must not poison a concurrently running one."""
        soc = make_soc(two_stage_specs())
        self.hang_injector(soc)
        runtime = EspRuntime(soc, costs=self.poll_costs())
        env = soc.env
        fb = np.random.default_rng(3).uniform(0, 1, (4, 16))
        outcome = {}

        def doomed():
            try:
                yield from runtime.executor.run_process(
                    chain("da", ["a0"]), np.ones((2, 16)), "pipe")
            except AcceleratorTimeout as exc:
                outcome["doomed"] = exc

        def survivor():
            outcome["ok"] = yield from runtime.executor.run_process(
                chain("db", ["b0", "c0"]), fb, "pipe")

        pa = env.process(doomed(), name="doomed")
        pb = env.process(survivor(), name="survivor")
        env.run(until=env.all_of([pa, pb]))

        assert isinstance(outcome["doomed"], AcceleratorTimeout)
        np.testing.assert_array_equal(outcome["ok"].outputs, fb + 2.0)
        assert runtime.allocator.free_list_words == 0
