"""Tests for polling-mode completion (vs interrupt-driven)."""

import numpy as np
import pytest

from repro.runtime import EspRuntime, RuntimeCosts, chain
from repro.soc import STATUS_REG
from tests.conftest import make_soc, make_spec


def pipeline_specs():
    return [("a0", make_spec(name="a", input_words=8, output_words=8,
                             latency=500)),
            ("b0", make_spec(name="b", input_words=8, output_words=8,
                             latency=300))]


def run(completion, poll_interval=200, mode="pipe", n_frames=8):
    soc = make_soc(pipeline_specs())
    runtime = EspRuntime(soc, costs=RuntimeCosts(
        completion=completion, poll_interval_cycles=poll_interval))
    frames = np.random.default_rng(0).uniform(0, 1, (n_frames, 8))
    result = runtime.esp_run(chain("ab", ["a0", "b0"]), frames,
                             mode=mode)
    return result, soc


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RuntimeCosts(completion="spin")
        with pytest.raises(ValueError):
            RuntimeCosts(completion="poll", poll_interval_cycles=0)


class TestPolling:
    @pytest.mark.parametrize("mode", ["base", "pipe", "p2p"])
    def test_same_outputs_as_irq(self, mode):
        irq_result, _ = run("irq", mode=mode)
        poll_result, _ = run("poll", mode=mode)
        np.testing.assert_array_equal(irq_result.outputs,
                                      poll_result.outputs)

    def test_polling_issues_status_reads(self):
        _, soc = run("poll")
        assert soc.cpu.reg_reads > 0
        _, soc_irq = run("irq")
        assert soc_irq.cpu.reg_reads == 0

    def test_polling_adds_completion_latency(self):
        irq_result, _ = run("irq")
        poll_result, _ = run("poll", poll_interval=400)
        assert poll_result.cycles > irq_result.cycles

    def test_finer_polling_reduces_latency_but_costs_reads(self):
        coarse, soc_coarse = run("poll", poll_interval=1000)
        fine, soc_fine = run("poll", poll_interval=50)
        assert fine.cycles < coarse.cycles
        assert soc_fine.cpu.reg_reads > soc_coarse.cpu.reg_reads

    def test_status_read_roundtrip_primitive(self):
        """The register-read path used by the polling driver."""
        soc = make_soc(pipeline_specs())
        tile = soc.accelerator("a0")
        values = []

        def proc():
            value = yield from soc.cpu.read_reg(tile.coord, STATUS_REG)
            values.append(value)
            value = yield from soc.cpu.read_reg(tile.coord,
                                                "SRC_OFFSET_REG")
            values.append(value)

        done = soc.env.process(proc())
        soc.run(until=done)
        assert values == [0, 0]

    def test_concurrent_reads_demuxed(self):
        soc = make_soc(pipeline_specs())
        a = soc.accelerator("a0")
        b = soc.accelerator("b0")
        a.regs._values["SRC_OFFSET_REG"] = 111
        b.regs._values["SRC_OFFSET_REG"] = 222
        got = {}

        def reader(key, coord):
            got[key] = yield from soc.cpu.read_reg(coord,
                                                   "SRC_OFFSET_REG")

        soc.env.process(reader("a", a.coord))
        soc.env.process(reader("b", b.coord))
        soc.run()
        assert got == {"a": 111, "b": 222}
