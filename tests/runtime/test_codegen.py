"""Tests for user-application code generation (Fig. 5 artifacts)."""

import pytest

from repro.runtime import chain, emit_dataflow_header, emit_user_app, replicated_stage


class TestUserApp:
    def test_mirrors_fig5_structure(self):
        df = chain("dflow1", ["nv0", "cl0"])
        text = emit_user_app(df, dataset_words=65536)
        # The exact call sequence of the paper's generated application.
        for snippet in ("esp_alloc(&contig, 65536)",
                        "init_buffer(buf)",
                        "esp_run(cfg_dflow1, NACC)",
                        "validate_buffer(buf)",
                        "esp_cleanup()"):
            assert snippet in text
        assert text.index("esp_alloc") < text.index("esp_run") \
            < text.index("esp_cleanup")

    def test_includes_dataflow_header(self):
        df = chain("myapp", ["a", "b"])
        text = emit_user_app(df, dataset_words=1024)
        assert '#include "dflow_myapp.h"' in text

    def test_returns_error_count(self):
        text = emit_user_app(chain("x", ["a", "b"]), dataset_words=16)
        assert "return errors;" in text


class TestDataflowHeader:
    def test_nacc_and_frames(self):
        df = replicated_stage("app", ["p0", "p1"], ["c0"])
        text = emit_dataflow_header(df, n_frames=128, mode="p2p")
        assert "#define NACC 3" in text
        assert "#define N_FRAMES 128" in text

    def test_one_descriptor_per_device(self):
        df = chain("app", ["a", "b", "c"])
        text = emit_dataflow_header(df, n_frames=8, mode="p2p")
        assert text.count(".devname") == 3

    def test_base_mode_is_all_dma(self):
        df = chain("app", ["a", "b"])
        text = emit_dataflow_header(df, n_frames=8, mode="base")
        assert ".load = P2P" not in text
        assert ".store = P2P" not in text

    def test_gather_rotation_order_in_header(self):
        df = replicated_stage("app", [f"p{i}" for i in range(4)], ["c0"])
        text = emit_dataflow_header(df, n_frames=8, mode="p2p")
        consumer_line = next(l for l in text.splitlines()
                             if '"c0"' in l)
        assert '"p0", "p1", "p2", "p3"' in consumer_line

    def test_stable_output(self):
        """Codegen is deterministic (golden-file property)."""
        df = chain("app", ["a", "b"])
        assert emit_dataflow_header(df, 8, "p2p") == \
            emit_dataflow_header(df, 8, "p2p")
        assert emit_user_app(df, 64) == emit_user_app(df, 64)
