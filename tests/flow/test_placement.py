"""Tests for the placement optimizer."""

import numpy as np
import pytest

from repro.flow import (
    MEMORY,
    optimize_placement,
    placed_soc_config,
    placement_cost,
    traffic_matrix,
)
from repro.runtime import Dataflow, DataflowEdge, chain, replicated_stage
from tests.conftest import make_spec


def chain_specs(n=3, words=64):
    return {f"s{i}": make_spec(name=f"s{i}", input_words=words,
                               output_words=words) for i in range(n)}


class TestTrafficMatrix:
    def test_chain_p2p(self):
        specs = chain_specs(3)
        df = chain("c", ["s0", "s1", "s2"])
        traffic = traffic_matrix(df, specs, p2p=True)
        assert traffic[(MEMORY, "s0")] == 64     # input load
        assert traffic[(MEMORY, "s2")] == 64     # output store
        assert traffic[("s0", "s1")] == 64
        assert traffic[("s1", "s2")] == 64
        # No memory round trip for intermediates.
        assert (MEMORY, "s1") not in traffic

    def test_chain_dma_routes_through_memory(self):
        specs = chain_specs(3)
        df = chain("c", ["s0", "s1", "s2"])
        traffic = traffic_matrix(df, specs, p2p=False)
        assert ("s0", "s1") not in traffic
        # s1: load input from mem (64) + store output to mem (64).
        assert traffic[(MEMORY, "s1")] == 128

    def test_gather_weights(self):
        specs = {**{f"p{i}": make_spec(name="p", input_words=32,
                                       output_words=32)
                    for i in range(2)},
                 "c0": make_spec(name="c", input_words=32,
                                 output_words=8)}
        df = replicated_stage("g", ["p0", "p1"], ["c0"])
        traffic = traffic_matrix(df, specs)
        assert traffic[("c0", "p0")] == 32
        assert traffic[(MEMORY, "c0")] == 8

    def test_missing_spec(self):
        df = chain("c", ["s0", "s1"])
        with pytest.raises(KeyError):
            traffic_matrix(df, {"s0": make_spec()})


class TestCost:
    def test_cost_counts_words_times_hops(self):
        traffic = {("a", "b"): 10, (MEMORY, "a"): 5}
        positions = {"a": (0, 0), "b": (2, 0), MEMORY: (0, 1)}
        assert placement_cost(positions, traffic) == 10 * 2 + 5 * 1

    def test_zero_for_colocated_neighbours(self):
        traffic = {("a", "b"): 10}
        positions = {"a": (0, 0), "b": (1, 0), MEMORY: (0, 1)}
        assert placement_cost(positions, traffic) == 10


class TestOptimizer:
    def test_neighbours_end_up_adjacent(self):
        # Heavy a<->b edge: the optimizer must put them close.
        traffic = {("a", "b"): 1000, (MEMORY, "a"): 1}
        slots = [(0, 0), (3, 0), (0, 3), (3, 3)]
        result = optimize_placement(slots, ["a", "b"], traffic,
                                    memory_coord=(1, 1))
        from repro.noc import hop_count
        assert hop_count(result.positions["a"],
                         result.positions["b"]) <= 3

    def test_beats_or_matches_any_manual_assignment(self):
        specs = chain_specs(4, words=128)
        df = chain("c", list(specs))
        traffic = traffic_matrix(df, specs)
        slots = [(x, y) for x in range(3) for y in range(2)
                 if (x, y) != (0, 0)]
        result = optimize_placement(slots, list(specs), traffic,
                                    memory_coord=(0, 0))
        # Exhaustive check on this small instance.
        import itertools
        best = min(
            placement_cost({**dict(zip(specs, perm)), MEMORY: (0, 0)},
                           traffic)
            for perm in itertools.permutations(slots, len(specs)))
        assert result.cost == best

    def test_deterministic(self):
        specs = chain_specs(5)
        df = chain("c", list(specs))
        traffic = traffic_matrix(df, specs)
        slots = [(x, y) for x in range(3) for y in range(2)]
        a = optimize_placement(slots, list(specs), traffic, (0, 2))
        b = optimize_placement(slots, list(specs), traffic, (0, 2))
        assert a.positions == b.positions

    def test_not_enough_slots(self):
        with pytest.raises(ValueError, match="slots"):
            optimize_placement([(0, 0)], ["a", "b"], {}, (1, 1))

    def test_duplicate_slots(self):
        with pytest.raises(ValueError, match="duplicate"):
            optimize_placement([(0, 0), (0, 0)], ["a", "b"], {}, (1, 1))

    def test_improvement_reported(self):
        traffic = {("a", "d"): 500, ("b", "c"): 500}
        slots = [(0, 0), (1, 0), (2, 0), (3, 0)]
        result = optimize_placement(slots, ["a", "b", "c", "d"], traffic,
                                    memory_coord=(0, 1))
        assert 0.0 <= result.improvement <= 1.0
        assert result.cost <= result.initial_cost


class TestPlacedSoC:
    def test_generates_valid_config(self, rng):
        devices = [(f"s{i}", make_spec(name=f"s{i}", input_words=64,
                                       output_words=64))
                   for i in range(4)]
        df = chain("c", [d for d, _ in devices])
        config = placed_soc_config(3, 3, "placed", devices, df)
        config.validate()
        assert set(config.accelerator_names()) == {d for d, _ in devices}

    def test_runs_correctly(self, rng):
        from repro.runtime import EspRuntime
        from repro.soc import build_soc
        devices = [(f"s{i}", make_spec(name=f"s{i}", input_words=32,
                                       output_words=32))
                   for i in range(3)]
        df = chain("c", [d for d, _ in devices])
        runtime = EspRuntime(build_soc(
            placed_soc_config(3, 2, "placed", devices, df)))
        frames = rng.uniform(0, 1, (4, 32))
        result = runtime.esp_run(df, frames, mode="p2p")
        np.testing.assert_allclose(result.outputs, frames + 3.0)
