"""Tests for the training bridge (presets, caching, datasets)."""

import numpy as np
import pytest

from repro.flow import PRESETS, night_vision_dataset, train_classifier, train_denoiser
from repro.flow.keras_bridge import TrainingPreset


class TestPresets:
    def test_both_presets_defined(self):
        assert set(PRESETS) == {"fast", "full"}

    def test_full_is_bigger(self):
        assert PRESETS["full"].n_train > PRESETS["fast"].n_train
        assert PRESETS["full"].epochs > PRESETS["fast"].epochs

    def test_unknown_preset_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            train_classifier(preset="turbo", cache_dir=tmp_path)
        with pytest.raises(ValueError):
            train_denoiser(preset="turbo", cache_dir=tmp_path)


class TestCaching:
    def _tiny(self):
        # Patch in a minute preset for cache-behaviour tests.
        PRESETS["_tiny"] = TrainingPreset(n_train=60, n_test=30,
                                          epochs=1, batch_size=16)
        return "_tiny"

    def teardown_method(self):
        PRESETS.pop("_tiny", None)

    def test_cache_files_written_and_reused(self, tmp_path):
        preset = self._tiny()
        model1, acc1 = train_classifier(preset=preset,
                                        cache_dir=tmp_path)
        files = sorted(p.name for p in tmp_path.iterdir())
        assert f"classifier_{preset}.json" in files
        assert f"classifier_{preset}.npz" in files
        # Second call loads the cache: identical weights.
        model2, acc2 = train_classifier(preset=preset,
                                        cache_dir=tmp_path)
        np.testing.assert_array_equal(
            model1.layers[0].weights, model2.layers[0].weights)
        assert acc1 == acc2

    def test_force_retrains(self, tmp_path):
        preset = self._tiny()
        train_classifier(preset=preset, cache_dir=tmp_path)
        stamp = (tmp_path / f"classifier_{preset}.npz").stat().st_mtime_ns
        train_classifier(preset=preset, cache_dir=tmp_path, force=True)
        assert (tmp_path / f"classifier_{preset}.npz"
                ).stat().st_mtime_ns != stamp

    def test_denoiser_cache(self, tmp_path):
        preset = self._tiny()
        model, err = train_denoiser(preset=preset, cache_dir=tmp_path)
        assert 0.0 <= err <= 1.0
        model2, err2 = train_denoiser(preset=preset, cache_dir=tmp_path)
        assert err == err2


class TestNightVisionDataset:
    def test_shapes_and_darkness(self):
        frames, labels = night_vision_dataset(8, seed=1, factor=0.2)
        assert frames.shape == (8, 1024)
        assert labels.shape == (8, 10)
        assert frames.max() <= 0.2 + 1e-9

    def test_deterministic(self):
        a, _ = night_vision_dataset(4, seed=2)
        b, _ = night_vision_dataset(4, seed=2)
        np.testing.assert_array_equal(a, b)
