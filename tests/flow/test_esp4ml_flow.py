"""Tests for the end-to-end ESP4ML flow driver (Fig. 3)."""

import numpy as np
import pytest

from repro.flow import Esp4mlFlow, auto_grid
from repro.nn import Dense, ReLU, Sequential, Softmax
from repro.runtime import chain, replicated_stage
from tests.conftest import make_spec


def small_ml_model(name="mini", seed=0):
    return Sequential([Dense(16), ReLU(), Dense(4), Softmax()],
                      name=name).build(8, seed=seed)


class TestAutoGrid:
    def test_near_square(self):
        assert auto_grid(4) == (2, 2)
        assert auto_grid(5) == (3, 2)
        assert auto_grid(12) == (4, 3)

    def test_capacity(self):
        for n in range(1, 30):
            cols, rows = auto_grid(n)
            assert cols * rows >= n

    def test_invalid(self):
        with pytest.raises(ValueError):
            auto_grid(0)


class TestFlow:
    def test_ml_branch_generates_firmware_artifacts(self):
        flow = Esp4mlFlow()
        flow.add_ml_accelerator("ml0", small_ml_model(), reuse_factor=4)
        bundle = flow.generate("soc")
        assert "ml0/compute.cpp" in bundle.artifacts
        assert "ml0/directives.tcl" in bundle.artifacts
        assert "ml0.xml" in bundle.artifacts
        assert "soc.dts" in bundle.artifacts

    def test_generic_branch(self):
        flow = Esp4mlFlow()
        flow.add_generic_accelerator("nv0", make_spec(name="nv"))
        bundle = flow.generate("soc")
        assert "nv0.xml" in bundle.artifacts
        assert "nv0" in bundle.soc.accelerators

    def test_duplicate_device_rejected(self):
        flow = Esp4mlFlow()
        flow.add_generic_accelerator("a", make_spec())
        with pytest.raises(ValueError):
            flow.add_generic_accelerator("a", make_spec())

    def test_generate_without_accelerators_rejected(self):
        with pytest.raises(ValueError):
            Esp4mlFlow().generate()

    def test_explicit_grid_too_small(self):
        flow = Esp4mlFlow()
        flow.add_generic_accelerator("a", make_spec())
        with pytest.raises(ValueError):
            flow.generate(grid=(2, 1))

    def test_generated_soc_runs_a_dataflow(self, rng):
        flow = Esp4mlFlow()
        flow.add_generic_accelerator(
            "pre0", make_spec(name="pre", input_words=8, output_words=8))
        model = small_ml_model()
        flow.add_ml_accelerator("ml0", model, reuse_factor=4)
        bundle = flow.generate("soc")
        df = replicated_stage("app", ["pre0"], ["ml0"])
        frames = rng.uniform(0, 1, (4, 8))
        result = bundle.runtime.esp_run(df, frames, mode="p2p")
        assert result.outputs.shape == (4, 4)
        # Outputs are softmax probabilities from the compiled model.
        np.testing.assert_allclose(result.outputs.sum(axis=1), 1.0,
                                   atol=0.05)

    def test_emit_application(self):
        flow = Esp4mlFlow()
        flow.add_generic_accelerator("a0", make_spec(name="a"))
        flow.add_generic_accelerator("b0", make_spec(name="b"))
        bundle = flow.generate("soc")
        df = chain("myapp", ["a0", "b0"])
        flow.emit_application(bundle, df, n_frames=8, mode="p2p")
        assert "dflow_myapp.h" in bundle.artifacts
        assert "myapp-app.c" in bundle.artifacts
        app = bundle.artifacts["myapp-app.c"]
        assert "esp_alloc" in app and "esp_run" in app \
            and "esp_cleanup" in app

    def test_write_artifacts(self, tmp_path):
        flow = Esp4mlFlow()
        flow.add_generic_accelerator("a0", make_spec(name="a"))
        bundle = flow.generate("soc")
        written = bundle.write_artifacts(tmp_path)
        assert (tmp_path / "soc.dts").exists()
        assert (tmp_path / "a0.xml").exists()
        assert len(written) == len(bundle.artifacts)


class TestDataflowHeader:
    def test_header_marks_comm_modes(self):
        from repro.runtime import emit_dataflow_header
        df = chain("app", ["a", "b", "c"])
        text = emit_dataflow_header(df, n_frames=16, mode="p2p")
        assert "#define NACC 3" in text
        # Root loads DMA / stores P2P; middle both P2P; leaf loads P2P.
        assert '.devname = "a", .load = DMA, .store = P2P' in text
        assert '.devname = "b", .load = P2P, .store = P2P' in text
        assert '.devname = "c", .load = P2P, .store = DMA' in text

    def test_header_dma_mode(self):
        from repro.runtime import emit_dataflow_header
        df = chain("app", ["a", "b"])
        text = emit_dataflow_header(df, n_frames=16, mode="pipe")
        assert "P2P" not in text.replace("p2p_srcs", "")

    def test_sources_listed_for_gather(self):
        from repro.runtime import emit_dataflow_header
        df = replicated_stage("app", ["p0", "p1"], ["c0"])
        text = emit_dataflow_header(df, n_frames=16, mode="p2p")
        assert '"p0", "p1"' in text
