"""Tests for accelerator XML descriptor generation."""

import pytest

from repro.flow import emit_accelerator_xml, parse_accelerator_xml
from tests.conftest import make_spec


class TestEmit:
    def test_contains_module_and_registers(self):
        text = emit_accelerator_xml(make_spec(name="toy"))
        assert '<module name="toy"' in text
        assert 'name="CMD_REG"' in text
        assert 'name="P2P_REG"' in text
        assert 'name="LOCATION_REG"' in text

    def test_location_reg_marked_readonly(self):
        text = emit_accelerator_xml(make_spec())
        for line in text.splitlines():
            if 'LOCATION_REG' in line:
                assert 'readonly="true"' in line
            elif 'readonly' in line:
                assert 'readonly="false"' in line

    def test_io_geometry_exported(self):
        text = emit_accelerator_xml(make_spec(input_words=48,
                                              output_words=12))
        assert 'value="48"' in text
        assert 'value="12"' in text


class TestParse:
    def test_roundtrip(self):
        spec = make_spec(name="toy")
        name, registers = parse_accelerator_xml(emit_accelerator_xml(spec))
        assert name == "toy"
        assert "CMD_REG" in registers
        assert "N_FRAMES_REG" in registers

    def test_rejects_wrong_root(self):
        with pytest.raises(ValueError):
            parse_accelerator_xml("<thing/>")
