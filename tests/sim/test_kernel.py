"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Environment, Event, SimulationError


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(5)
        log.append(env.now)
        yield env.timeout(3)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [5, 8]


def test_timeout_zero_runs_same_cycle():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(0)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [0]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeout_carries_value():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(2, value="payload")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["payload"]


def test_process_return_value_visible_to_waiter():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(4)
        return 42

    def parent(env):
        result = yield env.process(child(env))
        results.append((env.now, result))

    env.process(parent(env))
    env.run()
    assert results == [(4, 42)]


def test_run_until_time_stops_early():
    env = Environment()
    log = []

    def proc(env):
        for _ in range(10):
            yield env.timeout(10)
            log.append(env.now)

    env.process(proc(env))
    env.run(until=35)
    assert log == [10, 20, 30]
    assert env.now == 35


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env, done):
        yield env.timeout(7)
        done.succeed("finished")
        yield env.timeout(100)

    done = env.event()
    env.process(proc(env, done))
    assert env.run(until=done) == "finished"
    assert env.now == 7


def test_run_until_event_never_triggering_raises():
    env = Environment()
    never = env.event()

    def proc(env):
        yield env.timeout(1)

    env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run(until=never)


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_value_before_trigger_rejected():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_events_at_same_time_fifo_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(5)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_all_of_waits_for_every_event():
    env = Environment()
    seen = []

    def proc(env):
        t1 = env.timeout(3, value="x")
        t2 = env.timeout
        result = yield env.all_of([t1, env.timeout(9, value="y")])
        seen.append((env.now, sorted(result.values())))

    env.process(proc(env))
    env.run()
    assert seen == [(9, ["x", "y"])]


def test_any_of_fires_on_first():
    env = Environment()
    seen = []

    def proc(env):
        result = yield env.any_of([env.timeout(3, "fast"), env.timeout(9, "slow")])
        seen.append((env.now, list(result.values())))

    env.process(proc(env))
    env.run()
    assert seen == [(3, ["fast"])]


def test_failed_event_raises_in_waiter():
    env = Environment()
    caught = []

    def child(env):
        yield env.timeout(2)
        raise RuntimeError("boom")

    def parent(env):
        try:
            yield env.process(child(env))
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(parent(env))
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_failure_surfaces_from_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        raise ValueError("unhandled")

    env.process(proc(env))
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_yield_non_event_is_an_error():
    env = Environment()

    def proc(env):
        yield 42

    env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run()


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    log = []

    def proc(env, event):
        yield env.timeout(10)
        value = yield event  # triggered long ago
        log.append((env.now, value))

    event = env.event()
    event.succeed("early")
    env.process(proc(env, event))
    env.run()
    assert log == [(10, "early")]


def test_nested_processes_compose():
    env = Environment()

    def leaf(env, delay):
        yield env.timeout(delay)
        return delay

    def branch(env):
        total = 0
        for delay in (2, 3):
            total += yield env.process(leaf(env, delay))
        return total

    def root(env, out):
        result = yield env.process(branch(env))
        out.append((env.now, result))

    out = []
    env.process(root(env, out))
    env.run()
    assert out == [(5, 5)]


def test_clock_is_monotonic_across_many_processes():
    env = Environment()
    stamps = []

    def proc(env, period):
        for _ in range(20):
            yield env.timeout(period)
            stamps.append(env.now)

    for period in (3, 5, 7):
        env.process(proc(env, period))
    env.run()
    assert stamps == sorted(stamps)
