"""Randomized equivalence of the optimized engine vs reference code.

The calendar-queue simulation kernel, the channel primitives, the NoC
route caches and the fixed-point quantizer all carry fast paths that
must be **observably identical** to the straightforward reference
implementations they replaced (see ``docs/performance.md``). Each
test here reconstructs the reference behaviour — the seed's
single-heap scheduler, the succeed()-based channels, the uncached
route walk, the divide/clip quantizer — and drives both sides through
the same randomized, seeded scenarios, comparing every observable:
dispatch order, timestamps, values delivered, grant order, counters,
raw codes, final clock.

These tests are the executable form of the ordering proof in
``repro.sim.kernel``'s module docstring: if the calendar buckets, the
batched dispatch loop or the fast-forward ever diverged from
single-heap order, the interleavings below — including pathological
same-cycle storms and long idle gaps — would catch it.
"""

import heapq
import itertools
import random

import numpy as np
import pytest

from repro.fixed import FixedFormat
from repro.noc.routing import hop_count, route_hops, xy_route
from repro.sim import Environment, Fifo, Resource, Semaphore
from repro.sim.kernel import (DeadlockError, Event, SimulationError,
                              StopSimulation)


# ---------------------------------------------------------------------------
# Reference scheduler: the seed's single-heap kernel, self-contained
# ---------------------------------------------------------------------------

class _HeapReady:
    """A ``_ready`` stand-in that routes every append to the heap.

    The optimized ``Environment`` sends zero-delay triggers to a FIFO
    deque (``Event.succeed`` and the channel fast paths append to
    ``env._ready`` directly). Substituting this object restores the
    seed semantics exactly: every append becomes a ``(now, sequence,
    event)`` heap push, and the deque always reads as empty.
    """

    __slots__ = ("env",)

    def __init__(self, env):
        self.env = env

    def append(self, event):
        heapq.heappush(self.env._heap,
                       (self.env._now, next(self.env._eid), event))

    def __bool__(self):
        return False

    def __len__(self):
        return 0


class ReferenceEnvironment(Environment):
    """The seed kernel: one binary heap of ``(time, seq, event)``.

    A complete, independent scheduler implementation — storage
    (``_heap`` + global sequence counter), ``peek``, per-event
    ``step`` and a peek/step ``run`` loop — serving as the oracle for
    the calendar-queue + batched-dispatch + fast-forward engine. It
    shares only the Event/Process/channel layer with the optimized
    kernel, which is exactly the surface whose observable behaviour
    the equivalence tests pin.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._heap = []
        self._eid = itertools.count()
        self._ready = _HeapReady(self)

    def _schedule(self, event, delay=0):
        heapq.heappush(self._heap,
                       (self._now + delay, next(self._eid), event))

    def peek(self):
        return self._heap[0][0] if self._heap else float("inf")

    def step(self):
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _, event = heapq.heappop(self._heap)
        self._now = when
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not getattr(event, "__sim_defused__", False):
            raise event._value

    def run(self, until=None):
        stop_event = None
        stop_time = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value

            def _stop(event):
                raise StopSimulation

            stop_event.callbacks.append(_stop)
        elif until is not None:
            stop_time = int(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time} is in the past (now={self._now})")
        try:
            while self._heap:
                if stop_time is not None and self._heap[0][0] > stop_time:
                    self._now = stop_time
                    return None
                self.step()
        except StopSimulation:
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        finally:
            if stop_event is not None and stop_event.callbacks \
                    and _stop in stop_event.callbacks:
                stop_event.callbacks.remove(_stop)
        if stop_event is not None and not stop_event.triggered:
            raise DeadlockError(
                "run(until=event) drained the schedule before the event "
                "triggered", blocked=self.blocked_processes())
        if stop_time is not None:
            self._now = stop_time
        return None


# ---------------------------------------------------------------------------
# Scenario machinery: the same random program on both kernels
# ---------------------------------------------------------------------------

def _run_scenario(env_cls, seed):
    """A randomized mix of timeouts, FIFOs, resources and semaphores.

    Returns the observable trace: every action is recorded as
    ``(time, actor, action, detail)`` in dispatch order, which pins
    both *when* things happen and *in which order* within a cycle.
    """
    rng = random.Random(seed)
    env = env_cls()
    trace = []

    n_workers = rng.randint(2, 5)
    fifo = Fifo(env, capacity=rng.randint(1, 3), name="f")
    unbounded = Fifo(env, name="u")
    resource = Resource(env, slots=rng.randint(1, 2), name="r")
    sem = Semaphore(env, value=rng.randint(0, 2), name="s")

    def producer(pid, n_items):
        for index in range(n_items):
            delay = rng.randint(0, 3)
            if delay:
                yield env.timeout(delay)
            item = (pid, index)
            yield fifo.put(item)
            trace.append((env.now, f"prod{pid}", "put", item))
            if rng.random() < 0.4:
                unbounded.put((pid, index, "u"))
                trace.append((env.now, f"prod{pid}", "uput", index))

    def consumer(cid, n_items):
        for _ in range(n_items):
            if rng.random() < 0.3:
                yield env.timeout(rng.randint(0, 2))
            got = yield fifo.get()
            trace.append((env.now, f"cons{cid}", "get", got))
            if rng.random() < 0.5:
                yield resource.acquire()
                trace.append((env.now, f"cons{cid}", "acq", None))
                yield env.timeout(rng.randint(0, 2))
                resource.release()
                trace.append((env.now, f"cons{cid}", "rel", None))

    def signaller(sid, rounds):
        for index in range(rounds):
            yield env.timeout(rng.randint(0, 2))
            if rng.random() < 0.5:
                sem.post()
                trace.append((env.now, f"sig{sid}", "post", index))
            else:
                yield sem.wait()
                trace.append((env.now, f"sig{sid}", "wait", index))
        # Leave no waiter stranded: top the semaphore up.
        sem.post(rounds)

    total = 0
    for pid in range(n_workers):
        n_items = rng.randint(1, 6)
        total += n_items
        env.process(producer(pid, n_items), name=f"prod{pid}")
    per_consumer = total // 2
    env.process(consumer(0, per_consumer), name="cons0")
    env.process(consumer(1, total - per_consumer), name="cons1")
    env.process(signaller(0, rng.randint(1, 4)), name="sig0")
    env.process(signaller(1, rng.randint(1, 4)), name="sig1")

    env.run()
    stats = (env.now, env.events_processed,
             fifo.total_puts, fifo.total_gets,
             unbounded.total_puts, resource.total_acquisitions)
    return trace, stats


@pytest.mark.parametrize("seed", range(25))
def test_kernel_matches_single_heap_reference(seed):
    """Calendar-queue scheduler == seed single-heap scheduler.

    Identical programs must produce identical dispatch traces — same
    events, same timestamps, same intra-cycle order — and identical
    event counts (``events_processed`` increments once per dispatched
    event on both engines; batching must not add to or elide it).
    """
    opt_trace, opt_stats = _run_scenario(Environment, seed)
    ref_trace, ref_stats = _run_scenario(ReferenceEnvironment, seed)
    assert opt_trace == ref_trace
    assert opt_stats == ref_stats


def _run_storm_scenario(env_cls, seed):
    """Pathological same-cycle storm: wide zero-delay fan-outs.

    Every round, every worker wakes at the *same* cycle (identical
    delays), fires a burst of immediate FIFO handshakes and semaphore
    posts, and chains a cascade of zero-delay events — the worst case
    for the calendar engine, where one bucket plus a long deque tail
    must still replay exactly the single-heap order.
    """
    rng = random.Random(seed)
    env = env_cls()
    trace = []
    fifo = Fifo(env, name="storm")
    sem = Semaphore(env, value=0, name="storm-sem")
    n_workers = rng.randint(4, 10)
    rounds = rng.randint(3, 6)
    burst = rng.randint(2, 6)

    def chain(wid, index, depth):
        # A cascade of immediately-triggered events: each link lands
        # behind everything already in flight at this cycle.
        for hop in range(depth):
            event = Event(env)
            event.succeed((wid, index, hop))
            got = yield event
            trace.append((env.now, wid, "chain", got))

    def worker(wid):
        for round_no in range(rounds):
            # Identical delay for every worker: all wake-ups collide
            # on one calendar bucket.
            yield env.timeout(5)
            for index in range(burst):
                fifo.put((wid, round_no, index))
                trace.append((env.now, wid, "put", index))
            sem.post(burst)
            env.process(chain(wid, round_no, rng.randint(1, 4)),
                        name=f"chain{wid}.{round_no}")
            for index in range(burst):
                yield sem.wait()
                got = yield fifo.get()
                trace.append((env.now, wid, "got", got))

    for wid in range(n_workers):
        env.process(worker(wid), name=f"w{wid}")
    env.run()
    return trace, (env.now, env.events_processed,
                   fifo.total_puts, fifo.total_gets)


@pytest.mark.parametrize("seed", range(15))
def test_same_cycle_storm_matches_reference(seed):
    """Same-cycle storms: batched bucket dispatch == single heap."""
    opt = _run_storm_scenario(Environment, seed)
    ref = _run_storm_scenario(ReferenceEnvironment, seed)
    assert opt == ref


def _run_idle_gap_scenario(env_cls, seed):
    """Sparse wake-ups separated by long idle gaps, driven by run(until).

    The driver advances the clock in randomized slices (landing inside
    gaps, exactly on wake-up cycles, and far beyond the last event),
    which exercises the fast-forward path against the reference
    kernel's peek-based clock advance. The returned trace includes the
    observed clock after every slice.
    """
    rng = random.Random(seed)
    env = env_cls()
    trace = []
    gaps = [rng.choice([1, 7, 10_000, 1_000_000]) for _ in range(6)]

    def sparse(pid):
        for index, gap in enumerate(gaps):
            yield env.timeout(gap + pid)
            trace.append((env.now, pid, index))

    for pid in range(rng.randint(1, 3)):
        env.process(sparse(pid), name=f"sparse{pid}")

    horizon = sum(gaps) + 10
    slices = sorted(rng.randint(0, horizon + 2_000_000)
                    for _ in range(8))
    for target in slices:
        if target >= env.now:
            env.run(until=target)
            trace.append(("clock", env.now))
    env.run()
    return trace, (env.now, env.events_processed)


@pytest.mark.parametrize("seed", range(15))
def test_long_idle_gaps_match_reference(seed):
    """Fast-forward across idle spans == reference clock advance."""
    opt = _run_idle_gap_scenario(Environment, seed)
    ref = _run_idle_gap_scenario(ReferenceEnvironment, seed)
    assert opt == ref


@pytest.mark.parametrize("env_cls", [Environment, ReferenceEnvironment])
def test_failure_mid_cycle_leaves_rest_of_cycle_dispatchable(env_cls):
    """An unhandled failure aborts run() without losing queued events.

    The batched dispatch loop must leave the undispatched remainder of
    the cycle in the schedule, so a caller that catches the error can
    resume and both kernels agree on what still happens.
    """
    env = env_cls()
    order = []

    def boomer():
        yield env.timeout(3)
        raise RuntimeError("boom")

    def bystander(bid):
        yield env.timeout(3)
        order.append((env.now, bid))

    env.process(bystander(0))
    env.process(boomer(), name="boomer")
    env.process(bystander(1))
    with pytest.raises(RuntimeError, match="boom"):
        env.run()
    env.run()   # the rest of cycle 3 must still dispatch
    assert order == [(3, 0), (3, 1)]


def test_fast_forward_requires_empty_span():
    """fast_forward() refuses to skip over scheduled work."""
    def ticker(env):
        yield env.timeout(5)

    env = Environment()
    env.process(ticker(env), name="ticker")
    env.run(until=4)    # ticker due at 5
    env.fast_forward(4)             # no-op jump to the present is fine
    with pytest.raises(SimulationError):
        env.fast_forward(5)         # would swallow the tick
    with pytest.raises(ValueError):
        env.fast_forward(2)         # the past is off limits
    env.run(until=5)
    assert env.now == 5
    env.fast_forward(1_000_000)     # schedule is empty: O(1) jump
    assert env.now == 1_000_000


def test_zero_delay_orders_after_due_heap_entries():
    """The deque drains *after* heap entries due at the same time.

    This is the corner of the ordering argument: a timeout scheduled
    earlier for time t must dispatch before a zero-delay trigger fired
    at time t, because its sequence number is older. Both kernels must
    agree.
    """

    def scenario(env_cls):
        env = env_cls()
        order = []

        def waker(event):
            yield env.timeout(5)        # scheduled at t=0, due t=5
            event.succeed()             # zero-delay trigger at t=5
            order.append((env.now, "woke"))

        def sleeper(event):
            yield event
            order.append((env.now, "resumed"))

        def bystander():
            yield env.timeout(5)        # also due at t=5, pushed later
            order.append((env.now, "bystander"))

        event = Event(env)
        env.process(waker(event))
        env.process(sleeper(event))
        env.process(bystander())
        env.run()
        return order

    optimized = scenario(Environment)
    reference = scenario(ReferenceEnvironment)
    assert optimized == reference
    # The bystander's timeout entered the heap before the succeed()
    # fired, so it must resume before the sleeper.
    assert optimized.index((5, "bystander")) \
        < optimized.index((5, "resumed"))


# ---------------------------------------------------------------------------
# Channel fast paths vs reference (seed) channel implementations
# ---------------------------------------------------------------------------

class ReferenceFifo(Fifo):
    """The seed's ``Fifo``: property-based full check, eager drain,
    and every completion routed through ``Event.succeed`` instead of
    the inlined value-assign + ready-append fast path."""

    def put(self, item):
        event = Event(self.env)
        if not self.is_full and not self._putters:
            self._accept(item)
            event.succeed()
        else:
            event.wait_reason = f"put on full fifo {self.name!r}"
            self._putters.append((event, item))
        return event

    def get(self):
        event = Event(self.env)
        if self.items:
            event.succeed(self.items.popleft())
            self.total_gets += 1
            self._drain_putters()
        else:
            event.wait_reason = f"get on empty fifo {self.name!r}"
            self._getters.append(event)
        return event

    def _accept(self, item):
        self.total_puts += 1
        if self._getters:
            self._getters.popleft().succeed(item)
            self.total_gets += 1
        else:
            self.items.append(item)

    def _drain_putters(self):
        while self._putters and not self.is_full:
            event, item = self._putters.popleft()
            self._accept(item)
            event.succeed()


def _drive_fifo(fifo_cls, seed):
    """Random blocking/non-blocking traffic through one FIFO."""
    rng = random.Random(seed)
    env = Environment()
    fifo = fifo_cls(env, capacity=rng.randint(1, 3), name="f")
    log = []

    def producer(n):
        for index in range(n):
            if rng.random() < 0.3:
                accepted = fifo.try_put(("t", index))
                log.append((env.now, "try_put", accepted))
                if not accepted:
                    # Fall back to blocking so exactly n items flow
                    # (the consumer counts on all of them arriving).
                    yield fifo.put(("t", index))
                    log.append((env.now, "put_retry", index))
            else:
                yield fifo.put(("b", index))
                log.append((env.now, "put", index))
            if rng.random() < 0.4:
                yield env.timeout(rng.randint(0, 2))

    def consumer(n):
        taken = 0
        while taken < n:
            if rng.random() < 0.3:
                item = fifo.try_get()
                log.append((env.now, "try_get", item))
                if item is None:
                    yield env.timeout(1)
                    continue
            else:
                item = yield fifo.get()
                log.append((env.now, "get", item))
            taken += 1

    n_items = rng.randint(4, 12)
    env.process(producer(n_items), name="prod")
    env.process(consumer(n_items), name="cons")
    env.run()
    return log, (fifo.total_puts, fifo.total_gets, list(fifo.items))


@pytest.mark.parametrize("seed", range(25))
def test_fifo_fast_path_matches_reference(seed):
    """Inlined put/get fast paths == seed Fifo, op for op.

    Covers the waiter/no-waiter boundary on both sides: puts into a
    full queue behind queued putters, gets racing try_gets, and drain
    cascades when space frees.
    """
    opt = _drive_fifo(Fifo, seed)
    ref = _drive_fifo(ReferenceFifo, seed)
    assert opt == ref


@pytest.mark.parametrize("seed", range(10))
def test_resource_grant_order_is_fifo(seed):
    """Grants follow request order exactly, regardless of hold times."""
    rng = random.Random(seed)
    env = Environment()
    resource = Resource(env, slots=rng.randint(1, 2), name="r")
    requests = []
    grants = []

    def holder(hid):
        yield env.timeout(rng.randint(0, 3))
        requests.append(hid)
        yield resource.acquire()
        grants.append(hid)
        yield env.timeout(rng.randint(0, 3))
        resource.release()

    n_holders = rng.randint(3, 8)
    for hid in range(n_holders):
        env.process(holder(hid), name=f"h{hid}")
    env.run()
    assert grants == requests
    assert resource.total_acquisitions == n_holders
    assert resource.in_use == 0


# ---------------------------------------------------------------------------
# Route caches vs the uncached walk
# ---------------------------------------------------------------------------

def _uncached_xy_route(src, dst):
    """The original (pre-cache) XY walk, verbatim."""
    path = [src]
    x, y = src
    dst_x, dst_y = dst
    step_x = 1 if dst_x > x else -1
    while x != dst_x:
        x += step_x
        path.append((x, y))
    step_y = 1 if dst_y > y else -1
    while y != dst_y:
        y += step_y
        path.append((x, y))
    return path


@pytest.mark.parametrize("seed", range(5))
def test_cached_routes_match_uncached_walk(seed):
    """Memoized routes == fresh walks for random pairs, repeated.

    Re-queries each pair to make sure a cache *hit* returns the same
    route as the miss that populated it (determinism is what makes the
    cache sound).
    """
    rng = random.Random(seed)
    pairs = [((rng.randrange(8), rng.randrange(8)),
              (rng.randrange(8), rng.randrange(8)))
             for _ in range(50)]
    for _ in range(2):   # second pass: all hits
        for src, dst in pairs:
            expected = _uncached_xy_route(src, dst)
            assert xy_route(src, dst) == expected
            assert route_hops(src, dst) == list(
                zip(expected[:-1], expected[1:]))
            assert hop_count(src, dst) == len(expected) - 1


def test_route_results_are_fresh_lists():
    """Callers may mutate returned routes without corrupting the cache."""
    route = xy_route((0, 0), (3, 2))
    route.append(("poison", "poison"))
    assert xy_route((0, 0), (3, 2))[-1] == (3, 2)
    hops = route_hops((0, 0), (3, 2))
    hops.clear()
    assert route_hops((0, 0), (3, 2)) != []


# ---------------------------------------------------------------------------
# Fixed-point fast path vs the divide/clip reference
# ---------------------------------------------------------------------------

def _reference_to_raw(fmt, values):
    """The seed quantizer: divide, floor, clip — no in-place tricks."""
    values = np.asarray(values, dtype=np.float64)
    scaled = values / fmt.scale
    if fmt.rounding == "nearest":
        raw = np.floor(scaled + 0.5)
    else:
        raw = np.floor(scaled)
    raw = raw.astype(np.int64)
    if fmt.overflow == "saturate":
        return np.clip(raw, fmt.raw_min, fmt.raw_max)
    span = 1 << fmt.width
    return np.mod(raw - fmt.raw_min, span) + fmt.raw_min


@pytest.mark.parametrize("seed", range(10))
def test_to_raw_matches_reference_on_random_formats(seed):
    """Multiply-by-reciprocal + in-place clamp == divide + clip.

    Random formats across every rounding/overflow combination, random
    values spanning in-range, boundary and far-out-of-range — the raw
    codes must agree bit for bit (the reciprocal of a power of two is
    exact, so only the float exponent differs mid-computation).
    """
    rng = np.random.default_rng(seed)
    width = int(rng.integers(2, 33))
    signed = bool(rng.integers(0, 2))
    integer_bits = int(rng.integers(1 if signed else 0, width + 1))
    fmt = FixedFormat(
        width=width, integer_bits=integer_bits, signed=signed,
        rounding=["truncate", "nearest"][int(rng.integers(0, 2))],
        overflow=["saturate", "wrap"][int(rng.integers(0, 2))])
    span = max(abs(fmt.min_value), abs(fmt.max_value), fmt.scale)
    values = np.concatenate([
        rng.uniform(-2 * span, 2 * span, 64),       # straddles the range
        rng.uniform(-span / 4, span / 4, 64),       # well inside
        np.array([0.0, fmt.min_value, fmt.max_value,
                  fmt.max_value + fmt.scale, fmt.min_value - fmt.scale]),
    ])
    np.testing.assert_array_equal(
        fmt.to_raw(values), _reference_to_raw(fmt, values))
    # The scalar (0-d) path takes a separate branch; check it too.
    for value in values[:8]:
        assert fmt.to_raw(value) == _reference_to_raw(fmt, value)


def test_quantize_is_idempotent():
    """quantize(quantize(x)) == quantize(x) — the invariant behind the
    layer-parameter cache in ``repro.hls4ml_flow.hls_model``."""
    rng = np.random.default_rng(7)
    for fmt in (FixedFormat(16, 6), FixedFormat(8, 8, signed=False),
                FixedFormat(12, 4, rounding="nearest"),
                FixedFormat(10, 3, overflow="wrap")):
        values = rng.uniform(-100, 100, 256)
        once = fmt.quantize(values)
        np.testing.assert_array_equal(fmt.quantize(once), once)


def test_ufixed64_falls_back_to_generic_path():
    """ap_ufixed<64> raw_max exceeds int64; the generic branch handles
    it the same way the seed did."""
    fmt = FixedFormat(width=64, integer_bits=64, signed=False)
    values = np.array([0.0, 1.0, 2.0 ** 62, -5.0])
    np.testing.assert_array_equal(
        fmt.to_raw(values), _reference_to_raw(fmt, values))
