"""Tests for FIFO channels, resources, semaphores and barriers."""

import pytest

from repro.sim import Barrier, Environment, Fifo, Resource, Semaphore, SimulationError


def run(env):
    env.run()


class TestFifo:
    def test_put_then_get(self):
        env = Environment()
        fifo = Fifo(env, capacity=4)
        got = []

        def producer(env):
            for i in range(3):
                yield fifo.put(i)

        def consumer(env):
            for _ in range(3):
                item = yield fifo.get()
                got.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        run(env)
        assert got == [0, 1, 2]

    def test_get_blocks_until_put(self):
        env = Environment()
        fifo = Fifo(env)
        got = []

        def consumer(env):
            item = yield fifo.get()
            got.append((env.now, item))

        def producer(env):
            yield env.timeout(10)
            yield fifo.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        run(env)
        assert got == [(10, "late")]

    def test_put_blocks_when_full(self):
        env = Environment()
        fifo = Fifo(env, capacity=1)
        times = []

        def producer(env):
            yield fifo.put("a")
            times.append(env.now)
            yield fifo.put("b")  # blocks until consumer frees a slot
            times.append(env.now)

        def consumer(env):
            yield env.timeout(5)
            yield fifo.get()

        env.process(producer(env))
        env.process(consumer(env))
        run(env)
        assert times == [0, 5]

    def test_fifo_ordering_preserved_under_backpressure(self):
        env = Environment()
        fifo = Fifo(env, capacity=2)
        got = []

        def producer(env):
            for i in range(10):
                yield fifo.put(i)

        def consumer(env):
            for _ in range(10):
                yield env.timeout(1)
                got.append((yield fifo.get()))

        env.process(producer(env))
        env.process(consumer(env))
        run(env)
        assert got == list(range(10))

    def test_try_put_try_get(self):
        env = Environment()
        fifo = Fifo(env, capacity=1)
        assert fifo.try_get() is None
        assert fifo.try_put("x") is True
        assert fifo.try_put("y") is False
        assert fifo.try_get() == "x"

    def test_counters(self):
        env = Environment()
        fifo = Fifo(env)

        def proc(env):
            yield fifo.put(1)
            yield fifo.put(2)
            yield fifo.get()

        env.process(proc(env))
        run(env)
        assert fifo.total_puts == 2
        assert fifo.total_gets == 1
        assert len(fifo) == 1

    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Fifo(env, capacity=0)


class TestResource:
    def test_exclusive_access_serializes(self):
        env = Environment()
        res = Resource(env, slots=1)
        spans = []

        def worker(env, tag):
            yield res.acquire()
            start = env.now
            yield env.timeout(10)
            res.release()
            spans.append((tag, start, env.now))

        for tag in ("a", "b"):
            env.process(worker(env, tag))
        run(env)
        assert spans == [("a", 0, 10), ("b", 10, 20)]

    def test_multiple_slots_allow_overlap(self):
        env = Environment()
        res = Resource(env, slots=2)
        ends = []

        def worker(env):
            yield res.acquire()
            yield env.timeout(10)
            res.release()
            ends.append(env.now)

        for _ in range(2):
            env.process(worker(env))
        run(env)
        assert ends == [10, 10]

    def test_release_idle_is_an_error(self):
        env = Environment()
        res = Resource(env)
        with pytest.raises(SimulationError):
            res.release()

    def test_utilization_tracks_busy_time(self):
        env = Environment()
        res = Resource(env)

        def worker(env):
            yield env.timeout(5)
            yield res.acquire()
            yield env.timeout(10)
            res.release()
            yield env.timeout(5)

        env.process(worker(env))
        run(env)
        assert env.now == 20
        assert res.utilization() == pytest.approx(0.5)

    def test_utilization_clamped_to_window(self):
        # Busy time accumulates over the resource's lifetime; a caller
        # asking about a shorter trailing window must get at most 1.0,
        # never busy/window > 1.
        env = Environment()
        res = Resource(env)

        def worker(env):
            yield res.acquire()
            yield env.timeout(100)
            res.release()

        env.process(worker(env))
        run(env)
        assert res.utilization() == pytest.approx(1.0)
        assert res.utilization(elapsed=10) == 1.0
        assert res.utilization(elapsed=200) == pytest.approx(0.5)
        assert res.utilization(elapsed=0) == 0.0

    def test_utilization_clamps_while_held(self):
        env = Environment()
        res = Resource(env)

        def worker(env):
            yield res.acquire()
            yield env.timeout(50)

        env.process(worker(env))
        run(env)
        # Still held at t=50: in-flight busy time counts, and a short
        # window still caps at 1.0.
        assert res.utilization() == pytest.approx(1.0)
        assert res.utilization(elapsed=5) == 1.0

    def test_waiters_fifo(self):
        env = Environment()
        res = Resource(env)
        order = []

        def worker(env, tag):
            yield res.acquire()
            yield env.timeout(1)
            res.release()
            order.append(tag)

        for tag in range(5):
            env.process(worker(env, tag))
        run(env)
        assert order == [0, 1, 2, 3, 4]


class TestSemaphore:
    def test_wait_after_post_does_not_block(self):
        env = Environment()
        sem = Semaphore(env, value=1)
        times = []

        def proc(env):
            yield sem.wait()
            times.append(env.now)

        env.process(proc(env))
        run(env)
        assert times == [0]

    def test_wait_blocks_until_post(self):
        env = Environment()
        sem = Semaphore(env)
        times = []

        def waiter(env):
            yield sem.wait()
            times.append(env.now)

        def poster(env):
            yield env.timeout(8)
            sem.post()

        env.process(waiter(env))
        env.process(poster(env))
        run(env)
        assert times == [8]

    def test_post_count(self):
        env = Environment()
        sem = Semaphore(env)
        woken = []

        def waiter(env, tag):
            yield sem.wait()
            woken.append(tag)

        for tag in range(3):
            env.process(waiter(env, tag))

        def poster(env):
            yield env.timeout(1)
            sem.post(count=3)

        env.process(poster(env))
        run(env)
        assert woken == [0, 1, 2]


class TestBarrier:
    def test_barrier_releases_all_at_last_arrival(self):
        env = Environment()
        barrier = Barrier(env, parties=3)
        times = []

        def proc(env, delay):
            yield env.timeout(delay)
            yield barrier.wait()
            times.append(env.now)

        for delay in (1, 5, 9):
            env.process(proc(env, delay))
        run(env)
        assert times == [9, 9, 9]

    def test_barrier_is_reusable(self):
        env = Environment()
        barrier = Barrier(env, parties=2)
        times = []

        def proc(env, delays):
            for delay in delays:
                yield env.timeout(delay)
                yield barrier.wait()
                times.append(env.now)

        env.process(proc(env, [1, 1]))
        env.process(proc(env, [3, 4]))
        run(env)
        assert times == [3, 3, 7, 7]


class TestIntrospection:
    """waiters()/cancel()/flush(): the probes the deadlock detector and
    the recovery watchdogs are built on."""

    def test_fifo_waiters_reports_blocked_endpoints(self):
        env = Environment()
        fifo = Fifo(env, capacity=1, name="narrow")

        def putter(env):
            yield fifo.put("a")
            yield fifo.put("b")   # blocks: queue is full

        env.process(putter(env))
        run(env)
        waiters = fifo.waiters()
        assert len(waiters["putters"]) == 1
        assert waiters["getters"] == ()
        assert "narrow" in waiters["putters"][0].wait_reason

        drained = Fifo(env, name="drained")

        def getter(env):
            yield drained.get()   # blocks: queue is empty

        env.process(getter(env))
        run(env)
        waiters = drained.waiters()
        assert waiters["putters"] == ()
        assert len(waiters["getters"]) == 1
        assert "drained" in waiters["getters"][0].wait_reason

    def test_fifo_cancel_withdraws_a_pending_get(self):
        env = Environment()
        fifo = Fifo(env)
        event = fifo.get()
        assert fifo.cancel(event) is True
        assert fifo.waiters()["getters"] == ()
        # A second cancel (or cancelling a serviced event) is a no-op.
        assert fifo.cancel(event) is False
        fifo.put("x")
        satisfied = fifo.get()
        assert fifo.cancel(satisfied) is False

    def test_fifo_flush_drops_items_and_putters_keeps_getters(self):
        env = Environment()
        fifo = Fifo(env, capacity=2)

        def putter(env):
            for item in range(4):
                yield fifo.put(item)

        env.process(putter(env))
        run(env)
        assert len(fifo.items) == 2
        assert len(fifo.waiters()["putters"]) == 1   # item 2 pending

        assert fifo.flush() == 3   # 2 queued items + 1 blocked putter
        assert fifo.is_empty
        assert fifo.waiters()["putters"] == ()

        pending_get = fifo.get()
        assert fifo.flush() == 0
        assert fifo.waiters()["getters"] == (pending_get,)

    def test_flush_can_preserve_putters(self):
        env = Environment()
        fifo = Fifo(env, capacity=1)
        fifo.try_put("stale")
        blocked = fifo.put("fresh")
        assert fifo.flush(drop_putters=False) == 1
        # The surviving putter is drained into the freed capacity.
        fifo._drain_putters()
        assert blocked.triggered
        assert fifo.try_get() == "fresh"

    def test_resource_waiters_and_cancel(self):
        env = Environment()
        gate = Resource(env, slots=1, name="gate")
        gate.acquire()             # granted immediately
        queued = gate.acquire()    # waits
        assert gate.waiters() == (queued,)
        assert "gate" in queued.wait_reason
        assert gate.cancel(queued) is True
        assert gate.waiters() == ()
        assert gate.cancel(queued) is False
