"""Tests for the ProgressCounter synchronization primitive."""

import pytest

from repro.sim import Counter, Environment, ProgressCounter


class TestProgressCounter:
    def test_wait_already_satisfied(self):
        env = Environment()
        counter = ProgressCounter(env, value=5)
        seen = []

        def proc(env):
            value = yield counter.wait_until(3)
            seen.append((env.now, value))

        env.process(proc(env))
        env.run()
        assert seen == [(0, 5)]

    def test_wait_blocks_until_threshold(self):
        env = Environment()
        counter = ProgressCounter(env)
        seen = []

        def waiter(env):
            yield counter.wait_until(3)
            seen.append(env.now)

        def poster(env):
            for _ in range(3):
                yield env.timeout(10)
                counter.increment()

        env.process(waiter(env))
        env.process(poster(env))
        env.run()
        assert seen == [30]

    def test_increment_by_multiple(self):
        env = Environment()
        counter = ProgressCounter(env)
        seen = []

        def waiter(env):
            yield counter.wait_until(5)
            seen.append(env.now)

        def poster(env):
            yield env.timeout(7)
            counter.increment(by=5)

        env.process(waiter(env))
        env.process(poster(env))
        env.run()
        assert seen == [7]
        assert counter.value == 5

    def test_multiple_waiters_different_thresholds(self):
        env = Environment()
        counter = ProgressCounter(env)
        order = []

        def waiter(env, threshold):
            yield counter.wait_until(threshold)
            order.append(threshold)

        for threshold in (3, 1, 2):
            env.process(waiter(env, threshold))

        def poster(env):
            for _ in range(3):
                yield env.timeout(1)
                counter.increment()

        env.process(poster(env))
        env.run()
        assert sorted(order) == [1, 2, 3]
        assert order[-1] == 3   # the highest threshold wakes last

    def test_invalid_increment(self):
        env = Environment()
        counter = ProgressCounter(env)
        with pytest.raises(ValueError):
            counter.increment(by=0)


def test_deprecated_counter_alias():
    """The pre-rename name still resolves to the same class."""
    from repro.sim.channels import Counter as ChannelCounter

    assert Counter is ProgressCounter
    assert ChannelCounter is ProgressCounter
