"""Tests for the experiment-harness utilities."""

import pytest

from repro.eval import Measurement, format_table, measure, relative_error


class TestFormatTable:
    def test_aligns_columns(self):
        text = format_table([["a", "1"], ["bbbb", "22"]],
                            headers=["name", "value"])
        lines = text.splitlines()
        assert len(lines) == 4                     # header + rule + 2 rows
        assert len({len(l) for l in lines}) == 1   # constant width

    def test_empty_rows(self):
        text = format_table([], headers=["col"])
        assert "col" in text

    def test_numbers_coerced(self):
        text = format_table([[1, 2.5]], headers=["a", "b"])
        assert "2.5" in text


class TestRelativeError:
    def test_signed(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(90, 100) == pytest.approx(-0.1)

    def test_zero_reference(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)


class TestMeasurement:
    def test_frames_per_joule(self):
        m = Measurement(app="x", mode="p2p", frames=10, fps=1000.0,
                        watts=2.0, dram_accesses=0, ioctl_calls=1,
                        cycles=100)
        assert m.frames_per_joule == 500.0

    def test_measure_populates_everything(self):
        m = measure("1nv_1cl", "p2p", n_frames=4)
        assert m.frames == 4
        assert m.fps > 0
        assert m.watts > 0
        assert m.cycles > 0
        assert m.dram_accesses > 0
        assert m.ioctl_calls == 2

    def test_invalid_mode_propagates(self):
        with pytest.raises(ValueError):
            measure("1nv_1cl", "warp", n_frames=4)
