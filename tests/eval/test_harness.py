"""Tests for the experiment-harness utilities."""

import pytest

from repro.eval import Measurement, format_table, measure, relative_error


class TestFormatTable:
    def test_aligns_columns(self):
        text = format_table([["a", "1"], ["bbbb", "22"]],
                            headers=["name", "value"])
        lines = text.splitlines()
        assert len(lines) == 4                     # header + rule + 2 rows
        assert len({len(l) for l in lines}) == 1   # constant width

    def test_empty_rows(self):
        text = format_table([], headers=["col"])
        assert "col" in text

    def test_numbers_coerced(self):
        text = format_table([[1, 2.5]], headers=["a", "b"])
        assert "2.5" in text


class TestRelativeError:
    def test_signed(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(90, 100) == pytest.approx(-0.1)

    def test_zero_reference(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)


class TestMeasurement:
    def test_frames_per_joule(self):
        m = Measurement(app="x", mode="p2p", frames=10, fps=1000.0,
                        watts=2.0, dram_accesses=0, ioctl_calls=1,
                        cycles=100)
        assert m.frames_per_joule == 500.0

    def test_measure_populates_everything(self):
        m = measure("1nv_1cl", "p2p", n_frames=4)
        assert m.frames == 4
        assert m.fps > 0
        assert m.watts > 0
        assert m.cycles > 0
        assert m.dram_accesses > 0
        assert m.ioctl_calls == 2

    def test_invalid_mode_propagates(self):
        with pytest.raises(ValueError):
            measure("1nv_1cl", "warp", n_frames=4)


class TestFromHistogram:
    """LatencySummary.from_histogram vs the exact-sample summary."""

    def hist_of(self, sample):
        from repro.metrics import MetricsRegistry
        from repro.sim import Environment

        series = MetricsRegistry(Environment()).histogram(
            "h_cycles").labels()
        for value in sample:
            series.observe(value)
        return series

    def test_exact_fields_match_raw_sample(self):
        from repro.eval.harness import LatencySummary, \
            summarize_latencies
        import numpy as np

        sample = [int(v) for v in
                  np.random.default_rng(7).lognormal(8, 1.5, 500)]
        exact = summarize_latencies(sample)
        estimated = LatencySummary.from_histogram(self.hist_of(sample))
        assert estimated.count == exact.count
        assert estimated.mean == pytest.approx(exact.mean)
        assert estimated.max == exact.max

    def test_percentiles_within_documented_bound(self):
        """Each estimate lands inside the true percentile's bucket —
        within a factor of 2 for the power-of-two default bounds."""
        from repro.eval.harness import LatencySummary, \
            summarize_latencies
        import numpy as np

        sample = [int(v) for v in
                  np.random.default_rng(7).lognormal(8, 1.5, 500)]
        exact = summarize_latencies(sample)
        estimated = LatencySummary.from_histogram(self.hist_of(sample))
        for name in ("p50", "p95", "p99"):
            true = getattr(exact, name)
            est = getattr(estimated, name)
            assert true / 2 <= est <= true * 2, (name, true, est)

    def test_single_observation(self):
        from repro.eval.harness import LatencySummary

        summary = LatencySummary.from_histogram(self.hist_of([100]))
        assert summary.count == 1
        assert summary.mean == summary.max == 100
        # Interpolated percentiles never exceed the observed max.
        assert summary.p50 <= 100 and summary.p99 <= 100

    def test_overflow_bucket_clamps_to_max(self):
        from repro.eval.harness import LatencySummary
        from repro.metrics import CYCLE_BUCKETS

        huge = CYCLE_BUCKETS[-1] * 5
        summary = LatencySummary.from_histogram(
            self.hist_of([huge] * 10))
        assert summary.p99 == summary.max == huge

    def test_empty_histogram_raises(self):
        from repro.eval.harness import LatencySummary

        with pytest.raises(ValueError):
            LatencySummary.from_histogram(self.hist_of([]))
