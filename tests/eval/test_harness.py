"""Tests for the experiment-harness utilities."""

import pytest

from repro.eval import Measurement, format_table, measure, relative_error


class TestFormatTable:
    def test_aligns_columns(self):
        text = format_table([["a", "1"], ["bbbb", "22"]],
                            headers=["name", "value"])
        lines = text.splitlines()
        assert len(lines) == 4                     # header + rule + 2 rows
        assert len({len(l) for l in lines}) == 1   # constant width

    def test_empty_rows(self):
        text = format_table([], headers=["col"])
        assert "col" in text

    def test_numbers_coerced(self):
        text = format_table([[1, 2.5]], headers=["a", "b"])
        assert "2.5" in text


class TestRelativeError:
    def test_signed(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(90, 100) == pytest.approx(-0.1)

    def test_zero_reference(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)


class TestMeasurement:
    def test_frames_per_joule(self):
        m = Measurement(app="x", mode="p2p", frames=10, fps=1000.0,
                        watts=2.0, dram_accesses=0, ioctl_calls=1,
                        cycles=100)
        assert m.frames_per_joule == 500.0

    def test_measure_populates_everything(self):
        m = measure("1nv_1cl", "p2p", n_frames=4)
        assert m.frames == 4
        assert m.fps > 0
        assert m.watts > 0
        assert m.cycles > 0
        assert m.dram_accesses > 0
        assert m.ioctl_calls == 2

    def test_invalid_mode_propagates(self):
        with pytest.raises(ValueError):
            measure("1nv_1cl", "warp", n_frames=4)


class TestFromHistogram:
    """LatencySummary.from_histogram vs the exact-sample summary."""

    def hist_of(self, sample):
        from repro.metrics import MetricsRegistry
        from repro.sim import Environment

        series = MetricsRegistry(Environment()).histogram(
            "h_cycles").labels()
        for value in sample:
            series.observe(value)
        return series

    def test_exact_fields_match_raw_sample(self):
        from repro.eval.harness import LatencySummary, \
            summarize_latencies
        import numpy as np

        sample = [int(v) for v in
                  np.random.default_rng(7).lognormal(8, 1.5, 500)]
        exact = summarize_latencies(sample)
        estimated = LatencySummary.from_histogram(self.hist_of(sample))
        assert estimated.count == exact.count
        assert estimated.mean == pytest.approx(exact.mean)
        assert estimated.max == exact.max

    def test_percentiles_within_documented_bound(self):
        """Each estimate lands inside the true percentile's bucket —
        within a factor of 2 for the power-of-two default bounds."""
        from repro.eval.harness import LatencySummary, \
            summarize_latencies
        import numpy as np

        sample = [int(v) for v in
                  np.random.default_rng(7).lognormal(8, 1.5, 500)]
        exact = summarize_latencies(sample)
        estimated = LatencySummary.from_histogram(self.hist_of(sample))
        for name in ("p50", "p95", "p99"):
            true = getattr(exact, name)
            est = getattr(estimated, name)
            assert true / 2 <= est <= true * 2, (name, true, est)

    def test_single_observation(self):
        from repro.eval.harness import LatencySummary

        summary = LatencySummary.from_histogram(self.hist_of([100]))
        assert summary.count == 1
        assert summary.mean == summary.max == 100
        # Interpolated percentiles never exceed the observed max.
        assert summary.p50 <= 100 and summary.p99 <= 100

    def test_overflow_bucket_clamps_to_max(self):
        from repro.eval.harness import LatencySummary
        from repro.metrics import CYCLE_BUCKETS

        huge = CYCLE_BUCKETS[-1] * 5
        summary = LatencySummary.from_histogram(
            self.hist_of([huge] * 10))
        assert summary.p99 == summary.max == huge

    def test_empty_histogram_raises(self):
        from repro.eval.harness import LatencySummary

        with pytest.raises(ValueError):
            LatencySummary.from_histogram(self.hist_of([]))

    def test_exact_boundary_rank_tracks_percentile(self):
        """A rank landing exactly on a cumulative-count boundary.

        Ten observations in (256, 512], ten in (512, 1024]: p50's
        position is 9.5, straddling the last observation of the first
        bucket and the first of the second. The old ``q / 100 *
        count`` rank collapsed this to the first bucket's upper edge
        (512) regardless of where the true percentile sat; the
        percentile()-convention estimator interpolates across the
        boundary like numpy does on the raw sample.
        """
        from repro.eval.harness import LatencySummary, percentile

        sample = [300 + 20 * k for k in range(10)] \
            + [600 + 40 * k for k in range(10)]
        summary = LatencySummary.from_histogram(self.hist_of(sample))
        true_p50 = percentile(sample, 50)   # 540: above the boundary
        assert true_p50 > 512
        assert summary.p50 > 512            # old estimator returned 512
        # Within the wider neighbouring bucket's width (here 512).
        assert abs(summary.p50 - true_p50) <= 512

    def test_boundary_across_empty_buckets_is_bounded(self):
        """Adversarial layout: the boundary straddles a run of empty
        buckets. Each interpolation endpoint must stay inside its own
        order statistic's bucket, so even with 15 empty buckets
        between the halves the error stays within the wider
        neighbouring bucket's width — the old estimator returned the
        lower bucket's edge (1) for a true p50 of ~25000."""
        from repro.eval.harness import LatencySummary, percentile

        # Ten in (0.5, 1], ten in (32768, 65536]; p50 position 9.5
        # straddles the gap, p95 position 18.05 sits in the top bucket.
        sample = [1] * 10 + [50_000] * 10
        summary = LatencySummary.from_histogram(self.hist_of(sample))
        true_p50 = percentile(sample, 50)
        assert summary.p50 > 1              # old estimator returned 1.0
        assert abs(summary.p50 - true_p50) <= 65_536 - 32_768
        # p95: both endpoints in the top bucket, clamped at the max.
        assert summary.p95 == percentile(sample, 95) == 50_000

    def test_single_populated_bucket(self):
        """All mass in one bucket: every percentile estimate must stay
        inside that bucket and order monotonically with q."""
        from repro.eval.harness import LatencySummary

        sample = [300] * 25    # all in (256, 512]
        summary = LatencySummary.from_histogram(self.hist_of(sample))
        for value in (summary.p50, summary.p95, summary.p99):
            assert 256 < value <= 300   # clamped at the observed max
        assert summary.p50 <= summary.p95 <= summary.p99
        assert summary.max == 300

    def test_estimates_monotone_in_q(self):
        """q1 <= q2 implies estimate(q1) <= estimate(q2), including at
        boundary ranks (non-monotone estimates would let a p95 exceed
        a p99 in dashboards)."""
        from repro.eval.harness import LatencySummary
        import numpy as np

        rng = np.random.default_rng(11)
        for _ in range(20):
            sample = [int(v) for v in rng.lognormal(6, 2, 40)]
            summary = LatencySummary.from_histogram(
                self.hist_of(sample))
            assert summary.p50 <= summary.p95 <= summary.p99 \
                <= summary.max


class TestMerge:
    """LatencySummary.merge vs pooled-sample percentile()."""

    def hist_of(self, sample):
        from repro.metrics import MetricsRegistry
        from repro.sim import Environment

        series = MetricsRegistry(Environment()).histogram(
            "h_cycles").labels()
        for value in sample:
            series.observe(value)
        return series

    def parts_of(self, seed=3, sizes=(400, 250, 150)):
        import numpy as np

        rng = np.random.default_rng(seed)
        return [[int(v) for v in rng.lognormal(8, 1.5, size)]
                for size in sizes]

    def test_raw_parts_merge_exactly(self):
        """All-raw merge is exact: identical to percentile() of the
        pooled sample — per-instance percentiles are never combined."""
        from repro.eval.harness import LatencySummary, percentile

        parts = self.parts_of()
        pooled = [v for part in parts for v in part]
        merged = LatencySummary.merge(parts)
        assert merged.count == len(pooled)
        assert merged.p50 == percentile(pooled, 50)
        assert merged.p95 == percentile(pooled, 95)
        assert merged.p99 == percentile(pooled, 99)
        assert merged.max == max(pooled)

    def test_merge_is_not_percentile_of_percentiles(self):
        """The case merge exists for: skewed instances where pooling
        and averaging per-part p99s disagree."""
        from repro.eval.harness import LatencySummary, \
            summarize_latencies

        fast = list(range(100, 200))
        slow = list(range(10_000, 10_020))
        merged = LatencySummary.merge([fast, slow])
        mean_of_p99s = (summarize_latencies(fast).p99
                        + summarize_latencies(slow).p99) / 2
        assert merged.p99 != mean_of_p99s

    def test_histogram_parts_within_documented_bound(self):
        from repro.eval.harness import LatencySummary, percentile

        parts = self.parts_of()
        pooled = [v for part in parts for v in part]
        merged = LatencySummary.merge(
            [self.hist_of(part) for part in parts])
        # count / mean / max carry no bucketing error.
        assert merged.count == len(pooled)
        assert merged.mean == pytest.approx(
            sum(pooled) / len(pooled))
        assert merged.max == max(pooled)
        for q, name in ((50, "p50"), (95, "p95"), (99, "p99")):
            true = percentile(pooled, q)
            est = getattr(merged, name)
            assert true / 2 <= est <= true * 2, (name, true, est)

    def test_mixed_raw_and_histogram(self):
        """Raw parts are bucketed into the shared layout; totals stay
        exact."""
        from repro.eval.harness import LatencySummary

        raw, bucketed = self.parts_of(sizes=(300, 300))
        merged = LatencySummary.merge([raw, self.hist_of(bucketed)])
        assert merged.count == 600
        assert merged.max == max(max(raw), max(bucketed))

    def test_mismatched_bucket_layouts_raise(self):
        from repro.eval.harness import LatencySummary
        from repro.metrics import MetricsRegistry
        from repro.sim import Environment

        default = self.hist_of([100])
        custom = MetricsRegistry(Environment()).histogram(
            "h_cycles", buckets=(10, 100, 1000)).labels()
        custom.observe(50)
        with pytest.raises(ValueError):
            LatencySummary.merge([default, custom])

    def test_no_parts_raise(self):
        from repro.eval.harness import LatencySummary

        with pytest.raises(ValueError):
            LatencySummary.merge([])
        with pytest.raises(ValueError):
            LatencySummary.merge([[], []])
