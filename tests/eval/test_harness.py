"""Tests for the experiment-harness utilities."""

import pytest

from repro.eval import Measurement, format_table, measure, relative_error


class TestFormatTable:
    def test_aligns_columns(self):
        text = format_table([["a", "1"], ["bbbb", "22"]],
                            headers=["name", "value"])
        lines = text.splitlines()
        assert len(lines) == 4                     # header + rule + 2 rows
        assert len({len(l) for l in lines}) == 1   # constant width

    def test_empty_rows(self):
        text = format_table([], headers=["col"])
        assert "col" in text

    def test_numbers_coerced(self):
        text = format_table([[1, 2.5]], headers=["a", "b"])
        assert "2.5" in text


class TestRelativeError:
    def test_signed(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(90, 100) == pytest.approx(-0.1)

    def test_zero_reference(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)


class TestMeasurement:
    def test_frames_per_joule(self):
        m = Measurement(app="x", mode="p2p", frames=10, fps=1000.0,
                        watts=2.0, dram_accesses=0, ioctl_calls=1,
                        cycles=100)
        assert m.frames_per_joule == 500.0

    def test_measure_populates_everything(self):
        m = measure("1nv_1cl", "p2p", n_frames=4)
        assert m.frames == 4
        assert m.fps > 0
        assert m.watts > 0
        assert m.cycles > 0
        assert m.dram_accesses > 0
        assert m.ioctl_calls == 2

    def test_invalid_mode_propagates(self):
        with pytest.raises(ValueError):
            measure("1nv_1cl", "warp", n_frames=4)


class TestFromHistogram:
    """LatencySummary.from_histogram vs the exact-sample summary."""

    def hist_of(self, sample):
        from repro.metrics import MetricsRegistry
        from repro.sim import Environment

        series = MetricsRegistry(Environment()).histogram(
            "h_cycles").labels()
        for value in sample:
            series.observe(value)
        return series

    def test_exact_fields_match_raw_sample(self):
        from repro.eval.harness import LatencySummary, \
            summarize_latencies
        import numpy as np

        sample = [int(v) for v in
                  np.random.default_rng(7).lognormal(8, 1.5, 500)]
        exact = summarize_latencies(sample)
        estimated = LatencySummary.from_histogram(self.hist_of(sample))
        assert estimated.count == exact.count
        assert estimated.mean == pytest.approx(exact.mean)
        assert estimated.max == exact.max

    def test_percentiles_within_documented_bound(self):
        """Each estimate lands inside the true percentile's bucket —
        within a factor of 2 for the power-of-two default bounds."""
        from repro.eval.harness import LatencySummary, \
            summarize_latencies
        import numpy as np

        sample = [int(v) for v in
                  np.random.default_rng(7).lognormal(8, 1.5, 500)]
        exact = summarize_latencies(sample)
        estimated = LatencySummary.from_histogram(self.hist_of(sample))
        for name in ("p50", "p95", "p99"):
            true = getattr(exact, name)
            est = getattr(estimated, name)
            assert true / 2 <= est <= true * 2, (name, true, est)

    def test_single_observation(self):
        from repro.eval.harness import LatencySummary

        summary = LatencySummary.from_histogram(self.hist_of([100]))
        assert summary.count == 1
        assert summary.mean == summary.max == 100
        # Interpolated percentiles never exceed the observed max.
        assert summary.p50 <= 100 and summary.p99 <= 100

    def test_overflow_bucket_clamps_to_max(self):
        from repro.eval.harness import LatencySummary
        from repro.metrics import CYCLE_BUCKETS

        huge = CYCLE_BUCKETS[-1] * 5
        summary = LatencySummary.from_histogram(
            self.hist_of([huge] * 10))
        assert summary.p99 == summary.max == huge

    def test_empty_histogram_raises(self):
        from repro.eval.harness import LatencySummary

        with pytest.raises(ValueError):
            LatencySummary.from_histogram(self.hist_of([]))


class TestMerge:
    """LatencySummary.merge vs pooled-sample percentile()."""

    def hist_of(self, sample):
        from repro.metrics import MetricsRegistry
        from repro.sim import Environment

        series = MetricsRegistry(Environment()).histogram(
            "h_cycles").labels()
        for value in sample:
            series.observe(value)
        return series

    def parts_of(self, seed=3, sizes=(400, 250, 150)):
        import numpy as np

        rng = np.random.default_rng(seed)
        return [[int(v) for v in rng.lognormal(8, 1.5, size)]
                for size in sizes]

    def test_raw_parts_merge_exactly(self):
        """All-raw merge is exact: identical to percentile() of the
        pooled sample — per-instance percentiles are never combined."""
        from repro.eval.harness import LatencySummary, percentile

        parts = self.parts_of()
        pooled = [v for part in parts for v in part]
        merged = LatencySummary.merge(parts)
        assert merged.count == len(pooled)
        assert merged.p50 == percentile(pooled, 50)
        assert merged.p95 == percentile(pooled, 95)
        assert merged.p99 == percentile(pooled, 99)
        assert merged.max == max(pooled)

    def test_merge_is_not_percentile_of_percentiles(self):
        """The case merge exists for: skewed instances where pooling
        and averaging per-part p99s disagree."""
        from repro.eval.harness import LatencySummary, \
            summarize_latencies

        fast = list(range(100, 200))
        slow = list(range(10_000, 10_020))
        merged = LatencySummary.merge([fast, slow])
        mean_of_p99s = (summarize_latencies(fast).p99
                        + summarize_latencies(slow).p99) / 2
        assert merged.p99 != mean_of_p99s

    def test_histogram_parts_within_documented_bound(self):
        from repro.eval.harness import LatencySummary, percentile

        parts = self.parts_of()
        pooled = [v for part in parts for v in part]
        merged = LatencySummary.merge(
            [self.hist_of(part) for part in parts])
        # count / mean / max carry no bucketing error.
        assert merged.count == len(pooled)
        assert merged.mean == pytest.approx(
            sum(pooled) / len(pooled))
        assert merged.max == max(pooled)
        for q, name in ((50, "p50"), (95, "p95"), (99, "p99")):
            true = percentile(pooled, q)
            est = getattr(merged, name)
            assert true / 2 <= est <= true * 2, (name, true, est)

    def test_mixed_raw_and_histogram(self):
        """Raw parts are bucketed into the shared layout; totals stay
        exact."""
        from repro.eval.harness import LatencySummary

        raw, bucketed = self.parts_of(sizes=(300, 300))
        merged = LatencySummary.merge([raw, self.hist_of(bucketed)])
        assert merged.count == 600
        assert merged.max == max(max(raw), max(bucketed))

    def test_mismatched_bucket_layouts_raise(self):
        from repro.eval.harness import LatencySummary
        from repro.metrics import MetricsRegistry
        from repro.sim import Environment

        default = self.hist_of([100])
        custom = MetricsRegistry(Environment()).histogram(
            "h_cycles", buckets=(10, 100, 1000)).labels()
        custom.observe(50)
        with pytest.raises(ValueError):
            LatencySummary.merge([default, custom])

    def test_no_parts_raise(self):
        from repro.eval.harness import LatencySummary

        with pytest.raises(ValueError):
            LatencySummary.merge([])
        with pytest.raises(ValueError):
            LatencySummary.merge([[], []])
