"""Tests for the execution timeline / Gantt utilities."""

import numpy as np
import pytest

from repro.eval import (GANTT_BUSY, GANTT_OVERLAP, collect_spans,
                        render_gantt, utilization_by_device)
from repro.runtime import chain
from tests.conftest import make_runtime, make_spec


def run_pipeline(mode, n_frames=4):
    specs = [("a0", make_spec(name="a", input_words=8, output_words=8,
                              latency=200)),
             ("b0", make_spec(name="b", input_words=8, output_words=8,
                              latency=100))]
    rt = make_runtime(specs)
    frames = np.random.default_rng(0).uniform(0, 1, (n_frames, 8))
    rt.esp_run(chain("ab", ["a0", "b0"]), frames, mode=mode)
    return rt.soc


class TestSpans:
    def test_base_mode_one_span_per_frame_per_device(self):
        soc = run_pipeline("base", n_frames=4)
        spans = collect_spans(soc)
        assert len(spans) == 8
        assert {s.device for s in spans} == {"a0", "b0"}

    def test_p2p_mode_one_span_per_device(self):
        soc = run_pipeline("p2p", n_frames=4)
        spans = collect_spans(soc)
        assert len(spans) == 2

    def test_spans_sorted_and_positive(self):
        soc = run_pipeline("pipe")
        spans = collect_spans(soc)
        starts = [s.start for s in spans]
        assert starts == sorted(starts)
        assert all(s.cycles > 0 for s in spans)

    def test_base_mode_spans_do_not_overlap(self):
        soc = run_pipeline("base")
        spans = collect_spans(soc)
        for earlier, later in zip(spans, spans[1:]):
            assert later.start >= earlier.end

    def test_pipe_mode_spans_overlap(self):
        soc = run_pipeline("pipe", n_frames=8)
        spans = collect_spans(soc)
        overlaps = any(
            a.device != b.device and a.start < b.end and b.start < a.end
            for a in spans for b in spans)
        assert overlaps

    def test_since_cycle_filters(self):
        soc = run_pipeline("base", n_frames=4)
        all_spans = collect_spans(soc)
        later = collect_spans(soc, since_cycle=all_spans[3].end)
        assert len(later) < len(all_spans)


class TestUtilization:
    def test_fractions_in_unit_range(self):
        soc = run_pipeline("pipe")
        util = utilization_by_device(soc)
        assert set(util) == {"a0", "b0"}
        assert all(0 < u <= 1 for u in util.values())

    def test_slower_stage_busier(self):
        soc = run_pipeline("pipe", n_frames=8)
        util = utilization_by_device(soc)
        assert util["a0"] > util["b0"]

    def test_empty_soc(self):
        from tests.conftest import make_soc
        soc = make_soc([("x0", make_spec())])
        assert utilization_by_device(soc) == {}


class TestGantt:
    def test_renders_all_devices(self):
        soc = run_pipeline("pipe")
        text = render_gantt(soc)
        assert "a0" in text and "b0" in text
        assert "#" in text
        assert "utilization" in text

    def test_no_activity_message(self):
        from tests.conftest import make_soc
        soc = make_soc([("x0", make_spec())])
        assert "no accelerator activity" in render_gantt(soc)

    def test_width_respected(self):
        soc = run_pipeline("base")
        text = render_gantt(soc, width=40)
        bar_lines = [l for l in text.splitlines() if "|" in l]
        assert all(len(l.split("|")[1]) == 40 for l in bar_lines)

    def test_overlap_glyph_distinct_from_busy(self):
        # The overlap marker must be distinguishable: the old renderer
        # collapsed overlapping invocations into the same "#" glyph.
        assert GANTT_OVERLAP != GANTT_BUSY

    def test_concurrent_invocations_render_overlap_glyph(self):
        from repro.soc.wrapper import InvocationResult
        from tests.conftest import make_soc

        soc = make_soc([("x0", make_spec())])
        tile = soc.accelerators["x0"]
        # Two invocations of one device covering the same cycles (e.g.
        # overlapping per-frame bars in a narrow chart column).
        tile.invocations.append(InvocationResult(
            frames=1, start_cycle=0, end_cycle=1000))
        tile.invocations.append(InvocationResult(
            frames=1, start_cycle=0, end_cycle=1000))
        text = render_gantt(soc, width=20)
        row = next(l for l in text.splitlines() if l.startswith("x0"))
        assert GANTT_OVERLAP in row
        assert GANTT_BUSY not in row.split("|")[1]

    def test_single_coverage_has_no_overlap_glyph(self):
        from repro.soc.wrapper import InvocationResult
        from tests.conftest import make_soc

        soc = make_soc([("x0", make_spec())])
        tile = soc.accelerators["x0"]
        tile.invocations.append(InvocationResult(
            frames=1, start_cycle=0, end_cycle=1000))
        text = render_gantt(soc, width=20)
        row = next(l for l in text.splitlines() if l.startswith("x0"))
        assert GANTT_BUSY in row
        assert GANTT_OVERLAP not in row
