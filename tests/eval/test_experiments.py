"""Tests asserting the paper's experimental claims hold in simulation.

These are the headline reproduction checks: each test pins one claim
from the evaluation section (Table I, Fig. 7, Fig. 8) as an invariant,
using small frame counts to stay fast.
"""

import pytest

from repro.eval import (
    BEST_CASE,
    generate_fig7,
    generate_fig8,
    generate_table1,
    measure,
    measure_all_modes,
    render_fig7,
    render_fig8,
    render_table1,
)
from repro.platforms import PAPER_FPS

FRAMES = 8


@pytest.fixture(scope="module")
def table1():
    return generate_table1(n_frames=FRAMES)


@pytest.fixture(scope="module")
def fig7():
    return generate_fig7(n_frames=FRAMES)


@pytest.fixture(scope="module")
def fig8():
    return generate_fig8(n_frames=FRAMES)


class TestTable1(object):
    def test_esp4ml_fps_within_band_of_paper(self, table1):
        for cluster, column in table1.items():
            ratio = column.fps_esp4ml / column.paper_fps_esp4ml
            assert 0.5 < ratio < 2.0, (cluster, ratio)

    def test_power_matches_paper(self, table1):
        for column in table1.values():
            assert column.power_watts == pytest.approx(
                column.paper_power_watts, rel=0.05)

    def test_utilization_in_band(self, table1):
        for cluster, column in table1.items():
            assert 0.05 < column.luts < 0.8
            assert 0.05 < column.brams < 0.8

    def test_soc1_larger_than_soc2(self, table1):
        assert table1["nv_cl"].luts > table1["multitile"].luts
        assert table1["nv_cl"].brams > table1["multitile"].brams

    def test_baseline_rows_are_paper_values(self, table1):
        for cluster, column in table1.items():
            assert column.fps_i7 == pytest.approx(
                PAPER_FPS["i7"][cluster], rel=1e-6)
            assert column.fps_jetson == pytest.approx(
                PAPER_FPS["jetson"][cluster], rel=1e-6)

    def test_ordering_claims(self, table1):
        # ESP4ML beats the Jetson on every app (paper: "better
        # performance compared to a commercial embedded platform").
        for column in table1.values():
            assert column.fps_esp4ml > column.fps_jetson
        # The i7 wins raw performance except on Night-Vision.
        assert table1["nv_cl"].fps_esp4ml > table1["nv_cl"].fps_i7
        assert table1["de_cl"].fps_i7 > table1["de_cl"].fps_esp4ml
        assert table1["multitile"].fps_i7 > \
            table1["multitile"].fps_esp4ml

    def test_render(self, table1):
        text = render_table1(table1)
        assert "FRAMES/S ESP4ML" in text
        assert "paper" in text


class TestFig7:
    def test_modes_ordered_base_pipe_p2p(self, fig7):
        for cluster in fig7.clusters:
            fpj = cluster.frames_per_joule
            assert fpj["base"] < fpj["pipe"] <= fpj["p2p"] * 1.02, \
                cluster.app_key

    def test_nv_replication_scales(self, fig7):
        one = fig7.cluster("1nv_1cl").frames_per_joule["p2p"]
        four_one = fig7.cluster("4nv_1cl").frames_per_joule["p2p"]
        four_four = fig7.cluster("4nv_4cl").frames_per_joule["p2p"]
        assert one < four_one < four_four

    def test_esp4ml_beats_both_baselines_everywhere(self, fig7):
        """Paper: 'the ESP4ML SoCs outperforms both the GPU and the CPU
        across all three applications' (in frames/J)."""
        for cluster in fig7.clusters:
            best = cluster.frames_per_joule["p2p"]
            assert best > cluster.i7_frames_per_joule
            assert best > cluster.jetson_frames_per_joule

    def test_gain_over_100x_somewhere(self, fig7):
        assert fig7.max_gain() > 100.0

    def test_render(self, fig7):
        text = render_fig7(fig7)
        assert "p2p/i7" in text
        assert "over 100x" in text


class TestFig8:
    def test_reduction_between_2x_and_3x(self, fig8):
        for bar in fig8:
            assert 1.8 <= bar.reduction <= 3.2, (bar.app_key,
                                                 bar.reduction)

    def test_p2p_always_reduces(self, fig8):
        for bar in fig8:
            assert bar.dram_p2p < bar.dram_no_p2p

    def test_two_stage_apps_reduce_about_3x(self, fig8):
        by_key = {bar.app_key: bar for bar in fig8}
        assert by_key["4nv_4cl"].reduction == pytest.approx(3.0, abs=0.15)
        assert by_key["1de_1cl"].reduction == pytest.approx(3.0, abs=0.15)
        assert by_key["1cl_split"].reduction == pytest.approx(1.93,
                                                              abs=0.15)

    def test_render(self, fig8):
        assert "reduction" in render_fig8(fig8)


class TestMeasurement:
    def test_measure_all_modes(self):
        results = measure_all_modes("1nv_1cl", n_frames=4)
        assert set(results) == {"base", "pipe", "p2p"}
        assert all(r.fps > 0 for r in results.values())

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            measure("8nv_8cl", "p2p")

    def test_ioctl_counts(self):
        results = measure_all_modes("1nv_1cl", n_frames=4)
        assert results["base"].ioctl_calls == 8    # 2 devices x 4 frames
        assert results["p2p"].ioctl_calls == 2
