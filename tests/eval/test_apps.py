"""Tests for the case-study applications and SoC builders."""

import numpy as np
import pytest

from repro.eval import (
    APP_CONFIGS,
    BEST_CASE,
    build_soc1,
    build_soc2,
    dataflow_de_cl,
    dataflow_multitile,
    dataflow_nv_cl,
    fresh_runtime,
    nv_cl_inputs,
)


class TestSoCBuilders:
    def test_soc1_hosts_nine_accelerators(self):
        soc = build_soc1()
        names = set(soc.accelerators)
        assert names == {f"nv{i}" for i in range(4)} | \
            {f"cl{i}" for i in range(4)} | {"de0"}

    def test_soc1_grid_is_4x3(self):
        soc = build_soc1()
        assert (soc.config.cols, soc.config.rows) == (4, 3)

    def test_soc2_hosts_five_partitions(self):
        soc = build_soc2()
        assert set(soc.accelerators) == {f"part{i}" for i in range(5)}

    def test_paper_clock(self):
        assert build_soc1().clock_mhz == 78.0

    def test_soc1_fits_device(self):
        from repro.hls import XCVU9P
        assert XCVU9P.fits(build_soc1().resources())


class TestDataflows:
    def test_nv_cl_shapes(self):
        assert dataflow_nv_cl(1, 1).levels() == [["nv0"], ["cl0"]]
        assert dataflow_nv_cl(4, 1).levels() == \
            [[f"nv{i}" for i in range(4)], ["cl0"]]
        assert dataflow_nv_cl(4, 4).levels()[1] == \
            [f"cl{i}" for i in range(4)]

    def test_nv_cl_bounds(self):
        with pytest.raises(ValueError):
            dataflow_nv_cl(5, 1)

    def test_multitile_is_a_chain(self):
        df = dataflow_multitile()
        assert df.levels() == [[f"part{i}"] for i in range(5)]

    def test_all_p2p_valid(self):
        dataflow_de_cl().validate_for_p2p()
        dataflow_nv_cl(4, 4).validate_for_p2p()
        dataflow_multitile().validate_for_p2p()


class TestInputs:
    def test_nv_inputs_darkened(self):
        frames, labels = nv_cl_inputs(4, seed=0, darken_factor=0.25)
        assert frames.shape == (4, 1024)
        assert frames.max() <= 0.25 + 1e-9
        assert labels.shape == (4, 10)

    def test_best_case_keys_exist(self):
        for key in BEST_CASE.values():
            assert key in APP_CONFIGS


class TestFunctionalEndToEnd:
    def test_nv_cl_produces_probabilities(self):
        config = APP_CONFIGS["1nv_1cl"]
        rt = fresh_runtime(config)
        frames, _ = config.make_inputs(4)
        result = rt.esp_run(config.build_dataflow(), frames, mode="p2p")
        assert result.outputs.shape == (4, 10)
        np.testing.assert_allclose(result.outputs.sum(axis=1), 1.0,
                                   atol=0.05)

    def test_multitile_matches_monolithic_classifier(self):
        from repro.accelerators import classifier_spec
        config = APP_CONFIGS["1cl_split"]
        rt = fresh_runtime(config)
        frames, _ = config.make_inputs(4)
        result = rt.esp_run(config.build_dataflow(), frames, mode="p2p")
        # The partitioned pipeline computes the same function as one
        # classifier (same weights came from the same seed/model), up
        # to the classifier's own fixed-point tile I/O quantization.
        mono = classifier_spec()
        reference = np.stack([mono.run(f) for f in frames])
        np.testing.assert_allclose(result.outputs, reference, atol=0.02)
