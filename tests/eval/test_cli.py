"""Tests for the command-line interface (python -m repro ...)."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.frames == 32

    def test_train_preset_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--preset", "turbo"])

    def test_chaos_flags(self):
        args = build_parser().parse_args(["chaos", "--smoke"])
        assert args.smoke and args.seed == 0
        args = build_parser().parse_args(["metrics-top", "--chaos"])
        assert args.chaos


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1", "--frames", "4"]) == 0
        out = capsys.readouterr().out
        assert "FRAMES/S ESP4ML" in out
        assert "paper" in out

    def test_fig8(self, capsys):
        assert main(["fig8", "--frames", "4"]) == 0
        out = capsys.readouterr().out
        assert "reduction" in out

    def test_timeline(self, capsys):
        assert main(["timeline", "--app", "1nv_1cl", "--mode", "pipe",
                     "--frames", "4"]) == 0
        out = capsys.readouterr().out
        assert "frames/s" in out
        assert "#" in out


class TestHelp:
    def test_help_enumerates_every_command(self):
        """--help lists each subcommand with its one-line description
        (the COMMANDS table is the single source of truth)."""
        from repro.__main__ import COMMANDS

        text = build_parser().format_help()
        for name, description in COMMANDS.items():
            assert name in text
            # The first few words of each description survive
            # argparse's line wrapping.
            assert " ".join(description.split()[:3]) in text

    def test_commands_table_matches_registered_parsers(self):
        from repro.__main__ import COMMANDS

        parser = build_parser()
        action = next(a for a in parser._actions if a.choices)
        assert set(COMMANDS) == set(action.choices)


class TestFleetCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.policy == "all"
        assert args.instances == 4
        assert args.seed == 0 and not args.smoke

    def test_policy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--policy", "random"])

    def test_single_policy_run(self, capsys):
        assert main(["fleet", "--smoke", "--policy", "round-robin",
                     "--instances", "2"]) == 0
        out = capsys.readouterr().out
        assert "policy=round-robin" in out
        assert "rejection breakdown" in out
