"""Chaos campaign plumbing: scenarios, grading, and the verdict.

The full campaign (simulation included) runs in
``benchmarks/bench_chaos.py`` and the CI ``chaos-smoke`` job; these
tests pin the cheap-but-load-bearing logic around it — scenario
construction, TTD/TTR grading, and the controller-strictly-better
verdict — on synthetic data, without spinning up a SoC.
"""

import numpy as np

from repro.eval.chaos import (
    ChaosReport,
    DEFAULT_RECOVERY_SLOS,
    ScenarioResult,
    _time_to_detect,
    _time_to_recover,
    chaos_scenarios,
)
from repro.metrics import HealthMonitor, MetricsRegistry
from repro.metrics.health import Alert, STATE_FIRING
from repro.serve import Completion
from repro.sim import Environment


def completion(tenant, started_at, completed_at, batch_frames=1):
    return Completion(request_id=0, tenant=tenant, submitted_at=0,
                      started_at=started_at, completed_at=completed_at,
                      n_frames=1, batch_frames=batch_frames,
                      degraded=False, batch_requests=1,
                      outputs=np.zeros((1, 1)))


def result(scenario, controller, recovered, ttr=None):
    return ScenarioResult(
        scenario=scenario, fault_class="acc_hang",
        target_tenant="classifier", controller=controller,
        inject_cycle=100, recovery_slo_cycles=1_000, faults_fired=1,
        ttd_cycles=10, ttr_cycles=ttr, recovered=recovered,
        end_status="healthy" if recovered else "degraded",
        alerts=1, completions=5, rejections=0, failures=0,
        degraded_completions=0, reshards=0)


class TestScenarios:
    def test_full_set_covers_every_declared_fault_class(self):
        scenarios = chaos_scenarios()
        classes = {s.fault_class for s in scenarios}
        assert classes == set(DEFAULT_RECOVERY_SLOS)

    def test_smoke_is_a_subset_with_the_same_slos(self):
        full = {s.name: s for s in chaos_scenarios()}
        for scenario in chaos_scenarios(smoke=True):
            assert scenario.name in full
            assert scenario.recovery_slo_cycles == \
                full[scenario.name].recovery_slo_cycles

    def test_scenario_validates_and_describes(self):
        scenario = chaos_scenarios()[0]
        assert scenario.inject_cycle > 0
        assert scenario.recovery_slo_cycles > 0
        text = scenario.describe()
        assert scenario.fault_class in text

    def test_custom_slo_override(self):
        scenarios = chaos_scenarios(
            recovery_slos={"acc_hang": 123_456})
        hang = next(s for s in scenarios
                    if s.fault_class == "acc_hang")
        assert hang.recovery_slo_cycles == 123_456


class TestGrading:
    def test_time_to_detect_uses_first_post_inject_alert(self):
        registry = MetricsRegistry(Environment())
        monitor = HealthMonitor(registry, [])
        monitor.history.extend([
            Alert(rule="early", severity="warning",
                  state=STATE_FIRING, fired_at=50, detail=""),
            Alert(rule="hit", severity="warning",
                  state=STATE_FIRING, fired_at=140, detail=""),
            Alert(rule="late", severity="warning",
                  state=STATE_FIRING, fired_at=300, detail=""),
        ])
        assert _time_to_detect(monitor, 100) == 40
        assert _time_to_detect(monitor, 301) is None

    def test_time_to_recover_finds_trailing_in_slo_run(self):
        # Per-frame target 100: the 500-cycle completion at 1_000
        # breaks the trailing run; recovery starts at the next one.
        completions = [
            completion("classifier", 0, 90),           # pre-inject
            completion("classifier", 500, 1_000),      # slow (500)
            completion("classifier", 1_960, 2_040),    # good (80)
            completion("classifier", 2_460, 2_520),    # good (60)
            completion("other", 2_900, 9_999),         # wrong tenant
        ]
        assert _time_to_recover(completions, "classifier", 100,
                                per_frame_target=100) == 2_040 - 100

    def test_time_to_recover_requires_min_good_run(self):
        completions = [completion("classifier", 1_900, 2_000)]
        assert _time_to_recover(completions, "classifier", 100,
                                per_frame_target=100) is None
        assert _time_to_recover(completions, "classifier", 100,
                                per_frame_target=100,
                                min_good=1) == 1_900

    def test_per_frame_service_is_batch_normalized(self):
        # 400 cycles over 4 frames = 100/frame: inside a 100 target.
        completions = [
            completion("classifier", 1_000, 1_400, batch_frames=4),
            completion("classifier", 2_000, 2_400, batch_frames=4),
        ]
        assert _time_to_recover(completions, "classifier", 0,
                                per_frame_target=100) == 1_400


class TestVerdict:
    def test_controller_strictly_better_requires_clean_sweep(self):
        report = ChaosReport(horizon_cycles=1, calibration={}, results=[
            result("hang", "on", True, ttr=500),
            result("hang", "off", False),
        ])
        assert report.controller_strictly_better
        assert report.recovered_count("on") == 1
        assert report.mttr_by_class("on") == {"acc_hang": 500}

    def test_one_missed_on_arm_fails_the_verdict(self):
        report = ChaosReport(horizon_cycles=1, calibration={}, results=[
            result("hang", "on", True, ttr=500),
            result("crash", "on", False),
            result("hang", "off", False),
            result("crash", "off", False),
        ])
        assert not report.controller_strictly_better

    def test_off_arm_recovering_everything_fails_the_verdict(self):
        report = ChaosReport(horizon_cycles=1, calibration={}, results=[
            result("hang", "on", True, ttr=500),
            result("hang", "off", True, ttr=900),
        ])
        assert not report.controller_strictly_better

    def test_render_and_to_dict_round_trip(self):
        report = ChaosReport(
            horizon_cycles=500_000,
            calibration={"service": {"classifier": 100}},
            results=[result("hang", "on", True, ttr=500),
                     result("hang", "off", False)])
        text = report.render()
        assert "hang" in text and "strictly better: True" in text
        payload = report.to_dict()
        assert payload["recovered_on"] == 1
        assert payload["recovered_off"] == 0
        assert payload["controller_strictly_better"] is True
        assert len(payload["results"]) == 2
