"""Tests for the compiled HLS model (timing + structure)."""

import numpy as np
import pytest

from repro.fixed import DEFAULT_FORMAT
from repro.hls4ml_flow import HlsConfig, HlsModel, build_layer, compile_model
from repro.nn import Dense, ReLU, Sequential, Softmax


def layer(n_in=8, n_out=4, reuse=4, activation="relu", name="l"):
    rng = np.random.default_rng(0)
    return build_layer(name, rng.uniform(-1, 1, (n_in, n_out)),
                       np.zeros(n_out), activation, DEFAULT_FORMAT, reuse)


class TestBuildLayer:
    def test_geometry(self):
        l = layer(8, 4)
        assert l.n_in == 8 and l.n_out == 4 and l.n_weights == 32

    def test_multiplier_count(self):
        assert layer(8, 4, reuse=4).n_multipliers == 8

    def test_bad_activation(self):
        with pytest.raises(ValueError):
            layer(activation="tanh")

    def test_bad_bias_shape(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            build_layer("l", rng.uniform(-1, 1, (8, 4)), np.zeros(3),
                        "relu", DEFAULT_FORMAT, 4)

    def test_weights_must_be_2d(self):
        with pytest.raises(ValueError):
            build_layer("l", np.zeros(8), np.zeros(4), "relu",
                        DEFAULT_FORMAT, 4)


class TestHlsModel:
    def test_shape_mismatch_between_layers_rejected(self):
        with pytest.raises(ValueError):
            HlsModel("bad", [layer(8, 4, name="a"), layer(8, 4, name="b")],
                     clock_mhz=78.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            HlsModel("empty", [], clock_mhz=78.0)

    def test_interval_is_max_layer_interval(self):
        model = Sequential([Dense(16), ReLU(), Dense(4), Softmax()],
                           name="m").build(8)
        names = [l.name for l in model.dense_layers()]
        hls = compile_model(model, HlsConfig(
            reuse_factor=4, layer_reuse={names[0]: 32, names[1]: 8}))
        assert hls.interval_cycles == max(l.schedule.interval
                                          for l in hls.layers)

    def test_latency_is_sum_of_layer_latencies(self):
        model = Sequential([Dense(16), ReLU(), Dense(4), Softmax()],
                           name="m").build(8)
        hls = compile_model(model, HlsConfig(reuse_factor=4))
        assert hls.latency_cycles == sum(l.schedule.latency
                                         for l in hls.layers)

    def test_throughput_from_clock(self):
        model = Sequential([Dense(16), ReLU()], name="m").build(8)
        hls = compile_model(model, HlsConfig(reuse_factor=8,
                                             clock_mhz=100.0))
        assert hls.throughput_fps() == pytest.approx(
            100e6 / hls.interval_cycles)

    def test_latency_us(self):
        model = Sequential([Dense(16), ReLU()], name="m").build(8)
        hls = compile_model(model, HlsConfig(reuse_factor=8,
                                             clock_mhz=78.0))
        assert hls.latency_us == pytest.approx(hls.latency_cycles / 78.0)

    def test_resources_accumulate_over_layers(self):
        model = Sequential([Dense(16), ReLU(), Dense(4), Softmax()],
                           name="m").build(8)
        hls = compile_model(model, HlsConfig(reuse_factor=4))
        assert hls.resources.dsps == sum(l.schedule.resources.dsps
                                         for l in hls.layers)
