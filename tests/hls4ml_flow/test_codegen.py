"""Tests for firmware artifact emission (Fig. 3's generated files)."""

from repro.hls4ml_flow import (
    HlsConfig,
    build_report,
    compile_model,
    emit_all,
    emit_compute_cpp,
    emit_directives_tcl,
    emit_parameters_header,
    emit_weights_header,
)
from repro.nn import Dense, ReLU, Sequential, Softmax


def compiled(seed=0):
    model = Sequential([Dense(16), ReLU(), Dense(4), Softmax()],
                       name="fw").build(8, seed=seed)
    return compile_model(model, HlsConfig(reuse_factor=4))


class TestParametersHeader:
    def test_defines_every_layer(self):
        text = emit_parameters_header(compiled())
        assert "#define N_LAYER_1_IN  8" in text
        assert "#define N_LAYER_2_OUT 4" in text
        assert "REUSE_1" in text

    def test_precision_typedef(self):
        assert "ap_fixed<16,6>" in emit_parameters_header(compiled())


class TestWeightsHeader:
    def test_declares_arrays_with_sizes(self):
        text = emit_weights_header(compiled())
        assert "w1[128]" in text
        assert "b2[4]" in text

    def test_elides_long_arrays(self):
        assert "..." in emit_weights_header(compiled(), max_values=4)


class TestComputeCpp:
    def test_structure(self):
        text = emit_compute_cpp(compiled())
        assert "void compute(" in text
        assert "nnet::dense" in text
        assert "nnet::relu" in text
        assert "nnet::softmax" in text
        assert "// Network: 8x16x4" in text


class TestDirectives:
    def test_pipelines_every_layer(self):
        text = emit_directives_tcl(compiled())
        assert text.count("set_directive_pipeline") == 2
        assert "ap_fifo" in text


class TestEmitAll:
    def test_produces_the_fig3_file_set(self):
        files = emit_all(compiled())
        assert set(files) == {"parameters.h", "weights.h", "compute.cpp",
                              "directives.tcl"}


class TestReport:
    def test_report_matches_model(self):
        hls = compiled()
        report = build_report(hls)
        assert report.latency_cycles == hls.latency_cycles
        assert report.interval_cycles == hls.interval_cycles
        assert len(report.layers) == 2

    def test_report_text_renders(self):
        text = build_report(compiled()).to_text()
        assert "Synthesis report" in text
        assert "throughput" in text
