"""Tests for the ONNX-like and PyTorch-like model importers."""

import numpy as np
import pytest

from repro.hls4ml_flow import (
    HlsConfig,
    compile_model,
    from_onnx_graph,
    from_torch_state,
    to_onnx_graph,
)
from repro.nn import Dense, ReLU, Sequential, Softmax


def reference_model(seed=0):
    model = Sequential([Dense(16), ReLU(), Dense(4), Softmax()],
                       name="ref").build(8, seed=seed)
    return model, compile_model(model, HlsConfig(reuse_factor=4))


def onnx_graph_for(model):
    """Build the ONNX-like dict by hand from a Keras-substitute model."""
    dense = model.dense_layers()
    nodes, initializers = [], {}
    prev = "x"
    for index, layer in enumerate(dense):
        w, b = f"W{index}", f"B{index}"
        initializers[w] = layer.weights.T.copy()   # ONNX: (out, in)
        initializers[b] = layer.bias.copy()
        out = f"h{index}"
        nodes.append({"op_type": "Gemm", "name": f"gemm{index}",
                      "inputs": [prev, w, b], "outputs": [out]})
        prev = out
        act = "Relu" if index < len(dense) - 1 else "Softmax"
        nodes.append({"op_type": act, "inputs": [prev],
                      "outputs": [f"a{index}"]})
        prev = f"a{index}"
    return {"name": "ref_onnx", "nodes": nodes,
            "initializers": initializers}


class TestOnnxImport:
    def test_matches_keras_path(self, rng):
        model, keras_hls = reference_model()
        onnx_hls = from_onnx_graph(onnx_graph_for(model),
                                   HlsConfig(reuse_factor=4))
        x = rng.uniform(0, 1, (8, 8))
        np.testing.assert_array_equal(onnx_hls.predict(x),
                                      keras_hls.predict(x))
        assert onnx_hls.topology == keras_hls.topology

    def test_dropout_identity_skipped(self):
        model, _ = reference_model()
        graph = onnx_graph_for(model)
        graph["nodes"].insert(1, {"op_type": "Dropout", "inputs": ["h0"],
                                  "outputs": ["d0"]})
        hls = from_onnx_graph(graph, HlsConfig(reuse_factor=4))
        assert len(hls.layers) == 2

    def test_unsupported_op(self):
        graph = {"nodes": [{"op_type": "Conv", "inputs": [],
                            "outputs": []}], "initializers": {}}
        with pytest.raises(ValueError, match="unsupported"):
            from_onnx_graph(graph)

    def test_missing_initializer(self):
        graph = {"nodes": [{"op_type": "Gemm", "name": "g",
                            "inputs": ["x", "W", "B"], "outputs": ["y"]}],
                 "initializers": {}}
        with pytest.raises(KeyError):
            from_onnx_graph(graph)

    def test_empty_graph(self):
        with pytest.raises(ValueError):
            from_onnx_graph({"nodes": [], "initializers": {}})

    def test_roundtrip_export(self, rng):
        _, keras_hls = reference_model()
        graph = to_onnx_graph(keras_hls)
        back = from_onnx_graph(graph, HlsConfig(reuse_factor=4))
        x = rng.uniform(0, 1, (4, 8))
        np.testing.assert_array_equal(back.predict(x),
                                      keras_hls.predict(x))


class TestTorchImport:
    def _state_dict(self, model):
        state = {}
        for index, layer in enumerate(model.dense_layers()):
            state[f"{2 * index}.weight"] = layer.weights.T.copy()
            state[f"{2 * index}.bias"] = layer.bias.copy()
        return state

    def test_matches_keras_path(self, rng):
        model, keras_hls = reference_model()
        torch_hls = from_torch_state(self._state_dict(model),
                                     activations=["relu", "softmax"],
                                     config=HlsConfig(reuse_factor=4))
        x = rng.uniform(0, 1, (8, 8))
        np.testing.assert_array_equal(torch_hls.predict(x),
                                      keras_hls.predict(x))

    def test_missing_bias_defaults_to_zero(self, rng):
        model, _ = reference_model()
        state = self._state_dict(model)
        del state["0.bias"]
        hls = from_torch_state(state, activations=["relu", "softmax"],
                               config=HlsConfig(reuse_factor=4))
        np.testing.assert_array_equal(hls.layers[0].bias, 0.0)

    def test_activation_count_mismatch(self):
        model, _ = reference_model()
        with pytest.raises(ValueError, match="activations"):
            from_torch_state(self._state_dict(model),
                             activations=["relu"])

    def test_unknown_activation(self):
        model, _ = reference_model()
        with pytest.raises(ValueError):
            from_torch_state(self._state_dict(model),
                             activations=["gelu", "softmax"])

    def test_empty_state_dict(self):
        with pytest.raises(ValueError):
            from_torch_state({}, activations=[])
