"""Tests for the HLS4ML-substitute compiler."""

import numpy as np
import pytest

from repro.hls4ml_flow import HlsConfig, compile_artifacts, compile_model
from repro.nn import (
    Dense,
    Dropout,
    GaussianNoise,
    ReLU,
    Sequential,
    Sigmoid,
    Softmax,
    model_artifacts,
)


def small_model(seed=0):
    return Sequential([Dense(16), ReLU(), Dropout(0.2), Dense(4),
                       Softmax()], name="small").build(8, seed=seed)


class TestCompile:
    def test_layers_fused(self):
        hls = compile_model(small_model(), HlsConfig(reuse_factor=4))
        assert len(hls.layers) == 2
        assert hls.layers[0].activation == "relu"
        assert hls.layers[1].activation == "softmax"

    def test_training_layers_dropped(self):
        model = Sequential([GaussianNoise(0.1), Dense(4), Sigmoid()],
                           name="noisy").build(4)
        hls = compile_model(model, HlsConfig(reuse_factor=1))
        assert len(hls.layers) == 1
        assert hls.layers[0].activation == "sigmoid"

    def test_topology_preserved(self):
        hls = compile_model(small_model(), HlsConfig(reuse_factor=4))
        assert hls.topology == [8, 16, 4]

    def test_reuse_factor_snaps_per_layer(self):
        hls = compile_model(small_model(), HlsConfig(reuse_factor=100))
        # 8x16=128 weights: nearest divisor of 100; 16x4=64 likewise.
        assert 128 % hls.layers[0].reuse_factor == 0
        assert 64 % hls.layers[1].reuse_factor == 0

    def test_per_layer_reuse_override(self):
        model = small_model()
        names = [l.name for l in model.dense_layers()]
        config = HlsConfig(reuse_factor=4,
                           layer_reuse={names[0]: 128})
        hls = compile_model(model, config)
        assert hls.layers[0].reuse_factor == 128
        assert hls.layers[1].reuse_factor == 4

    def test_compile_from_artifacts(self):
        model = small_model()
        json_text, weights = model_artifacts(model)
        hls = compile_artifacts(json_text, weights,
                                HlsConfig(reuse_factor=4))
        assert hls.topology == [8, 16, 4]

    def test_missing_weights_rejected(self):
        model = small_model()
        json_text, weights = model_artifacts(model)
        weights.pop(next(k for k in weights if k.endswith("/weights")))
        with pytest.raises(KeyError):
            compile_artifacts(json_text, weights)

    def test_activation_without_dense_rejected(self):
        model = Sequential([ReLU(), Dense(4)], name="bad").build(4)
        json_text, weights = model_artifacts(model)
        with pytest.raises(ValueError):
            compile_artifacts(json_text, weights)

    def test_double_activation_rejected(self):
        model = Sequential([Dense(4), ReLU(), Sigmoid()],
                           name="bad").build(4)
        json_text, weights = model_artifacts(model)
        with pytest.raises(ValueError):
            compile_artifacts(json_text, weights)

    def test_precision_from_string(self):
        config = HlsConfig(precision="ap_fixed<12,4>", reuse_factor=4)
        hls = compile_model(small_model(), config)
        assert hls.layers[0].precision.width == 12


class TestNumerics:
    def test_fixed_point_tracks_float_argmax(self, rng):
        model = small_model()
        hls = compile_model(model, HlsConfig(reuse_factor=4))
        x = rng.uniform(0, 1, (64, 8))
        match = (model.predict(x).argmax(1) ==
                 hls.predict(x).argmax(1)).mean()
        assert match > 0.9

    def test_weights_are_quantized(self):
        hls = compile_model(small_model(), HlsConfig(reuse_factor=4))
        layer = hls.layers[0]
        np.testing.assert_array_equal(
            layer.precision.quantize(layer.weights), layer.weights)

    def test_wrong_input_size_rejected(self):
        hls = compile_model(small_model(), HlsConfig(reuse_factor=4))
        with pytest.raises(ValueError):
            hls.predict(np.zeros((1, 7)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HlsConfig(reuse_factor=0)
        with pytest.raises(ValueError):
            HlsConfig(clock_mhz=0)
