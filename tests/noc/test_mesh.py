"""Tests for the multi-plane mesh NoC: latency, contention, delivery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc import (
    DEFAULT_PLANES,
    DMA_REQUEST_PLANE,
    DMA_RESPONSE_PLANE,
    Mesh2D,
    MessageKind,
    NocPlane,
    Packet,
    collect_report,
)
from repro.sim import Environment


def send_and_run(mesh, env, packets):
    processes = [mesh.send(p) for p in packets]
    env.run()
    return processes


def packet(src, dst, flits=15, plane=DMA_REQUEST_PLANE,
           kind=MessageKind.DMA_REQ, tag=None):
    return Packet(src=src, dst=dst, plane=plane, kind=kind,
                  payload_flits=flits, tag=tag)


class TestConstruction:
    def test_six_default_planes(self):
        env = Environment()
        mesh = Mesh2D(env, 2, 2)
        assert len(mesh.planes) == 6
        assert DMA_REQUEST_PLANE in mesh.planes
        assert DMA_RESPONSE_PLANE in mesh.planes

    def test_link_count(self):
        env = Environment()
        mesh = Mesh2D(env, 3, 2)
        # 3x2 mesh: 2*2 horizontal + 3*1 vertical = 7 bidir pairs
        # -> 14 directed links per plane.
        per_plane = 14
        assert len(mesh.links) == per_plane * 6

    def test_io_plane_narrower(self):
        env = Environment()
        mesh = Mesh2D(env, 2, 2)
        assert mesh.flit_bits("io-irq") == 32
        assert mesh.flit_bits(DMA_REQUEST_PLANE) == 64

    def test_invalid_sizes(self):
        env = Environment()
        with pytest.raises(ValueError):
            Mesh2D(env, 0, 2)
        with pytest.raises(ValueError):
            Mesh2D(env, 2, 2, router_latency=0)

    def test_duplicate_plane_names_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            Mesh2D(env, 2, 2, planes=[NocPlane("a"), NocPlane("a")])

    def test_coords_row_major(self):
        env = Environment()
        mesh = Mesh2D(env, 2, 2)
        assert mesh.coords() == [(0, 0), (1, 0), (0, 1), (1, 1)]


class TestLatency:
    def test_uncontended_wormhole_formula(self):
        env = Environment()
        mesh = Mesh2D(env, 3, 3, router_latency=2)
        p = packet((0, 0), (2, 2), flits=15)
        mesh.send(p)
        env.run()
        # 4 hops * 2 cycles + 16 flits serialization.
        assert p.latency == 4 * 2 + 16

    def test_local_delivery(self):
        env = Environment()
        mesh = Mesh2D(env, 2, 2, router_latency=2)
        p = packet((0, 0), (0, 0))
        mesh.send(p)
        env.run()
        assert p.latency == 2

    def test_longer_route_longer_latency(self):
        env = Environment()
        mesh = Mesh2D(env, 4, 4)
        near = packet((0, 0), (1, 0))
        far = packet((0, 0), (3, 3))
        mesh.send(near)
        mesh.send(far)
        env.run()
        assert far.latency > near.latency


class TestContention:
    def test_shared_link_serializes(self):
        env = Environment()
        mesh = Mesh2D(env, 3, 1, router_latency=1)
        a = packet((0, 0), (2, 0), flits=99)
        b = packet((0, 0), (2, 0), flits=99)
        mesh.send(a)
        mesh.send(b)
        env.run()
        uncontended = 2 * 1 + 100
        assert a.latency == uncontended
        assert b.latency > uncontended   # waited behind a

    def test_different_planes_do_not_contend(self):
        env = Environment()
        mesh = Mesh2D(env, 3, 1, router_latency=1)
        a = packet((0, 0), (2, 0), flits=99, plane=DMA_REQUEST_PLANE)
        b = packet((0, 0), (2, 0), flits=99, plane=DMA_RESPONSE_PLANE,
                   kind=MessageKind.DMA_RSP)
        mesh.send(a)
        mesh.send(b)
        env.run()
        assert a.latency == b.latency == 2 * 1 + 100

    def test_disjoint_routes_do_not_contend(self):
        env = Environment()
        mesh = Mesh2D(env, 2, 2, router_latency=1)
        a = packet((0, 0), (1, 0), flits=50)
        b = packet((0, 1), (1, 1), flits=50)
        mesh.send(a)
        mesh.send(b)
        env.run()
        assert a.latency == b.latency == 1 + 51


class TestDelivery:
    def test_packet_arrives_in_inbox(self):
        env = Environment()
        mesh = Mesh2D(env, 2, 2)
        p = packet((0, 0), (1, 1), tag="t0")
        mesh.send(p)
        env.run()
        inbox = mesh.inbox((1, 1), DMA_REQUEST_PLANE)
        assert inbox.try_get() is p

    def test_fifo_order_same_pair(self):
        env = Environment()
        mesh = Mesh2D(env, 3, 1)
        packets = [packet((0, 0), (2, 0), flits=5, tag=f"t{i}")
                   for i in range(5)]
        for p in packets:
            mesh.send(p)
        env.run()
        inbox = mesh.inbox((2, 0), DMA_REQUEST_PLANE)
        order = [inbox.try_get().tag for _ in range(5)]
        assert order == [f"t{i}" for i in range(5)]

    def test_unknown_plane_rejected(self):
        env = Environment()
        mesh = Mesh2D(env, 2, 2)
        with pytest.raises(ValueError):
            mesh.send(packet((0, 0), (1, 1), plane="bogus"))

    def test_out_of_mesh_rejected(self):
        env = Environment()
        mesh = Mesh2D(env, 2, 2)
        with pytest.raises(ValueError):
            mesh.send(packet((0, 0), (5, 5)))

    @given(cols=st.integers(2, 4), rows=st.integers(2, 4),
           pairs=st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)),
                          min_size=1, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_all_packets_always_delivered(self, cols, rows, pairs):
        env = Environment()
        mesh = Mesh2D(env, cols, rows)
        packets = []
        for a, b in pairs:
            src = (a % cols, (a // cols) % rows)
            dst = (b % cols, (b // cols) % rows)
            packets.append(packet(src, dst, flits=a % 20))
        for p in packets:
            mesh.send(p)
        env.run()
        assert mesh.packets_delivered == len(packets)
        assert all(p.delivered_at is not None for p in packets)


class TestStats:
    def test_flits_accounted_per_plane(self):
        env = Environment()
        mesh = Mesh2D(env, 3, 1)
        p = packet((0, 0), (2, 0), flits=9)
        mesh.send(p)
        env.run()
        flits = mesh.plane_flits()
        assert flits[DMA_REQUEST_PLANE] == 2 * 10   # 2 hops x 10 flits
        assert flits[DMA_RESPONSE_PLANE] == 0

    def test_report_renders(self):
        env = Environment()
        mesh = Mesh2D(env, 2, 2)
        mesh.send(packet((0, 0), (1, 1)))
        env.run()
        report = collect_report(mesh)
        assert report.packets_delivered == 1
        assert "flit-hops" in report.to_text()

    def test_busiest_links(self):
        env = Environment()
        mesh = Mesh2D(env, 3, 1)
        for _ in range(3):
            mesh.send(packet((0, 0), (2, 0), flits=10))
        env.run()
        top = mesh.busiest_links(top=1)[0]
        assert top.flits_carried == 33
