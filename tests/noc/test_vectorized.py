"""The vectorized uncontended-transport helper vs the event-driven path.

``Mesh2D.bulk_uncontended_latencies`` is the closed form of
``_transmit`` for isolated packets (wide-mesh DSE sweeps); these tests
pin it cycle-for-cycle against actually simulating each packet alone
on an idle mesh.
"""

import numpy as np
import pytest

from repro.noc import DMA_REQUEST_PLANE, Mesh2D, MessageKind, Packet
from repro.sim import Environment


def _simulated_latency(cols, rows, src, dst, flits):
    """Drive one packet through an idle mesh; return delivery latency."""
    env = Environment()
    mesh = Mesh2D(env, cols, rows)
    packet = Packet(src=src, dst=dst, plane=DMA_REQUEST_PLANE,
                    kind=MessageKind.DMA_REQ, payload_flits=flits)
    mesh.send(packet)
    env.run()
    return packet.delivered_at - packet.injected_at


class TestBulkUncontended:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_event_driven_transport(self, seed):
        """Closed form == simulation for random pairs on a wide mesh."""
        rng = np.random.default_rng(seed)
        cols, rows = 6, 5
        n = 12
        srcs = np.stack([rng.integers(0, cols, n),
                         rng.integers(0, rows, n)], axis=1)
        dsts = np.stack([rng.integers(0, cols, n),
                         rng.integers(0, rows, n)], axis=1)
        payload = int(rng.integers(1, 40))
        flits = payload + 1   # Packet.size_flits counts the head flit
        env = Environment()
        mesh = Mesh2D(env, cols, rows)
        predicted = mesh.bulk_uncontended_latencies(srcs, dsts, flits)
        for k in range(n):
            simulated = _simulated_latency(
                cols, rows, tuple(int(v) for v in srcs[k]),
                tuple(int(v) for v in dsts[k]), payload)
            assert predicted[k] == simulated, (srcs[k], dsts[k])

    def test_local_ejection_is_one_router_hop(self):
        env = Environment()
        mesh = Mesh2D(env, 3, 3, router_latency=4)
        out = mesh.bulk_uncontended_latencies(
            [(1, 1)], [(1, 1)], size_flits=16)
        assert out.tolist() == [4]

    def test_wide_mesh_batch_shape_and_dtype(self):
        env = Environment()
        mesh = Mesh2D(env, 16, 16)
        rng = np.random.default_rng(0)
        n = 5_000
        srcs = rng.integers(0, 16, (n, 2))
        dsts = rng.integers(0, 16, (n, 2))
        out = mesh.bulk_uncontended_latencies(srcs, dsts, 32)
        assert out.shape == (n,)
        hops = np.abs(srcs - dsts).sum(axis=1)
        np.testing.assert_array_equal(
            out, np.where(hops == 0, 2, hops * 2 + 32))

    def test_rejects_bad_inputs(self):
        env = Environment()
        mesh = Mesh2D(env, 2, 2)
        with pytest.raises(ValueError):
            mesh.bulk_uncontended_latencies([(0, 0)], [(5, 0)], 8)
        with pytest.raises(ValueError):
            mesh.bulk_uncontended_latencies([(0, 0)], [(1, 1)], 0)
        with pytest.raises(ValueError):
            mesh.bulk_uncontended_latencies([(0, 0)], [(1, 1)], 8,
                                            plane="warp")
        with pytest.raises(ValueError):
            mesh.bulk_uncontended_latencies([(0, 0), (1, 1)], [(1, 1)], 8)
