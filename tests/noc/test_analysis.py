"""Tests for the static NoC analysis helpers."""

import pytest

from repro.noc import (
    DMA_REQUEST_PLANE,
    Mesh2D,
    MessageKind,
    Packet,
    average_distance,
    bisection_bandwidth_flits,
    bisection_links,
    link_utilizations,
    mesh_diameter,
    saturation_injection_rate,
    utilization_heatmap,
    zero_load_latency,
)
from repro.sim import Environment


class TestClosedForm:
    def test_zero_load_matches_simulation(self):
        env = Environment()
        mesh = Mesh2D(env, 3, 3, router_latency=2)
        packet = Packet(src=(0, 0), dst=(2, 2),
                        plane=DMA_REQUEST_PLANE,
                        kind=MessageKind.DMA_REQ, payload_flits=15)
        mesh.send(packet)
        env.run()
        predicted = zero_load_latency((0, 0), (2, 2), 15,
                                      router_latency=2)
        assert packet.latency == predicted

    def test_zero_load_local(self):
        assert zero_load_latency((1, 1), (1, 1), 100,
                                 router_latency=3) == 3

    def test_diameter(self):
        assert mesh_diameter(4, 3) == 5
        assert mesh_diameter(1, 1) == 0
        with pytest.raises(ValueError):
            mesh_diameter(0, 1)

    def test_average_distance_2x2(self):
        # Pairs: 8 at distance 1, 4 at distance 2 -> 16/12.
        assert average_distance(2, 2) == pytest.approx(16 / 12)

    def test_average_distance_single_tile(self):
        assert average_distance(1, 1) == 0.0

    def test_bisection(self):
        assert bisection_links(4, 3) == 6
        assert bisection_links(1, 3) == 0
        assert bisection_bandwidth_flits(4, 3, planes=2) == 12

    def test_saturation_rate(self):
        # 4x4 mesh: B = 8, N = 16 -> r = 1.0 flits/cycle/tile.
        assert saturation_injection_rate(4, 4) == pytest.approx(1.0)
        # Wider meshes saturate at lower per-tile rates.
        assert saturation_injection_rate(8, 8) < \
            saturation_injection_rate(4, 4)

    def test_saturation_one_column(self):
        assert saturation_injection_rate(1, 4) == float("inf")


class TestPostRunAnalysis:
    def _loaded_mesh(self):
        env = Environment()
        mesh = Mesh2D(env, 3, 1)
        for _ in range(4):
            mesh.send(Packet(src=(0, 0), dst=(2, 0),
                             plane=DMA_REQUEST_PLANE,
                             kind=MessageKind.DMA_REQ,
                             payload_flits=20))
        env.run()
        return mesh

    def test_link_utilizations_sorted(self):
        mesh = self._loaded_mesh()
        utils = link_utilizations(mesh, DMA_REQUEST_PLANE)
        flits = [u.flits for u in utils]
        assert flits == sorted(flits, reverse=True)
        assert utils[0].flits == 4 * 21

    def test_unknown_plane(self):
        mesh = self._loaded_mesh()
        with pytest.raises(ValueError):
            link_utilizations(mesh, "warp")

    def test_heatmap_shape_and_peak(self):
        mesh = self._loaded_mesh()
        text = utilization_heatmap(mesh, DMA_REQUEST_PLANE)
        rows = [l for l in text.splitlines() if l.startswith("|")]
        assert len(rows) == 1
        assert "@" in rows[0]   # the forwarding tiles saturate

    def test_heatmap_empty_plane(self):
        mesh = self._loaded_mesh()
        text = utilization_heatmap(mesh, "coh-req")
        assert "peak" in text
