"""Tests for XY routing and routing-table generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc import (
    build_routing_table,
    hop_count,
    route_hops,
    routes_are_minimal_and_deadlock_free,
    xy_route,
)


class TestXyRoute:
    def test_straight_line_x(self):
        assert xy_route((0, 0), (3, 0)) == [(0, 0), (1, 0), (2, 0), (3, 0)]

    def test_straight_line_y(self):
        assert xy_route((1, 0), (1, 2)) == [(1, 0), (1, 1), (1, 2)]

    def test_x_before_y(self):
        path = xy_route((0, 0), (2, 2))
        assert path == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]

    def test_self_route(self):
        assert xy_route((1, 1), (1, 1)) == [(1, 1)]

    def test_negative_direction(self):
        path = xy_route((2, 2), (0, 0))
        assert path[0] == (2, 2) and path[-1] == (0, 0)
        assert len(path) == 5

    def test_hops_adjacent(self):
        for a, b in route_hops((0, 0), (3, 2)):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_hop_count_is_manhattan(self):
        assert hop_count((0, 0), (3, 2)) == 5


class TestInvariants:
    def test_minimal_and_deadlock_free_4x3(self):
        assert routes_are_minimal_and_deadlock_free(4, 3)

    def test_minimal_and_deadlock_free_1x1(self):
        assert routes_are_minimal_and_deadlock_free(1, 1)

    @given(cols=st.integers(1, 5), rows=st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_all_small_meshes(self, cols, rows):
        assert routes_are_minimal_and_deadlock_free(cols, rows)

    @given(sx=st.integers(0, 7), sy=st.integers(0, 7),
           dx=st.integers(0, 7), dy=st.integers(0, 7))
    @settings(max_examples=200, deadline=None)
    def test_route_length_property(self, sx, sy, dx, dy):
        path = xy_route((sx, sy), (dx, dy))
        assert len(path) == hop_count((sx, sy), (dx, dy)) + 1
        assert path[0] == (sx, sy)
        assert path[-1] == (dx, dy)


class TestRoutingTable:
    def test_next_hop_follows_xy(self):
        table = build_routing_table((0, 0), 4, 3)
        assert table[(3, 0)] == (1, 0)
        assert table[(0, 2)] == (0, 1)
        assert table[(2, 2)] == (1, 0)   # X first

    def test_local_maps_to_self(self):
        table = build_routing_table((1, 1), 3, 3)
        assert table[(1, 1)] == (1, 1)

    def test_covers_whole_mesh(self):
        table = build_routing_table((0, 0), 4, 3)
        assert len(table) == 12

    def test_invalid_tile(self):
        with pytest.raises(ValueError):
            build_routing_table((5, 0), 3, 3)

    def test_table_consistent_with_route(self):
        cols, rows = 4, 4
        for tx in range(cols):
            for ty in range(rows):
                table = build_routing_table((tx, ty), cols, rows)
                for dx in range(cols):
                    for dy in range(rows):
                        if (dx, dy) == (tx, ty):
                            continue
                        assert table[(dx, dy)] == \
                            xy_route((tx, ty), (dx, dy))[1]
