"""Conservation properties of the NoC accounting."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.noc import (
    DMA_REQUEST_PLANE,
    Mesh2D,
    MessageKind,
    Packet,
    hop_count,
)
from repro.sim import Environment


@given(cols=st.integers(2, 4), rows=st.integers(2, 4),
       flows=st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15),
                                st.integers(0, 30)),
                      min_size=1, max_size=10))
@settings(max_examples=40, deadline=None)
def test_flit_hops_equal_sum_of_size_times_distance(cols, rows, flows):
    """Every flit is accounted on every link it crosses, exactly once."""
    env = Environment()
    mesh = Mesh2D(env, cols, rows)
    expected = 0
    for a, b, payload in flows:
        src = (a % cols, (a // cols) % rows)
        dst = (b % cols, (b // cols) % rows)
        mesh.send(Packet(src=src, dst=dst, plane=DMA_REQUEST_PLANE,
                         kind=MessageKind.DMA_REQ,
                         payload_flits=payload))
        expected += (payload + 1) * hop_count(src, dst)
    env.run()
    assert mesh.flit_hops == expected
    assert sum(mesh.plane_flits().values()) == expected


@given(cols=st.integers(2, 4), rows=st.integers(2, 4),
       n_packets=st.integers(1, 12), seed=st.integers(0, 99))
@settings(max_examples=40, deadline=None)
def test_every_injected_packet_ejects_exactly_once(cols, rows,
                                                   n_packets, seed):
    env = Environment()
    mesh = Mesh2D(env, cols, rows)
    rng = np.random.default_rng(seed)
    destinations = {}
    for index in range(n_packets):
        src = (int(rng.integers(cols)), int(rng.integers(rows)))
        dst = (int(rng.integers(cols)), int(rng.integers(rows)))
        mesh.send(Packet(src=src, dst=dst, plane=DMA_REQUEST_PLANE,
                         kind=MessageKind.DMA_REQ, payload_flits=3,
                         tag=f"t{index}"))
        destinations.setdefault(dst, []).append(f"t{index}")
    env.run()
    assert mesh.packets_delivered == n_packets
    ejected = []
    for coord, tags in destinations.items():
        inbox = mesh.inbox(coord, DMA_REQUEST_PLANE)
        while True:
            packet = inbox.try_get()
            if packet is None:
                break
            ejected.append(packet.tag)
    assert sorted(ejected) == sorted(f"t{i}" for i in range(n_packets))
