"""Conservation properties of the NoC accounting."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.noc import (
    DMA_REQUEST_PLANE,
    Mesh2D,
    MessageKind,
    Packet,
    hop_count,
)
from repro.sim import Environment


@given(cols=st.integers(2, 4), rows=st.integers(2, 4),
       flows=st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15),
                                st.integers(0, 30)),
                      min_size=1, max_size=10))
@settings(max_examples=40, deadline=None)
def test_flit_hops_equal_sum_of_size_times_distance(cols, rows, flows):
    """Every flit is accounted on every link it crosses, exactly once."""
    env = Environment()
    mesh = Mesh2D(env, cols, rows)
    expected = 0
    for a, b, payload in flows:
        src = (a % cols, (a // cols) % rows)
        dst = (b % cols, (b // cols) % rows)
        mesh.send(Packet(src=src, dst=dst, plane=DMA_REQUEST_PLANE,
                         kind=MessageKind.DMA_REQ,
                         payload_flits=payload))
        expected += (payload + 1) * hop_count(src, dst)
    env.run()
    assert mesh.flit_hops == expected
    assert sum(mesh.plane_flits().values()) == expected


@given(cols=st.integers(2, 4), rows=st.integers(2, 4),
       n_packets=st.integers(1, 12), seed=st.integers(0, 99))
@settings(max_examples=40, deadline=None)
def test_every_injected_packet_ejects_exactly_once(cols, rows,
                                                   n_packets, seed):
    env = Environment()
    mesh = Mesh2D(env, cols, rows)
    rng = np.random.default_rng(seed)
    destinations = {}
    for index in range(n_packets):
        src = (int(rng.integers(cols)), int(rng.integers(rows)))
        dst = (int(rng.integers(cols)), int(rng.integers(rows)))
        mesh.send(Packet(src=src, dst=dst, plane=DMA_REQUEST_PLANE,
                         kind=MessageKind.DMA_REQ, payload_flits=3,
                         tag=f"t{index}"))
        destinations.setdefault(dst, []).append(f"t{index}")
    env.run()
    assert mesh.packets_delivered == n_packets
    ejected = []
    for coord, tags in destinations.items():
        inbox = mesh.inbox(coord, DMA_REQUEST_PLANE)
        while True:
            packet = inbox.try_get()
            if packet is None:
                break
            ejected.append(packet.tag)
    assert sorted(ejected) == sorted(f"t{i}" for i in range(n_packets))


@given(cols=st.integers(2, 4), rows=st.integers(2, 4),
       n_packets=st.integers(1, 12), drop_p=st.floats(0.0, 1.0),
       seed=st.integers(0, 99))
@settings(max_examples=40, deadline=None)
def test_conservation_holds_under_injected_delivery_faults(
        cols, rows, n_packets, drop_p, seed):
    """Injected drops/corruptions never lose accounting: every packet
    is delivered, dropped or corrupted — exactly once — and a faulted
    wormhole still releases all of its links (flit-hop conservation)."""
    from repro.faults import FaultInjector, FaultPlan, FaultSpec

    env = Environment()
    mesh = Mesh2D(env, cols, rows)
    specs = []
    if drop_p > 0.0:
        specs = [FaultSpec(kind="link_drop", probability=drop_p,
                           count=None)]
    mesh.fault_injector = FaultInjector(FaultPlan(specs, seed=seed))

    rng = np.random.default_rng(seed)
    expected_hops = 0
    for _ in range(n_packets):
        src = (int(rng.integers(cols)), int(rng.integers(rows)))
        dst = (int(rng.integers(cols)), int(rng.integers(rows)))
        mesh.send(Packet(src=src, dst=dst, plane=DMA_REQUEST_PLANE,
                         kind=MessageKind.DMA_REQ, payload_flits=3))
        expected_hops += 4 * hop_count(src, dst)
    env.run()
    assert (mesh.packets_delivered + mesh.packets_dropped
            + mesh.packets_corrupted) == n_packets
    # Links were crossed (and accounted) before the fault struck.
    assert mesh.flit_hops == expected_hops


def test_dropped_packet_does_not_wedge_the_link():
    """A delivery fault strikes after the wormhole released its links:
    traffic behind the dropped packet keeps flowing."""
    from repro.faults import FaultInjector, FaultPlan, FaultSpec

    env = Environment()
    mesh = Mesh2D(env, 3, 1)
    mesh.fault_injector = FaultInjector(FaultPlan(
        [FaultSpec(kind="link_drop", at_cycle=0, count=1)]))
    for tag in ("victim", "survivor-1", "survivor-2"):
        mesh.send(Packet(src=(0, 0), dst=(2, 0),
                         plane=DMA_REQUEST_PLANE,
                         kind=MessageKind.DMA_REQ, payload_flits=5,
                         tag=tag))
    env.run()
    assert mesh.packets_dropped == 1
    assert mesh.packets_delivered == 2
    inbox = mesh.inbox((2, 0), DMA_REQUEST_PLANE)
    arrived = {inbox.try_get().tag, inbox.try_get().tag}
    assert arrived == {"survivor-1", "survivor-2"}
