"""Tests for the Sequential model container."""

import numpy as np
import pytest

from repro.nn import Dense, Dropout, ReLU, Sequential, Softmax


def mlp(units=(8, 4), input_dim=6, seed=0):
    layers = []
    for u in units[:-1]:
        layers += [Dense(u), ReLU()]
    layers += [Dense(units[-1]), Softmax()]
    return Sequential(layers).build(input_dim, seed=seed)


class TestBuild:
    def test_build_sets_dims(self):
        model = mlp()
        assert model.input_dim == 6
        assert model.output_dim == 4

    def test_add_after_build_fails(self):
        model = mlp()
        with pytest.raises(RuntimeError):
            model.add(Dense(2))

    def test_forward_before_build_fails(self):
        model = Sequential([Dense(4)])
        with pytest.raises(RuntimeError):
            model.predict(np.zeros(4))

    def test_invalid_input_dim(self):
        with pytest.raises(ValueError):
            Sequential([Dense(4)]).build(0)

    def test_duplicate_layer_names_uniquified(self):
        model = Sequential([Dense(4), Dense(4), Dense(4)]).build(4)
        names = [l.name for l in model.layers]
        assert len(set(names)) == 3

    def test_deterministic_init_per_seed(self):
        a, b = mlp(seed=3), mlp(seed=3)
        np.testing.assert_array_equal(a.layers[0].weights,
                                      b.layers[0].weights)
        c = mlp(seed=4)
        assert not np.array_equal(a.layers[0].weights, c.layers[0].weights)


class TestForward:
    def test_predict_shape(self, rng):
        model = mlp()
        out = model.predict(rng.uniform(-1, 1, (5, 6)))
        assert out.shape == (5, 4)

    def test_single_vector_promoted_to_batch(self, rng):
        model = mlp()
        out = model.predict(rng.uniform(-1, 1, 6))
        assert out.shape == (1, 4)

    def test_softmax_output_normalized(self, rng):
        model = mlp()
        out = model.predict(rng.uniform(-1, 1, (5, 6)))
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_dropout_inactive_in_predict(self, rng):
        model = Sequential([Dense(8), Dropout(0.9), Dense(4),
                            Softmax()]).build(6)
        x = rng.uniform(-1, 1, (3, 6))
        np.testing.assert_array_equal(model.predict(x), model.predict(x))


class TestIntrospection:
    def test_topology_matches_paper_style(self):
        model = mlp(units=(256, 128, 64, 32, 10), input_dim=1024)
        assert model.topology == [1024, 256, 128, 64, 32, 10]

    def test_n_parameters(self):
        model = Sequential([Dense(8)]).build(4)
        assert model.n_parameters == 4 * 8 + 8

    def test_summary_contains_layers_and_total(self):
        text = mlp().summary()
        assert "dense" in text
        assert "Total params" in text

    def test_dense_layers_excludes_activations(self):
        model = mlp(units=(8, 4))
        assert len(model.dense_layers()) == 2


class TestWeights:
    def test_get_set_roundtrip(self, rng):
        model = mlp()
        weights = model.get_weights()
        other = mlp(seed=99)
        other.set_weights(weights)
        x = rng.uniform(-1, 1, (3, 6))
        np.testing.assert_array_equal(model.predict(x), other.predict(x))

    def test_set_weights_missing_key(self):
        model = mlp()
        with pytest.raises(KeyError):
            model.set_weights({})

    def test_set_weights_shape_mismatch(self):
        model = mlp()
        weights = model.get_weights()
        key = next(iter(weights))
        weights[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.set_weights(weights)

    def test_config_lists_all_layers(self):
        model = mlp()
        config = model.config()
        assert config["input_dim"] == 6
        assert len(config["layers"]) == len(model.layers)
