"""Tests for model serialization (JSON topology + NPZ weights)."""

import json

import numpy as np
import pytest

from repro.nn import (
    Dense,
    Dropout,
    ReLU,
    Sequential,
    Softmax,
    load_model,
    model_artifacts,
    model_from_json,
    model_to_json,
    save_model,
)


def sample_model(seed=0):
    return Sequential([Dense(8), ReLU(), Dropout(0.2), Dense(3),
                       Softmax()], name="sample").build(6, seed=seed)


class TestJson:
    def test_json_is_valid_and_complete(self):
        text = model_to_json(sample_model())
        config = json.loads(text)
        assert config["name"] == "sample"
        assert config["input_dim"] == 6
        assert len(config["layers"]) == 5

    def test_from_json_rebuilds_topology(self):
        model = sample_model()
        rebuilt = model_from_json(model_to_json(model))
        assert rebuilt.topology == model.topology
        assert rebuilt.input_dim == model.input_dim

    def test_rebuilt_model_has_fresh_weights(self):
        model = sample_model()
        rebuilt = model_from_json(model_to_json(model))
        # Weights are re-initialized, not carried by the JSON.
        assert rebuilt.n_parameters == model.n_parameters


class TestSaveLoad:
    def test_roundtrip_preserves_predictions(self, tmp_path, rng):
        model = sample_model()
        save_model(model, tmp_path / "m.json", tmp_path / "m.npz")
        loaded = load_model(tmp_path / "m.json", tmp_path / "m.npz")
        x = rng.uniform(-1, 1, (4, 6))
        np.testing.assert_array_equal(loaded.predict(x), model.predict(x))

    def test_files_created(self, tmp_path):
        save_model(sample_model(), tmp_path / "m.json", tmp_path / "m.npz")
        assert (tmp_path / "m.json").exists()
        assert (tmp_path / "m.npz").exists()

    def test_artifacts_pair(self):
        model = sample_model()
        json_text, weights = model_artifacts(model)
        assert json.loads(json_text)["name"] == "sample"
        assert "dense/weights" in weights
        assert "dense/bias" in weights
