"""Tests for BatchNormalization and its hls4ml fusion pass."""

import numpy as np
import pytest

from repro.hls4ml_flow import HlsConfig, compile_model
from repro.nn import (
    Adam,
    BatchNormalization,
    Dense,
    ReLU,
    Sequential,
    Softmax,
    fit,
    layer_from_config,
    model_from_json,
    model_to_json,
)


def build_bn(dim=8):
    layer = BatchNormalization()
    layer.build(dim, np.random.default_rng(0))
    return layer


class TestLayer:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatchNormalization(momentum=1.0)
        with pytest.raises(ValueError):
            BatchNormalization(eps=0.0)

    def test_training_normalizes_batch(self, rng):
        layer = build_bn()
        x = rng.normal(5.0, 3.0, (256, 8))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_moving_stats_converge(self, rng):
        layer = BatchNormalization(momentum=0.5)
        layer.build(4, rng)
        x = rng.normal(2.0, 1.5, (512, 4))
        for _ in range(20):
            layer.forward(x, training=True)
        np.testing.assert_allclose(layer.moving_mean, x.mean(axis=0),
                                   rtol=0.05)
        np.testing.assert_allclose(layer.moving_var, x.var(axis=0),
                                   rtol=0.1)

    def test_inference_uses_moving_stats(self, rng):
        layer = build_bn()
        x = rng.normal(0, 1, (32, 8))
        layer.forward(x, training=True)
        # Inference on a constant input is deterministic and affine.
        y1 = layer.forward(np.zeros((1, 8)))
        y2 = layer.forward(np.zeros((1, 8)))
        np.testing.assert_array_equal(y1, y2)

    def test_backward_gradient_numeric(self, rng):
        layer = build_bn(4)
        x = rng.normal(0, 1, (16, 4))
        out = layer.forward(x, training=True)
        grad_out = rng.normal(0, 1, out.shape)
        layer.backward(grad_out)
        eps = 1e-6
        layer.gamma[1] += eps
        up = (layer.forward(x, training=True) * grad_out).sum()
        layer.gamma[1] -= 2 * eps
        down = (layer.forward(x, training=True) * grad_out).sum()
        layer.gamma[1] += eps
        layer.forward(x, training=True)
        grads = layer.backward(grad_out)
        numeric = (up - down) / (2 * eps)
        assert layer.grads()["gamma"][1] == pytest.approx(numeric,
                                                          rel=1e-4)

    def test_fold_constants(self, rng):
        layer = build_bn(4)
        x = rng.normal(3.0, 2.0, (64, 4))
        for _ in range(50):
            layer.forward(x, training=True)
        scale, shift = layer.fold_constants()
        expected = layer.forward(x, training=False)
        np.testing.assert_allclose(scale * x + shift, expected,
                                   rtol=1e-10)

    def test_config_roundtrip(self):
        layer = BatchNormalization(momentum=0.9, eps=1e-2, name="bn0")
        rebuilt = layer_from_config(layer.config())
        assert isinstance(rebuilt, BatchNormalization)
        assert rebuilt.momentum == 0.9
        assert rebuilt.eps == 1e-2

    def test_trainable_in_model(self, rng):
        model = Sequential([Dense(8), BatchNormalization(), ReLU(),
                            Dense(2), Softmax()]).build(4, seed=0)
        x = rng.normal(0, 1, (64, 4))
        y = np.eye(2)[rng.integers(0, 2, 64)]
        history = fit(model, x, y, epochs=10, optimizer=Adam(0.01))
        assert history.loss[-1] < history.loss[0]

    def test_serialization_carries_moving_stats(self, rng):
        model = Sequential([Dense(8), BatchNormalization(),
                            ReLU()]).build(4, seed=0)
        x = rng.normal(0, 1, (32, 4))
        model.forward(x, training=True)
        weights = model.get_weights()
        assert any("moving_mean" in key for key in weights)
        clone = model_from_json(model_to_json(model))
        clone.set_weights(weights)
        np.testing.assert_array_equal(clone.predict(x), model.predict(x))


class TestFusion:
    def _trained_bn_model(self, rng):
        model = Sequential([Dense(16), BatchNormalization(), ReLU(),
                            Dense(4), Softmax()], name="bn").build(8,
                                                                   seed=0)
        x = rng.normal(0, 1, (128, 8))
        y = np.eye(4)[rng.integers(0, 4, 128)]
        fit(model, x, y, epochs=3, optimizer=Adam(0.01))
        return model

    def test_bn_folds_into_dense(self, rng):
        model = self._trained_bn_model(rng)
        hls = compile_model(model, HlsConfig(reuse_factor=4))
        # Only the two Dense layers survive; the BN disappeared.
        assert len(hls.layers) == 2
        assert hls.layers[0].activation == "relu"

    def test_folded_model_matches_float_inference(self, rng):
        model = self._trained_bn_model(rng)
        hls = compile_model(
            model, HlsConfig(precision="ap_fixed<28,14>", reuse_factor=4))
        x = rng.normal(0, 1, (32, 8))
        # High precision: the folded fixed-point model tracks the float
        # model (which applies BN at inference) very closely.
        np.testing.assert_allclose(hls.predict(x), model.predict(x),
                                   atol=1e-3)

    def test_bn_before_dense_rejected(self):
        model = Sequential([BatchNormalization(), Dense(4)],
                           name="bad").build(4)
        with pytest.raises(ValueError, match="precedes"):
            compile_model(model, HlsConfig(reuse_factor=1))

    def test_bn_after_activation_rejected(self):
        model = Sequential([Dense(4), ReLU(), BatchNormalization()],
                           name="bad").build(4)
        with pytest.raises(ValueError, match="folded"):
            compile_model(model, HlsConfig(reuse_factor=1))

    def test_double_bn_rejected(self):
        model = Sequential([Dense(4), BatchNormalization(),
                            BatchNormalization()], name="bad").build(4)
        with pytest.raises(ValueError, match="two BatchNormalization"):
            compile_model(model, HlsConfig(reuse_factor=1))
