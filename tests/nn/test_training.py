"""Tests for losses, optimizers and the training loop."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dense,
    ReLU,
    SGD,
    Sequential,
    Sigmoid,
    Softmax,
    accuracy,
    categorical_crossentropy,
    fit,
    iterate_minibatches,
    mean_squared_error,
)


def toy_classification(n=200, seed=0):
    """Two linearly separable blobs in 4-D, one-hot labels."""
    rng = np.random.default_rng(seed)
    x0 = rng.normal(-1.0, 0.4, (n // 2, 4))
    x1 = rng.normal(+1.0, 0.4, (n // 2, 4))
    x = np.vstack([x0, x1])
    y = np.zeros((n, 2))
    y[:n // 2, 0] = 1.0
    y[n // 2:, 1] = 1.0
    return x, y


class TestLosses:
    def test_crossentropy_perfect_prediction_near_zero(self):
        probs = np.array([[1.0, 0.0], [0.0, 1.0]])
        onehot = probs.copy()
        loss, _ = categorical_crossentropy(probs, onehot)
        assert loss == pytest.approx(0.0, abs=1e-9)

    def test_crossentropy_gradient_direction(self):
        probs = np.array([[0.7, 0.3]])
        onehot = np.array([[1.0, 0.0]])
        _, grad = categorical_crossentropy(probs, onehot)
        assert grad[0, 0] < 0   # push prob of true class up
        assert grad[0, 1] > 0

    def test_mse_zero_for_equal(self):
        pred = np.ones((3, 4))
        loss, grad = mean_squared_error(pred, pred.copy())
        assert loss == 0.0
        np.testing.assert_array_equal(grad, 0.0)

    def test_mse_value(self):
        loss, _ = mean_squared_error(np.zeros((1, 4)), np.ones((1, 4)))
        assert loss == pytest.approx(1.0)


class TestOptimizers:
    def _one_step_decreases_loss(self, optimizer):
        x, y = toy_classification()
        model = Sequential([Dense(8), ReLU(), Dense(2),
                            Softmax()]).build(4, seed=1)
        before = categorical_crossentropy(model.predict(x), y)[0]
        for _ in range(5):
            pred = model.forward(x, training=True)
            _, grad = categorical_crossentropy(pred, y)
            model.backward(grad)
            optimizer.step(model)
        after = categorical_crossentropy(model.predict(x), y)[0]
        assert after < before

    def test_sgd_decreases_loss(self):
        self._one_step_decreases_loss(SGD(lr=0.5))

    def test_sgd_momentum_decreases_loss(self):
        self._one_step_decreases_loss(SGD(lr=0.2, momentum=0.9))

    def test_adam_decreases_loss(self):
        self._one_step_decreases_loss(Adam(lr=0.01))


class TestFit:
    def test_learns_separable_problem(self):
        x, y = toy_classification()
        model = Sequential([Dense(16), ReLU(), Dense(2),
                            Softmax()]).build(4, seed=1)
        history = fit(model, x, y, epochs=20, batch_size=32,
                      optimizer=Adam(0.01), validation=(x, y),
                      metric=accuracy)
        assert history.val_metric[-1] > 0.95
        assert history.loss[-1] < history.loss[0]

    def test_autoencoder_mse_decreases(self, rng):
        x = rng.uniform(0, 1, (128, 8))
        model = Sequential([Dense(4), ReLU(), Dense(8),
                            Sigmoid()]).build(8, seed=2)
        history = fit(model, x, x, loss="mse", epochs=15,
                      optimizer=Adam(0.01))
        assert history.loss[-1] < history.loss[0]

    def test_unknown_loss_rejected(self):
        model = Sequential([Dense(2), Softmax()]).build(4)
        with pytest.raises(ValueError):
            fit(model, np.zeros((4, 4)), np.zeros((4, 2)), loss="hinge")

    def test_history_lengths(self):
        x, y = toy_classification(n=64)
        model = Sequential([Dense(2), Softmax()]).build(4, seed=1)
        history = fit(model, x, y, epochs=3, validation=(x, y),
                      metric=accuracy)
        assert len(history.loss) == 3
        assert len(history.val_loss) == 3
        assert len(history.val_metric) == 3

    def test_reproducible_with_seed(self):
        x, y = toy_classification(n=64)

        def run():
            model = Sequential([Dense(4), ReLU(), Dense(2),
                                Softmax()]).build(4, seed=5)
            fit(model, x, y, epochs=2, seed=9, optimizer=SGD(lr=0.1))
            return model.predict(x)

        np.testing.assert_array_equal(run(), run())


class TestMinibatches:
    def test_covers_all_samples(self, rng):
        x = np.arange(10).reshape(10, 1).astype(float)
        y = x.copy()
        seen = []
        for xb, yb in iterate_minibatches(x, y, 3, rng):
            np.testing.assert_array_equal(xb, yb)
            seen.extend(xb[:, 0].tolist())
        assert sorted(seen) == list(range(10))

    def test_batch_sizes(self, rng):
        x = np.zeros((10, 1))
        sizes = [len(xb) for xb, _ in iterate_minibatches(x, x, 4, rng)]
        assert sizes == [4, 4, 2]
