"""Tests for the evaluation metrics of Sec. VI."""

import numpy as np
import pytest

from repro.nn import accuracy, confusion_matrix, psnr, reconstruction_error


class TestAccuracy:
    def test_perfect(self):
        probs = np.eye(10)
        assert accuracy(probs, probs) == 1.0

    def test_half_right(self):
        probs = np.array([[0.9, 0.1], [0.9, 0.1]])
        onehot = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert accuracy(probs, onehot) == 0.5

    def test_single_sample(self):
        assert accuracy(np.array([0.2, 0.8]), np.array([0.0, 1.0])) == 1.0


class TestReconstructionError:
    def test_zero_for_identical(self, rng):
        x = rng.uniform(0, 1, (4, 16))
        assert reconstruction_error(x, x) == 0.0

    def test_scales_with_perturbation(self, rng):
        x = rng.uniform(0.5, 1.0, (8, 64))
        small = reconstruction_error(x + 0.01, x)
        large = reconstruction_error(x + 0.1, x)
        assert small < large

    def test_paper_metric_definition(self):
        target = np.array([[3.0, 4.0]])      # norm 5
        pred = target + np.array([[0.3, 0.4]])  # error norm 0.5
        assert reconstruction_error(pred, target) == pytest.approx(0.1)

    def test_zero_target_guarded(self):
        assert np.isfinite(reconstruction_error(np.ones((1, 4)),
                                                np.zeros((1, 4))))


class TestPsnr:
    def test_identical_is_infinite(self):
        x = np.ones((2, 4))
        assert psnr(x, x) == float("inf")

    def test_known_value(self):
        pred = np.zeros((1, 4))
        target = np.full((1, 4), 0.1)
        assert psnr(pred, target) == pytest.approx(20.0)


class TestConfusionMatrix:
    def test_diagonal_for_perfect(self):
        probs = np.eye(3)
        matrix = confusion_matrix(probs, probs, 3)
        np.testing.assert_array_equal(matrix, np.eye(3, dtype=int))

    def test_counts_sum_to_samples(self, rng):
        probs = rng.uniform(0, 1, (20, 4))
        onehot = np.eye(4)[rng.integers(0, 4, 20)]
        matrix = confusion_matrix(probs, onehot, 4)
        assert matrix.sum() == 20
