"""Tests for the NN layer implementations."""

import numpy as np
import pytest

from repro.nn import (
    Dense,
    Dropout,
    GaussianNoise,
    ReLU,
    Sigmoid,
    Softmax,
    inference_layers,
    layer_from_config,
)


def build(layer, input_dim, seed=0):
    layer.build(input_dim, np.random.default_rng(seed))
    return layer


class TestDense:
    def test_forward_shape(self, rng):
        layer = build(Dense(8), 4)
        out = layer.forward(rng.uniform(-1, 1, (3, 4)))
        assert out.shape == (3, 8)

    def test_forward_is_affine(self, rng):
        layer = build(Dense(8), 4)
        x = rng.uniform(-1, 1, (1, 4))
        expected = x @ layer.weights + layer.bias
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_glorot_init_scale(self):
        layer = build(Dense(100), 400)
        limit = np.sqrt(6.0 / 500)
        assert np.abs(layer.weights).max() <= limit
        assert layer.weights.std() > limit / 4   # not degenerate

    def test_backward_gradients_numeric(self, rng):
        layer = build(Dense(3), 5)
        x = rng.uniform(-1, 1, (2, 5))
        out = layer.forward(x, training=True)
        grad_out = rng.uniform(-1, 1, out.shape)
        grad_in = layer.backward(grad_out)
        # Numerical check of dL/dW for one entry (L = sum(out * grad_out)).
        eps = 1e-6
        layer.weights[0, 0] += eps
        bumped = (layer.forward(x) * grad_out).sum()
        layer.weights[0, 0] -= 2 * eps
        dropped = (layer.forward(x) * grad_out).sum()
        layer.weights[0, 0] += eps
        numeric = (bumped - dropped) / (2 * eps)
        assert layer.grads()["weights"][0, 0] == pytest.approx(
            numeric, rel=1e-4)
        assert grad_in.shape == x.shape

    def test_backward_without_training_forward_fails(self, rng):
        layer = build(Dense(3), 5)
        layer.forward(rng.uniform(-1, 1, (2, 5)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((2, 3)))

    def test_invalid_units(self):
        with pytest.raises(ValueError):
            Dense(0)

    def test_n_weights(self):
        layer = build(Dense(256), 1024)
        assert layer.n_weights == 1024 * 256


class TestActivations:
    def test_relu(self):
        layer = ReLU()
        out = layer.forward(np.array([[-2.0, 0.0, 3.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 3.0]])

    def test_relu_gradient_masks(self):
        layer = ReLU()
        layer.forward(np.array([[-2.0, 0.0, 3.0]]), training=True)
        grad = layer.backward(np.ones((1, 3)))
        np.testing.assert_array_equal(grad, [[0.0, 0.0, 1.0]])

    def test_sigmoid_range(self, rng):
        layer = Sigmoid()
        out = layer.forward(rng.uniform(-100, 100, (4, 7)))
        assert np.all((out >= 0) & (out <= 1))
        mid = layer.forward(rng.uniform(-5, 5, (4, 7)))
        assert np.all((mid > 0) & (mid < 1))

    def test_sigmoid_gradient(self):
        layer = Sigmoid()
        y = layer.forward(np.array([[0.0]]), training=True)
        grad = layer.backward(np.ones((1, 1)))
        assert grad[0, 0] == pytest.approx(0.25)

    def test_softmax_rows_sum_to_one(self, rng):
        layer = Softmax()
        out = layer.forward(rng.uniform(-5, 5, (6, 10)))
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_softmax_stable_for_large_logits(self):
        layer = Softmax()
        out = layer.forward(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(out, [[0.5, 0.5]])


class TestDropout:
    def test_identity_at_inference(self, rng):
        layer = Dropout(0.5)
        x = rng.uniform(-1, 1, (4, 8))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_training_zeroes_and_rescales(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((200, 50))
        out = layer.forward(x, training=True)
        kept = out[out != 0]
        assert np.allclose(kept, 2.0)              # inverted scaling
        assert 0.3 < (out == 0).mean() < 0.7       # roughly half dropped

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_rate_zero_is_identity_in_training(self, rng):
        layer = Dropout(0.0)
        x = rng.uniform(-1, 1, (4, 8))
        np.testing.assert_array_equal(layer.forward(x, training=True), x)


class TestGaussianNoise:
    def test_identity_at_inference(self, rng):
        layer = GaussianNoise(0.3)
        x = rng.uniform(0, 1, (4, 8))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_adds_noise_in_training(self):
        layer = GaussianNoise(0.3, rng=np.random.default_rng(1))
        x = np.zeros((100, 100))
        out = layer.forward(x, training=True)
        assert out.std() == pytest.approx(0.3, rel=0.05)

    def test_gradient_passthrough(self):
        layer = GaussianNoise(0.3)
        grad = np.ones((2, 3))
        np.testing.assert_array_equal(layer.backward(grad), grad)

    def test_negative_stddev_rejected(self):
        with pytest.raises(ValueError):
            GaussianNoise(-1.0)


class TestConfigRoundtrip:
    def test_dense_roundtrip(self):
        layer = build(Dense(8, name="enc"), 4)
        rebuilt = layer_from_config(layer.config())
        assert isinstance(rebuilt, Dense)
        assert rebuilt.units == 8
        assert rebuilt.name == "enc"

    def test_dropout_roundtrip(self):
        rebuilt = layer_from_config(Dropout(0.2).config())
        assert isinstance(rebuilt, Dropout)
        assert rebuilt.rate == 0.2

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            layer_from_config({"class_name": "Conv2D", "name": "x"})

    def test_inference_layers_drop_training_only(self):
        layers = [Dense(4), ReLU(), Dropout(0.2), GaussianNoise(0.1),
                  Softmax()]
        kept = inference_layers(layers)
        assert [type(l).__name__ for l in kept] == ["Dense", "ReLU",
                                                    "Softmax"]
