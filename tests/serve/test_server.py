"""End-to-end tests for the multi-tenant inference server."""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan, FaultSpec, RecoveryPolicy
from repro.runtime import EspRuntime, chain
from repro.serve import (
    InferenceServer,
    REJECT_QUEUE_FULL,
    REJECT_TILE_UNAVAILABLE,
    REJECT_UNKNOWN_TENANT,
    ServerConfig,
    TenantConfig,
    TracedRequest,
)
from tests.conftest import make_runtime, make_soc, make_spec


def three_tile_specs():
    return [("a0", make_spec(name="a")),
            ("b0", make_spec(name="b")),
            ("c0", make_spec(name="c"))]


def make_server(recovery=None, specs=None, **server_kwargs):
    specs = specs if specs is not None else three_tile_specs()
    runtime = EspRuntime(make_soc(specs), recovery=recovery)
    server = InferenceServer(runtime, ServerConfig(**server_kwargs))
    return runtime, server


def frames_of(n, seed=0):
    return np.random.default_rng(seed).uniform(0, 1, (n, 16))


class TestSingleTenant:
    def test_single_request_bit_exact_with_executor_path(self):
        """Serving one request must reproduce ``esp_run`` bit-for-bit:
        the server adds scheduling, not arithmetic."""
        frames = frames_of(4)
        dataflow = chain("app", ["a0", "b0"])

        reference = make_runtime(three_tile_specs())
        expected = reference.esp_run(dataflow, frames, mode="p2p")

        _, server = make_server()
        server.register(TenantConfig(name="app", dataflow=dataflow))
        report = server.run_trace([TracedRequest(0, "app", frames)])

        assert len(report.completions) == 1
        completion = report.completions[0]
        np.testing.assert_array_equal(completion.outputs,
                                      expected.outputs)
        assert not completion.degraded
        assert completion.latency_cycles > 0
        assert completion.queue_cycles >= 0
        assert report.rejections == [] and report.failures == []

    def test_same_cycle_requests_coalesce_into_one_batch(self):
        _, server = make_server()
        server.register(TenantConfig(name="app",
                                     dataflow=chain("app", ["a0"])))
        trace = [TracedRequest(0, "app", frames_of(2, seed=s))
                 for s in range(3)]
        report = server.run_trace(trace)

        assert len(report.completions) == 3
        assert report.batches_by_tenant["app"] == 1
        assert all(c.batch_requests == 3 for c in report.completions)
        assert all(c.batch_frames == 6 for c in report.completions)
        # Each request's slice of the batch is its own data + 1.
        for completion, entry in zip(report.completions, trace):
            np.testing.assert_array_equal(completion.outputs,
                                          entry.frames + 1.0)

    def test_spread_requests_run_as_separate_batches(self):
        _, server = make_server()
        server.register(TenantConfig(name="app",
                                     dataflow=chain("app", ["a0"])))
        report = server.run_trace([
            TracedRequest(0, "app", frames_of(2)),
            TracedRequest(500_000, "app", frames_of(2)),
        ])
        assert len(report.completions) == 2
        assert report.batches_by_tenant["app"] == 2


class TestAdmissionIntegration:
    def test_queue_full_backpressure_surfaces_in_report(self):
        _, server = make_server(max_queue_depth=1)
        server.register(TenantConfig(name="app",
                                     dataflow=chain("app", ["a0"])))
        trace = [TracedRequest(0, "app", frames_of(1, seed=s))
                 for s in range(3)]
        report = server.run_trace(trace)

        assert len(report.completions) == 1
        assert len(report.rejections) == 2
        assert all(r.reason == REJECT_QUEUE_FULL
                   for r in report.rejections)
        assert report.admitted == 1

    def test_unknown_tenant_rejected_and_recorded(self):
        _, server = make_server()
        server.register(TenantConfig(name="app",
                                     dataflow=chain("app", ["a0"])))
        rejection = server.submit("ghost", frames_of(1))
        assert rejection.reason == REJECT_UNKNOWN_TENANT
        assert server.rejections == [rejection]

    def test_register_validates_devices_and_lifecycle(self):
        _, server = make_server()
        with pytest.raises(KeyError):
            server.register(TenantConfig(
                name="bad", dataflow=chain("bad", ["nope0"])))
        server.register(TenantConfig(name="app",
                                     dataflow=chain("app", ["a0"])))
        with pytest.raises(ValueError, match="already registered"):
            server.register(TenantConfig(name="app",
                                         dataflow=chain("x", ["b0"])))
        server.start()
        with pytest.raises(RuntimeError, match="before starting"):
            server.register(TenantConfig(name="late",
                                         dataflow=chain("l", ["c0"])))
        server.stop()


class TestConcurrentTenants:
    def test_disjoint_tenants_serve_concurrently(self):
        _, server = make_server()
        server.register(TenantConfig(name="x",
                                     dataflow=chain("x", ["a0"])))
        server.register(TenantConfig(name="y",
                                     dataflow=chain("y", ["b0"])))
        fx, fy = frames_of(4, seed=1), frames_of(4, seed=2)
        report = server.run_trace([TracedRequest(0, "x", fx),
                                   TracedRequest(0, "y", fy)])

        assert len(report.completions) == 2
        by_tenant = {c.tenant: c for c in report.completions}
        np.testing.assert_array_equal(by_tenant["x"].outputs, fx + 1.0)
        np.testing.assert_array_equal(by_tenant["y"].outputs, fy + 1.0)
        # Disjoint tile sets: neither tenant waited for a grant.
        assert report.arbiter_grants == 2
        assert report.arbiter_wait_summary.max == 0
        # Concurrency: the runs overlapped in simulated time.
        assert by_tenant["x"].started_at < by_tenant["y"].completed_at
        assert by_tenant["y"].started_at < by_tenant["x"].completed_at

    def test_activity_attribution_is_per_tenant_exact(self):
        _, server = make_server()
        server.register(TenantConfig(name="x",
                                     dataflow=chain("x", ["a0"])))
        server.register(TenantConfig(name="y",
                                     dataflow=chain("y", ["b0"])))
        report = server.run_trace([
            TracedRequest(0, "x", frames_of(4)),
            TracedRequest(0, "y", frames_of(2)),
        ])
        x_activity = report.activity_by_tenant["x"]
        y_activity = report.activity_by_tenant["y"]
        assert set(x_activity) == {"a0"}
        assert set(y_activity) == {"b0"}
        assert x_activity["a0"].frames == 4
        assert y_activity["b0"].frames == 2
        assert x_activity["a0"].busy_cycles > 0

    def test_shared_tile_serializes_tenants(self):
        _, server = make_server()
        server.register(TenantConfig(name="x",
                                     dataflow=chain("x", ["a0"])))
        server.register(TenantConfig(name="y",
                                     dataflow=chain("y", ["a0"])))
        report = server.run_trace([TracedRequest(0, "x", frames_of(4)),
                                   TracedRequest(0, "y", frames_of(4))])
        assert len(report.completions) == 2
        by_tenant = {c.tenant: c for c in report.completions}
        first, second = sorted(by_tenant.values(),
                               key=lambda c: c.started_at)
        # No overlap over the shared tile.
        assert second.started_at >= first.completed_at
        assert report.arbiter_wait_summary.max > 0

    def test_priority_policy_orders_contending_grants(self):
        _, server = make_server(policy="priority")
        for name, priority in [("low", 0), ("mid", 1), ("high", 5)]:
            server.register(TenantConfig(
                name=name, dataflow=chain(name, ["a0"]),
                priority=priority))
        # "low" submits first and grabs the free tile; the other two
        # contend and must be granted in priority order.
        report = server.run_trace([
            TracedRequest(0, "low", frames_of(2)),
            TracedRequest(0, "mid", frames_of(2)),
            TracedRequest(0, "high", frames_of(2)),
        ])
        started = {c.tenant: c.started_at for c in report.completions}
        assert started["low"] < started["high"] < started["mid"]


class TestFaultIntegration:
    def recovery(self, **kwargs):
        kwargs.setdefault("watchdog_cycles", 20_000)
        kwargs.setdefault("max_retries", 0)
        return RecoveryPolicy(**kwargs)

    def test_failed_tile_quarantined_and_served_in_software(self):
        """A hang exhausts retries, the device is marked failed, the
        server hands the tile back to the arbiter as unavailable — and
        keeps serving the tenant through the software fallback."""
        runtime, server = make_server(
            recovery=self.recovery(software_fallback=True))
        FaultInjector(FaultPlan([
            FaultSpec(kind="acc_hang", target="a0", at_cycle=0,
                      count=1)])).attach(runtime.soc)
        server.register(TenantConfig(name="app",
                                     dataflow=chain("app", ["a0"]),
                                     mode="pipe"))
        fx, fy = frames_of(2, seed=1), frames_of(2, seed=2)
        report = server.run_trace([
            TracedRequest(0, "app", fx),
            TracedRequest(200_000, "app", fy),
        ])

        assert len(report.completions) == 2
        assert report.failures == []
        first, second = sorted(report.completions,
                               key=lambda c: c.submitted_at)
        # The watchdog fired mid-run and frames were re-served in
        # software (pipe mode degrades per node, not per run).
        assert runtime.executor.watchdog_timeouts >= 1
        assert runtime.executor.software_frames > 0
        np.testing.assert_array_equal(first.outputs, fx + 1.0)
        np.testing.assert_array_equal(second.outputs, fy + 1.0)
        assert runtime.registry.is_failed("a0")
        assert server.arbiter.unavailable_tiles == frozenset({"a0"})

    def test_no_fallback_policy_rejects_after_tile_failure(self):
        runtime, server = make_server(
            recovery=self.recovery(software_fallback=False))
        FaultInjector(FaultPlan([
            FaultSpec(kind="acc_hang", target="a0", at_cycle=0,
                      count=1)])).attach(runtime.soc)
        server.register(TenantConfig(name="app",
                                     dataflow=chain("app", ["a0"]),
                                     mode="pipe"))
        report = server.run_trace([
            TracedRequest(0, "app", frames_of(2)),
            TracedRequest(200_000, "app", frames_of(2)),
        ])

        assert report.completions == []
        assert len(report.failures) == 1       # the in-flight batch
        assert len(report.rejections) == 1     # the post-failure one
        assert report.rejections[0].reason == REJECT_TILE_UNAVAILABLE

    def test_healthy_tenant_unaffected_by_neighbour_failure(self):
        """Failure isolation: tenant "x" loses its tile, tenant "y"
        on a disjoint tile keeps full hardware service."""
        runtime, server = make_server(
            recovery=self.recovery(software_fallback=True))
        FaultInjector(FaultPlan([
            FaultSpec(kind="acc_hang", target="a0", at_cycle=0,
                      count=1)])).attach(runtime.soc)
        server.register(TenantConfig(name="x",
                                     dataflow=chain("x", ["a0"]),
                                     mode="pipe"))
        server.register(TenantConfig(name="y",
                                     dataflow=chain("y", ["b0"]),
                                     mode="pipe"))
        fy = frames_of(4, seed=3)
        report = server.run_trace([
            TracedRequest(0, "x", frames_of(2)),
            TracedRequest(0, "y", fy),
        ])
        by_tenant = {c.tenant: c for c in report.completions}
        assert len(report.completions) == 2
        assert not by_tenant["y"].degraded
        np.testing.assert_array_equal(by_tenant["y"].outputs, fy + 1.0)
        assert not runtime.registry.is_failed("b0")


class TestReporting:
    def test_report_summaries_and_render(self):
        _, server = make_server()
        server.register(TenantConfig(name="app",
                                     dataflow=chain("app", ["a0"])))
        report = server.run_trace([
            TracedRequest(at, "app", frames_of(1, seed=at))
            for at in (0, 50_000, 100_000)])

        assert report.completed_frames == 3
        assert report.throughput_fps > 0
        assert report.makespan_cycles > 0
        summary = report.latency_summary()
        assert summary.count == 3
        assert summary.p50 <= summary.p99 <= summary.max
        assert "app" in report.latency_by_tenant
        assert report.queue_by_tenant["app"].count == 3
        text = report.render()
        assert "app" in text and "throughput" in text


class TestPerRunStatistics:
    def test_consecutive_run_trace_reports_are_per_run(self):
        """Regression: queue statistics must describe one trace, not
        every trace since boot — a second ``run_trace`` on the same
        server used to inherit the first run's admission count and
        peak depth."""
        _, server = make_server()
        server.register(TenantConfig(name="app",
                                     dataflow=chain("app", ["a0"])))
        trace = [TracedRequest(0, "app", frames_of(1, seed=s))
                 for s in range(3)]
        first = server.run_trace(trace)
        second = server.run_trace(
            [TracedRequest(0, "app", frames_of(1, seed=9))])

        assert first.admitted == 3 and first.peak_queue_depth == 3
        assert second.admitted == 1
        assert second.peak_queue_depth == 1
        # Completions still accumulate on the server across runs;
        # only the queue-side statistics are per-run.
        assert len(second.completions) == 4


class TestRemediationHooks:
    """The control plane's server surface: reshard / widen / repair."""

    def twin_tile_specs(self):
        # a0/a1 share a kernel (reshard-compatible); b0 does not.
        spec = make_spec(name="a")
        return [("a0", spec), ("a1", spec),
                ("b0", make_spec(name="b"))]

    def make(self, **kwargs):
        return make_server(specs=self.twin_tile_specs(), **kwargs)

    def test_reshard_idle_tenant_applies_immediately(self):
        runtime, server = self.make()
        server.register(TenantConfig(name="app",
                                     dataflow=chain("app", ["a0"])))
        assert server.tenant_tiles() == {"app": frozenset({"a0"})}
        assert server.reshard_tenant("app", {"a0": "a1"}) == "applied"
        assert server.tenant_tiles() == {"app": frozenset({"a1"})}

        frames = frames_of(2)
        report = server.run_trace([TracedRequest(0, "app", frames)])
        assert len(report.completions) == 1
        np.testing.assert_array_equal(report.completions[0].outputs,
                                      frames + 1.0)
        assert runtime.soc.accelerators["a1"].invocations
        assert not runtime.soc.accelerators["a0"].invocations

    def test_reshard_mid_flight_defers_then_lands(self):
        runtime, server = self.make()
        server.register(TenantConfig(name="app",
                                     dataflow=chain("app", ["a0"]),
                                     max_batch_frames=1))
        env = server.env
        results = []

        def resharder():
            yield env.timeout(10)     # first batch is in flight now
            results.append(server.reshard_tenant("app", {"a0": "a1"}))
            # The *target* placement reports the pending swap.
            results.append(server.tenant_tiles()["app"])

        env.process(resharder(), name="resharder")
        frames = frames_of(2)
        report = server.run_trace([
            TracedRequest(0, "app", frames[:1]),
            TracedRequest(5_000, "app", frames[1:])])

        assert results == ["deferred", frozenset({"a1"})]
        assert len(report.completions) == 2
        # First batch ran on a0; after the deferred swap landed, the
        # second ran on a1.
        assert len(runtime.soc.accelerators["a0"].invocations) == 1
        assert len(runtime.soc.accelerators["a1"].invocations) == 1

    def test_reshard_onto_different_kernel_rejected(self):
        _, server = self.make()
        server.register(TenantConfig(name="app",
                                     dataflow=chain("app", ["a0"])))
        with pytest.raises(ValueError, match="different kernels"):
            server.reshard_tenant("app", {"a0": "b0"})
        with pytest.raises(KeyError):
            server.reshard_tenant("ghost", {"a0": "a1"})

    def test_widen_batch_and_bound_accessor(self):
        _, server = self.make()
        server.register(TenantConfig(name="app",
                                     dataflow=chain("app", ["a0"]),
                                     max_batch_frames=4))
        assert server.batch_bound("app") == 4
        assert server.widen_batch("app", factor=2.0, cap=256) == 8
        assert server.batch_bound("app") == 8
        # Cap reached: the bound stops growing.
        assert server.widen_batch("app", factor=2.0, cap=8) == 8

    def test_widened_bound_survives_a_reshard(self):
        _, server = self.make()
        server.register(TenantConfig(name="app",
                                     dataflow=chain("app", ["a0"]),
                                     max_batch_frames=4))
        server.widen_batch("app", factor=4.0)
        server.reshard_tenant("app", {"a0": "a1"})
        assert server.batch_bound("app") == 16

    def test_repair_tile_clears_failure_and_forcing(self):
        runtime, server = self.make(
            recovery=RecoveryPolicy(watchdog_cycles=20_000))
        registry = server.executor.registry
        registry.mark_failed("a0")
        server.executor.force_software("a1")
        server.repair_tile("a0")
        server.repair_tile("a1")
        assert not registry.is_failed("a0")
        assert "a1" not in server.executor.forced_software
