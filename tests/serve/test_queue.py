"""Tests for the serving request queue: admission control + draining."""

import numpy as np
import pytest

from repro.serve import (
    InferenceRequest,
    REJECT_BAD_SHAPE,
    REJECT_QUEUE_FULL,
    REJECT_UNKNOWN_TENANT,
    RequestQueue,
)


def req(tenant="nv", n_frames=1, words=8):
    return InferenceRequest(tenant=tenant,
                            frames=np.ones((n_frames, words)))


def registered_queue(max_depth=4):
    queue = RequestQueue(max_depth=max_depth)
    queue.register("nv", input_words=8)
    queue.register("cl", input_words=4)
    return queue


class TestAdmission:
    def test_admit_returns_none_and_stamps_submit_time(self):
        queue = registered_queue()
        request = req()
        assert queue.submit(request, now=123) is None
        assert request.submitted_at == 123
        assert queue.admitted == 1
        assert queue.depth == 1

    def test_unknown_tenant_rejected(self):
        queue = registered_queue()
        rejection = queue.submit(req(tenant="ghost"), now=5)
        assert rejection is not None
        assert rejection.reason == REJECT_UNKNOWN_TENANT
        assert rejection.at == 5
        assert queue.depth == 0

    def test_bad_shape_rejected(self):
        queue = registered_queue()
        rejection = queue.submit(req(words=16))   # nv expects 8
        assert rejection.reason == REJECT_BAD_SHAPE
        assert "16" in rejection.detail and "8" in rejection.detail

    def test_backpressure_at_max_depth(self):
        queue = registered_queue(max_depth=2)
        assert queue.submit(req()) is None
        assert queue.submit(req()) is None
        rejection = queue.submit(req())
        assert rejection.reason == REJECT_QUEUE_FULL
        assert queue.depth == 2
        assert queue.rejected_by_reason[REJECT_QUEUE_FULL] == 1

    def test_depth_bound_is_global_across_tenants(self):
        queue = registered_queue(max_depth=2)
        queue.submit(req(tenant="nv"))
        queue.submit(req(tenant="cl", words=4))
        rejection = queue.submit(req(tenant="nv"))
        assert rejection.reason == REJECT_QUEUE_FULL

    def test_peak_depth_tracked(self):
        queue = registered_queue()
        queue.submit(req())
        queue.submit(req())
        queue.pop("nv")
        queue.submit(req())
        assert queue.peak_depth == 2

    def test_on_admit_hook_fires_only_on_admission(self):
        queue = registered_queue(max_depth=1)
        seen = []
        queue.on_admit = seen.append
        queue.submit(req())
        queue.submit(req())          # rejected: full
        assert len(seen) == 1

    def test_register_validates(self):
        queue = registered_queue()
        with pytest.raises(ValueError, match="already registered"):
            queue.register("nv", input_words=8)
        with pytest.raises(ValueError):
            queue.register("new", input_words=0)
        with pytest.raises(ValueError):
            RequestQueue(max_depth=0)


class TestDraining:
    def test_pop_is_fifo_within_tenant(self):
        queue = registered_queue()
        first, second = req(), req()
        queue.submit(first)
        queue.submit(second)
        assert queue.pop("nv") is first
        assert queue.pop("nv") is second
        assert queue.pop("nv") is None

    def test_peek_does_not_remove(self):
        queue = registered_queue()
        request = req()
        queue.submit(request)
        assert queue.peek("nv") is request
        assert queue.depth == 1

    def test_drain_respects_frame_budget(self):
        queue = registered_queue(max_depth=16)
        for _ in range(4):
            queue.submit(req(n_frames=3))
        batch = queue.drain("nv", max_frames=7)
        assert len(batch) == 2        # 3 + 3 fit, a third would be 9
        assert queue.tenant_depth("nv") == 2

    def test_drain_always_takes_one_even_oversized(self):
        queue = registered_queue(max_depth=16)
        queue.submit(req(n_frames=10))
        queue.submit(req(n_frames=1))
        batch = queue.drain("nv", max_frames=4)
        assert len(batch) == 1
        assert batch[0].n_frames == 10

    def test_drain_without_limit_takes_all(self):
        queue = registered_queue(max_depth=16)
        for _ in range(5):
            queue.submit(req())
        assert len(queue.drain("nv")) == 5
        assert queue.depth == 0


class TestResetStats:
    def test_counters_restart_queued_requests_survive(self):
        queue = registered_queue(max_depth=4)
        for _ in range(3):
            queue.submit(req(), now=0)
        queue.pop("nv")
        assert queue.admitted == 3 and queue.peak_depth == 3

        queue.reset_stats()
        # Statistics restart at the *current* occupancy; the two
        # still-queued requests are untouched.
        assert queue.admitted == 0
        assert queue.rejected_by_reason == {}
        assert queue.peak_depth == queue.depth == 2
        assert queue.pop("nv") is not None

    def test_stats_accumulate_after_reset(self):
        queue = registered_queue(max_depth=2)
        queue.submit(req(), now=0)
        queue.submit(req(), now=0)
        queue.submit(req(), now=0)      # rejected: full
        queue.reset_stats()
        queue.pop("nv")
        queue.submit(req(), now=1)
        assert queue.admitted == 1
        assert queue.peak_depth == 2
