"""Tests for the tile arbiter: atomic grants, policies, failure flow.

Grant/release bookkeeping is synchronous (``acquire`` either triggers
its event immediately or parks the claim; ``release`` re-scans), so
most tests observe ``event.triggered`` directly without running the
event loop. The loop only matters for the process-level test at the
end.
"""

import pytest

from repro.serve import ARBITER_POLICIES, TileArbiter, TileUnavailable
from repro.sim import Environment


def make_arbiter(tiles=("a", "b", "c"), policy="fifo"):
    env = Environment()
    return env, TileArbiter(env, tiles, policy=policy)


class TestBasicGrants:
    def test_free_set_granted_immediately(self):
        _, arb = make_arbiter()
        claim = arb.acquire({"a", "b"})
        assert claim.triggered and claim.ok
        assert arb.free_tiles == frozenset({"c"})
        assert arb.grants == 1

    def test_all_or_nothing_no_partial_hold(self):
        _, arb = make_arbiter()
        arb.acquire({"b"})
        blocked = arb.acquire({"a", "b"})
        assert not blocked.triggered
        # The blocked claim holds *nothing*: "a" is still grantable.
        assert "a" in arb.free_tiles
        assert arb.pending_claims == 1

    def test_no_head_of_line_blocking_across_disjoint_sets(self):
        _, arb = make_arbiter()
        arb.acquire({"a"})
        blocked = arb.acquire({"a", "b"})     # waits for a
        disjoint = arb.acquire({"c"})         # must not wait behind it
        assert not blocked.triggered
        assert disjoint.triggered and disjoint.ok

    def test_release_wakes_waiting_claim(self):
        _, arb = make_arbiter()
        arb.acquire({"a", "b"})
        waiting = arb.acquire({"b", "c"})
        assert not waiting.triggered
        arb.release({"a", "b"})
        assert waiting.triggered and waiting.ok
        assert waiting.value == frozenset({"b", "c"})

    def test_release_validates_ownership(self):
        _, arb = make_arbiter()
        arb.acquire({"a"})
        with pytest.raises(ValueError, match="not held"):
            arb.release({"a", "b"})

    def test_cancel_withdraws_pending_claim(self):
        _, arb = make_arbiter()
        arb.acquire({"a"})
        pending = arb.acquire({"a"})
        assert arb.cancel(pending)
        arb.release({"a"})
        assert not pending.triggered
        assert not arb.cancel(pending)   # already gone

    def test_input_validation(self):
        env, arb = make_arbiter()
        with pytest.raises(ValueError, match="policy"):
            TileArbiter(env, ["a"], policy="lifo")
        with pytest.raises(ValueError, match="at least one"):
            TileArbiter(env, [])
        with pytest.raises(ValueError, match="empty"):
            arb.acquire(set())
        with pytest.raises(KeyError, match="unknown tiles"):
            arb.acquire({"z"})


def contended_grants(policy, claims):
    """Park ``claims`` (kwargs dicts) behind a busy tile, then release
    it repeatedly; returns the indices in grant order."""
    _, arb = make_arbiter(tiles=("t",), policy=policy)
    arb.acquire({"t"})
    events = [arb.acquire({"t"}, **kw) for kw in claims]
    order = []
    for _ in claims:
        arb.release({"t"})
        for index, event in enumerate(events):
            if event.triggered and index not in order:
                order.append(index)
    return order


class TestPolicies:
    def test_policy_names_exported(self):
        assert ARBITER_POLICIES == ("fifo", "priority", "sjf")

    def test_fifo_grants_in_arrival_order(self):
        assert contended_grants("fifo", [{}, {}, {}]) == [0, 1, 2]

    def test_priority_grants_highest_first(self):
        order = contended_grants(
            "priority",
            [{"priority": 0}, {"priority": 5}, {"priority": 1}])
        assert order == [1, 2, 0]

    def test_priority_is_fifo_within_a_level(self):
        order = contended_grants(
            "priority", [{"priority": 1}, {"priority": 1}])
        assert order == [0, 1]

    def test_sjf_grants_shortest_job_first(self):
        order = contended_grants(
            "sjf",
            [{"est_cycles": 900}, {"est_cycles": 10},
             {"est_cycles": 100}])
        assert order == [1, 2, 0]


class TestFailureIntegration:
    def test_acquire_of_unavailable_tile_fails_immediately(self):
        _, arb = make_arbiter()
        arb.mark_unavailable("a")
        claim = arb.acquire({"a", "b"})
        assert claim.triggered and not claim.ok
        assert isinstance(claim.value, TileUnavailable)
        assert claim.value.tiles == ["a"]
        claim.__sim_defused__ = True   # nobody yields it in this test

    def test_mark_unavailable_fails_doomed_pending_claims(self):
        _, arb = make_arbiter()
        arb.acquire({"a"})
        doomed = arb.acquire({"a"})
        survivor = arb.acquire({"a"}, allow_unavailable=True)
        arb.mark_unavailable("a")
        assert doomed.triggered and not doomed.ok
        assert not survivor.triggered   # still pending: tile is busy
        doomed.__sim_defused__ = True

    def test_degraded_claim_granted_over_unavailable_tile(self):
        _, arb = make_arbiter()
        arb.mark_unavailable("a")
        claim = arb.acquire({"a", "b"}, allow_unavailable=True)
        assert claim.triggered and claim.ok
        # Exclusivity still holds: a second degraded claim waits.
        second = arb.acquire({"a"}, allow_unavailable=True)
        assert not second.triggered
        arb.release({"a", "b"})
        assert second.triggered

    def test_unavailable_tile_never_returns_to_free_pool(self):
        _, arb = make_arbiter()
        claim = arb.acquire({"a"})
        arb.mark_unavailable("a")
        arb.release(claim.value)
        assert "a" not in arb.free_tiles
        assert arb.unavailable_tiles == frozenset({"a"})

    def test_mark_available_restores_granting(self):
        _, arb = make_arbiter()
        arb.mark_unavailable("a")
        arb.mark_available("a")
        claim = arb.acquire({"a"})
        assert claim.triggered and claim.ok

    def test_unknown_tile_rejected(self):
        _, arb = make_arbiter()
        with pytest.raises(KeyError):
            arb.mark_unavailable("z")
        with pytest.raises(KeyError):
            arb.mark_available("z")


class TestProbation:
    def make(self, **kwargs):
        env = Environment()
        arb = TileArbiter(env, ("a", "b", "c"), **kwargs)
        return env, arb

    def advance(self, env, cycles):
        env.run(until=env.timeout(cycles))

    def test_probation_readmits_after_delay(self):
        env, arb = self.make(probation_cycles=100)
        arb.mark_unavailable("a")
        assert arb.readmit_schedule == {"a": 100}
        # Probation is checked lazily from acquire — before the delay
        # the tile stays quarantined.
        self.advance(env, 99)
        arb.acquire({"b"})
        assert "a" in arb.unavailable_tiles
        self.advance(env, 1)
        granted = arb.acquire({"a"})
        assert granted.triggered and granted.ok
        assert arb.readmissions == 1
        assert arb.readmit_schedule == {}

    def test_repeat_quarantine_backs_off_exponentially(self):
        env, arb = self.make(probation_cycles=100,
                             max_probation_cycles=400)
        expected = [100, 200, 400, 400]   # doubled, then capped
        for delay in expected:
            start = env.now
            arb.mark_unavailable("a")
            assert arb.readmit_schedule["a"] == start + delay
            self.advance(env, delay)
            arb.acquire({"b"})            # any acquire runs the check
            assert "a" not in arb.unavailable_tiles
        assert arb.readmissions == len(expected)

    def test_on_readmit_callback_fires_before_regrant(self):
        env, arb = self.make(probation_cycles=50)
        repaired = []
        arb.on_readmit = repaired.append
        arb.mark_unavailable("a")
        self.advance(env, 50)
        claim = arb.acquire({"a"})
        assert claim.ok
        assert repaired == ["a"]

    def test_explicit_repair_keeps_the_backoff_count(self):
        env, arb = self.make(probation_cycles=100)
        arb.mark_unavailable("a")
        arb.mark_available("a")           # explicit repair, no wait
        assert arb.readmit_schedule == {}
        # The tile already failed once: the next quarantine starts at
        # the doubled delay, not back at the base.
        arb.mark_unavailable("a")
        assert arb.readmit_schedule["a"] == env.now + 200

    def test_probation_opt_in_and_opt_out_per_call(self):
        env, arb = self.make()                   # no probation default
        arb.mark_unavailable("a", probation=True)
        assert arb.readmit_schedule["a"] == env.now + 1
        # probation=False forces the permanent hold even when the
        # arbiter has a configured delay (the controller's reserve
        # pool relies on this).
        env2, arb2 = self.make(probation_cycles=100)
        arb2.mark_unavailable("a", probation=False)
        assert arb2.readmit_schedule == {}
        self.advance(env2, 10_000)
        arb2.acquire({"b"})
        assert "a" in arb2.unavailable_tiles

    def test_probation_validation(self):
        with pytest.raises(ValueError, match="probation_cycles"):
            self.make(probation_cycles=0)


class TestProcessIntegration:
    def test_waiters_interleave_over_simulated_time(self):
        """Two processes contend for one tile across simulated time;
        wait statistics reflect the serialization."""
        env, arb = make_arbiter(tiles=("t",))
        log = []

        def worker(name, hold):
            claim = arb.acquire({"t"}, label=name)
            yield claim
            log.append((name, "granted", env.now))
            yield env.timeout(hold)
            arb.release({"t"})

        env.process(worker("first", 100), name="w0")
        env.process(worker("second", 50), name="w1")
        env.run()
        assert log == [("first", "granted", 0),
                       ("second", "granted", 100)]
        assert arb.grants == 2
        assert arb.max_wait_cycles == 100
        assert arb.total_wait_cycles == 100

    def test_failed_claim_raises_in_waiting_process(self):
        env, arb = make_arbiter(tiles=("t",))
        holder = arb.acquire({"t"})
        caught = []

        def victim():
            try:
                yield arb.acquire({"t"})
            except TileUnavailable as exc:
                caught.append(exc.tiles)

        env.process(victim(), name="victim")

        def failer():
            yield env.timeout(10)
            arb.mark_unavailable("t")

        env.process(failer(), name="failer")
        env.run()
        assert caught == [["t"]]
        assert holder.ok
