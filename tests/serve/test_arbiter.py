"""Tests for the tile arbiter: atomic grants, policies, failure flow.

Grant/release bookkeeping is synchronous (``acquire`` either triggers
its event immediately or parks the claim; ``release`` re-scans), so
most tests observe ``event.triggered`` directly without running the
event loop. The loop only matters for the process-level test at the
end.
"""

import pytest

from repro.serve import ARBITER_POLICIES, TileArbiter, TileUnavailable
from repro.sim import Environment


def make_arbiter(tiles=("a", "b", "c"), policy="fifo"):
    env = Environment()
    return env, TileArbiter(env, tiles, policy=policy)


class TestBasicGrants:
    def test_free_set_granted_immediately(self):
        _, arb = make_arbiter()
        claim = arb.acquire({"a", "b"})
        assert claim.triggered and claim.ok
        assert arb.free_tiles == frozenset({"c"})
        assert arb.grants == 1

    def test_all_or_nothing_no_partial_hold(self):
        _, arb = make_arbiter()
        arb.acquire({"b"})
        blocked = arb.acquire({"a", "b"})
        assert not blocked.triggered
        # The blocked claim holds *nothing*: "a" is still grantable.
        assert "a" in arb.free_tiles
        assert arb.pending_claims == 1

    def test_no_head_of_line_blocking_across_disjoint_sets(self):
        _, arb = make_arbiter()
        arb.acquire({"a"})
        blocked = arb.acquire({"a", "b"})     # waits for a
        disjoint = arb.acquire({"c"})         # must not wait behind it
        assert not blocked.triggered
        assert disjoint.triggered and disjoint.ok

    def test_release_wakes_waiting_claim(self):
        _, arb = make_arbiter()
        arb.acquire({"a", "b"})
        waiting = arb.acquire({"b", "c"})
        assert not waiting.triggered
        arb.release({"a", "b"})
        assert waiting.triggered and waiting.ok
        assert waiting.value == frozenset({"b", "c"})

    def test_release_validates_ownership(self):
        _, arb = make_arbiter()
        arb.acquire({"a"})
        with pytest.raises(ValueError, match="not held"):
            arb.release({"a", "b"})

    def test_cancel_withdraws_pending_claim(self):
        _, arb = make_arbiter()
        arb.acquire({"a"})
        pending = arb.acquire({"a"})
        assert arb.cancel(pending)
        arb.release({"a"})
        assert not pending.triggered
        assert not arb.cancel(pending)   # already gone

    def test_input_validation(self):
        env, arb = make_arbiter()
        with pytest.raises(ValueError, match="policy"):
            TileArbiter(env, ["a"], policy="lifo")
        with pytest.raises(ValueError, match="at least one"):
            TileArbiter(env, [])
        with pytest.raises(ValueError, match="empty"):
            arb.acquire(set())
        with pytest.raises(KeyError, match="unknown tiles"):
            arb.acquire({"z"})


def contended_grants(policy, claims):
    """Park ``claims`` (kwargs dicts) behind a busy tile, then release
    it repeatedly; returns the indices in grant order."""
    _, arb = make_arbiter(tiles=("t",), policy=policy)
    arb.acquire({"t"})
    events = [arb.acquire({"t"}, **kw) for kw in claims]
    order = []
    for _ in claims:
        arb.release({"t"})
        for index, event in enumerate(events):
            if event.triggered and index not in order:
                order.append(index)
    return order


class TestPolicies:
    def test_policy_names_exported(self):
        assert ARBITER_POLICIES == ("fifo", "priority", "sjf")

    def test_fifo_grants_in_arrival_order(self):
        assert contended_grants("fifo", [{}, {}, {}]) == [0, 1, 2]

    def test_priority_grants_highest_first(self):
        order = contended_grants(
            "priority",
            [{"priority": 0}, {"priority": 5}, {"priority": 1}])
        assert order == [1, 2, 0]

    def test_priority_is_fifo_within_a_level(self):
        order = contended_grants(
            "priority", [{"priority": 1}, {"priority": 1}])
        assert order == [0, 1]

    def test_sjf_grants_shortest_job_first(self):
        order = contended_grants(
            "sjf",
            [{"est_cycles": 900}, {"est_cycles": 10},
             {"est_cycles": 100}])
        assert order == [1, 2, 0]


class TestFailureIntegration:
    def test_acquire_of_unavailable_tile_fails_immediately(self):
        _, arb = make_arbiter()
        arb.mark_unavailable("a")
        claim = arb.acquire({"a", "b"})
        assert claim.triggered and not claim.ok
        assert isinstance(claim.value, TileUnavailable)
        assert claim.value.tiles == ["a"]
        claim.__sim_defused__ = True   # nobody yields it in this test

    def test_mark_unavailable_fails_doomed_pending_claims(self):
        _, arb = make_arbiter()
        arb.acquire({"a"})
        doomed = arb.acquire({"a"})
        survivor = arb.acquire({"a"}, allow_unavailable=True)
        arb.mark_unavailable("a")
        assert doomed.triggered and not doomed.ok
        assert not survivor.triggered   # still pending: tile is busy
        doomed.__sim_defused__ = True

    def test_degraded_claim_granted_over_unavailable_tile(self):
        _, arb = make_arbiter()
        arb.mark_unavailable("a")
        claim = arb.acquire({"a", "b"}, allow_unavailable=True)
        assert claim.triggered and claim.ok
        # Exclusivity still holds: a second degraded claim waits.
        second = arb.acquire({"a"}, allow_unavailable=True)
        assert not second.triggered
        arb.release({"a", "b"})
        assert second.triggered

    def test_unavailable_tile_never_returns_to_free_pool(self):
        _, arb = make_arbiter()
        claim = arb.acquire({"a"})
        arb.mark_unavailable("a")
        arb.release(claim.value)
        assert "a" not in arb.free_tiles
        assert arb.unavailable_tiles == frozenset({"a"})

    def test_mark_available_restores_granting(self):
        _, arb = make_arbiter()
        arb.mark_unavailable("a")
        arb.mark_available("a")
        claim = arb.acquire({"a"})
        assert claim.triggered and claim.ok

    def test_unknown_tile_rejected(self):
        _, arb = make_arbiter()
        with pytest.raises(KeyError):
            arb.mark_unavailable("z")
        with pytest.raises(KeyError):
            arb.mark_available("z")


class TestProcessIntegration:
    def test_waiters_interleave_over_simulated_time(self):
        """Two processes contend for one tile across simulated time;
        wait statistics reflect the serialization."""
        env, arb = make_arbiter(tiles=("t",))
        log = []

        def worker(name, hold):
            claim = arb.acquire({"t"}, label=name)
            yield claim
            log.append((name, "granted", env.now))
            yield env.timeout(hold)
            arb.release({"t"})

        env.process(worker("first", 100), name="w0")
        env.process(worker("second", 50), name="w1")
        env.run()
        assert log == [("first", "granted", 0),
                       ("second", "granted", 100)]
        assert arb.grants == 2
        assert arb.max_wait_cycles == 100
        assert arb.total_wait_cycles == 100

    def test_failed_claim_raises_in_waiting_process(self):
        env, arb = make_arbiter(tiles=("t",))
        holder = arb.acquire({"t"})
        caught = []

        def victim():
            try:
                yield arb.acquire({"t"})
            except TileUnavailable as exc:
                caught.append(exc.tiles)

        env.process(victim(), name="victim")

        def failer():
            yield env.timeout(10)
            arb.mark_unavailable("t")

        env.process(failer(), name="failer")
        env.run()
        assert caught == [["t"]]
        assert holder.ok
