"""Tests for request coalescing and frame-quantum padding."""

import numpy as np
import pytest

from repro.runtime import Dataflow, DataflowEdge, chain, replicated_stage
from repro.serve import Batcher, InferenceRequest, frame_quantum


def req(n_frames, words=8, fill=1.0):
    return InferenceRequest(tenant="t",
                            frames=np.full((n_frames, words), fill))


class TestFrameQuantum:
    def test_chain_quantum_is_one(self):
        assert frame_quantum(chain("df", ["a0", "b0"])) == 1

    def test_replicated_stage_quantum_is_width(self):
        df = replicated_stage("df", ["a0", "a1", "a2", "a3"], ["c0"])
        assert frame_quantum(df) == 4

    def test_quantum_is_lcm_of_level_widths(self):
        # Widths 2 -> 1 -> 3: the quantum must be lcm(2, 1, 3) = 6,
        # not the max width.
        df = Dataflow("df", ["a0", "a1", "m0", "c0", "c1", "c2"],
                      [DataflowEdge("a0", "m0"),
                       DataflowEdge("a1", "m0"),
                       DataflowEdge("m0", "c0"),
                       DataflowEdge("m0", "c1"),
                       DataflowEdge("m0", "c2")])
        assert df.levels() == [["a0", "a1"], ["m0"],
                               ["c0", "c1", "c2"]]
        assert frame_quantum(df) == 6


class TestBatcher:
    def test_coalesces_requests_in_order(self):
        batcher = Batcher(chain("df", ["a0"]))
        batch = batcher.form([req(2, fill=1.0), req(3, fill=2.0)])
        assert batch.n_requests == 2
        assert batch.real_frames == 5
        assert batch.total_frames == 5        # quantum 1: no padding
        np.testing.assert_array_equal(batch.frames[:2], 1.0)
        np.testing.assert_array_equal(batch.frames[2:], 2.0)

    def test_pads_to_quantum_with_zero_frames(self):
        df = replicated_stage("df", ["a0", "a1", "a2", "a3"], ["c0"])
        batcher = Batcher(df)
        batch = batcher.form([req(3), req(3)])
        assert batch.real_frames == 6
        assert batch.pad_frames == 2
        assert batch.total_frames == 8
        np.testing.assert_array_equal(batch.frames[6:], 0.0)
        assert batcher.frames_padded == 2

    def test_split_outputs_drops_padding(self):
        df = replicated_stage("df", ["a0", "a1"], ["c0"])
        batcher = Batcher(df)
        first, second = req(1), req(2)
        batch = batcher.form([first, second])
        assert batch.total_frames == 4
        outputs = np.arange(4 * 8).reshape(4, 8)
        split = batch.split_outputs(outputs)
        assert [r for r, _ in split] == [first, second]
        np.testing.assert_array_equal(split[0][1], outputs[:1])
        np.testing.assert_array_equal(split[1][1], outputs[1:3])

    def test_split_outputs_validates_row_count(self):
        batcher = Batcher(chain("df", ["a0"]))
        batch = batcher.form([req(2)])
        with pytest.raises(ValueError, match="rows"):
            batch.split_outputs(np.zeros((3, 8)))

    def test_empty_batch_rejected(self):
        batcher = Batcher(chain("df", ["a0"]))
        with pytest.raises(ValueError, match="empty"):
            batcher.form([])

    def test_max_batch_frames_raised_to_quantum(self):
        df = replicated_stage("df", ["a0", "a1", "a2", "a3"], ["c0"])
        batcher = Batcher(df, max_batch_frames=2)
        assert batcher.max_batch_frames == 4

    def test_max_batch_frames_validated(self):
        with pytest.raises(ValueError):
            Batcher(chain("df", ["a0"]), max_batch_frames=0)

    def test_statistics_accumulate(self):
        batcher = Batcher(chain("df", ["a0"]))
        batcher.form([req(1), req(1)])
        batcher.form([req(2)])
        assert batcher.batches_formed == 2
        assert batcher.requests_coalesced == 3
