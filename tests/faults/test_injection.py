"""Tests for fault injection mechanics at the SoC level."""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan, FaultSpec, zero_fault_plan
from repro.runtime import EspRuntime, chain
from tests.conftest import make_soc, make_spec


def two_stage_soc():
    return make_soc([("s0", make_spec(name="s0")),
                     ("s1", make_spec(name="s1"))])


def two_stage_run(soc, mode="pipe", n_frames=4, recovery=None):
    runtime = EspRuntime(soc, recovery=recovery)
    frames = np.arange(n_frames * 16, dtype=float).reshape(n_frames, 16)
    result = runtime.esp_run(chain("two", ["s0", "s1"]), frames,
                             mode=mode)
    return result, frames + 2.0   # each stage adds one


class TestPayForWhatYouUse:
    @pytest.mark.parametrize("mode", ["base", "pipe", "p2p"])
    def test_zero_fault_plan_is_cycle_identical(self, mode):
        baseline, expected = two_stage_run(two_stage_soc(), mode)

        soc = two_stage_soc()
        FaultInjector(zero_fault_plan()).attach(soc)
        injected, _ = two_stage_run(soc, mode)

        assert injected.cycles == baseline.cycles
        np.testing.assert_array_equal(injected.outputs, expected)

    def test_detach_restores_clean_soc(self):
        soc = two_stage_soc()
        injector = FaultInjector(zero_fault_plan()).attach(soc)
        assert soc.mesh.fault_injector is injector
        FaultInjector.detach(soc)
        assert soc.mesh.fault_injector is None
        for tile in soc.accelerators.values():
            assert tile.fault_injector is None
            assert tile.dma.fault_injector is None


class TestLinkFaults:
    def test_corrupted_packet_is_discarded_not_delivered(self):
        """CRC-detected corruption must never surface as silent data:
        the packet is dropped at ejection and the recovery watchdog
        re-runs the transfer, keeping the output bit-exact."""
        from repro.faults import RecoveryPolicy

        soc = two_stage_soc()
        plan = FaultPlan([FaultSpec(kind="link_corrupt", at_cycle=10,
                                    plane="dma-rsp", count=1)])
        injector = FaultInjector(plan).attach(soc)
        result, expected = two_stage_run(
            soc, recovery=RecoveryPolicy(watchdog_cycles=20_000))
        assert injector.packets_corrupted == 1
        assert soc.mesh.packets_corrupted == 1
        np.testing.assert_array_equal(result.outputs, expected)

    def test_drop_counted_on_mesh(self):
        from repro.faults import RecoveryPolicy

        soc = two_stage_soc()
        plan = FaultPlan([FaultSpec(kind="link_drop", at_cycle=10,
                                    plane="dma-rsp", count=1)])
        FaultInjector(plan).attach(soc)
        result, expected = two_stage_run(
            soc, recovery=RecoveryPolicy(watchdog_cycles=20_000))
        assert soc.mesh.packets_dropped == 1
        np.testing.assert_array_equal(result.outputs, expected)


class TestDmaFaults:
    def test_finite_stall_delays_but_completes(self):
        baseline, expected = two_stage_run(two_stage_soc())

        soc = two_stage_soc()
        plan = FaultPlan([FaultSpec(kind="dma_stall", at_cycle=0,
                                    duration=5_000, count=1)])
        injector = FaultInjector(plan).attach(soc)
        stalled, _ = two_stage_run(soc)

        assert injector.dma_stalls == 1
        assert stalled.cycles >= baseline.cycles + 4_000
        np.testing.assert_array_equal(stalled.outputs, expected)


class TestAcceleratorFaults:
    def test_slow_fault_stretches_the_run(self):
        baseline, expected = two_stage_run(two_stage_soc())

        soc = two_stage_soc()
        plan = FaultPlan([FaultSpec(kind="acc_slow", target="s0",
                                    at_cycle=0, factor=8.0, count=1)])
        injector = FaultInjector(plan).attach(soc)
        slowed, _ = two_stage_run(soc)

        assert injector.acc_faults == 1
        assert slowed.cycles > baseline.cycles
        np.testing.assert_array_equal(slowed.outputs, expected)

    def test_crash_sets_error_status_and_counts(self):
        from repro.faults import RecoveryPolicy

        soc = two_stage_soc()
        plan = FaultPlan([FaultSpec(kind="acc_crash", target="s0",
                                    at_cycle=0, count=1)])
        FaultInjector(plan).attach(soc)
        result, expected = two_stage_run(
            soc, recovery=RecoveryPolicy(watchdog_cycles=20_000))
        assert soc.accelerators["s0"].kernel_crashes == 1
        np.testing.assert_array_equal(result.outputs, expected)


class TestDramFaults:
    def test_bitflip_lands_in_storage(self):
        soc = two_stage_soc()
        plan = FaultPlan([FaultSpec(kind="dram_bitflip", at_cycle=0,
                                    count=1)])
        injector = FaultInjector(plan).attach(soc)
        result, expected = two_stage_run(soc)
        memory = soc.memory_map.tiles[0]
        assert injector.bits_flipped == 1
        assert memory.bitflips == 1
        # A mantissa flip in a loaded input corrupts downstream data.
        assert not np.array_equal(result.outputs, expected)

    def test_flip_is_cleared_by_rewriting(self):
        """The upset persists in storage until the word is rewritten,
        so a fresh application-level run over rewritten inputs is
        clean once the transient spec is exhausted."""
        soc = two_stage_soc()
        plan = FaultPlan([FaultSpec(kind="dram_bitflip", at_cycle=0,
                                    count=1)])
        FaultInjector(plan).attach(soc)
        runtime = EspRuntime(soc)
        frames = np.arange(4 * 16, dtype=float).reshape(4, 16)
        dataflow = chain("two", ["s0", "s1"])
        first = runtime.esp_run(dataflow, frames, mode="pipe")
        assert not np.array_equal(first.outputs, frames + 2.0)
        second = runtime.esp_run(dataflow, frames, mode="pipe")
        np.testing.assert_array_equal(second.outputs, frames + 2.0)
