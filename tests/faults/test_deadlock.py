"""Tests for the simulation-level deadlock detector."""

import numpy as np
import pytest

from repro.sim import DeadlockError, Environment, Fifo, Resource


class TestKernelDeadlockReport:
    def test_drained_schedule_names_blocked_process_and_fifo(self):
        env = Environment()
        fifo = Fifo(env, capacity=1, name="stuck-queue")

        def consumer():
            yield fifo.get()
            yield fifo.get()   # never satisfied

        def producer():
            yield fifo.put("only-item")

        env.process(consumer(), name="consumer-proc")
        done = env.process(producer(), name="producer-proc")
        with pytest.raises(DeadlockError) as exc_info:
            env.run(until=env.event())   # drains before the event fires
        message = str(exc_info.value)
        assert "drained" in message
        assert "consumer-proc" in message
        assert "stuck-queue" in message

    def test_blocked_processes_lists_live_waiters(self):
        env = Environment()
        gate = Resource(env, slots=1, name="the-gate")

        def holder():
            yield gate.acquire()
            yield env.timeout(10)

        def waiter():
            yield env.timeout(1)
            yield gate.acquire()   # starves: holder never releases

        env.process(holder(), name="holder")
        env.process(waiter(), name="waiter")
        env.run()
        blocked = env.blocked_processes()
        names = {proc.name for proc, _ in blocked}
        assert "waiter" in names
        reasons = [getattr(target, "wait_reason", "")
                   for _, target in blocked]
        assert any("the-gate" in reason for reason in reasons)


class TestP2PStoreQueueWedge:
    def test_wedged_p2p_store_queue_is_diagnosed(self):
        """The acceptance scenario: a producer streams p2p chunks but
        no consumer ever asks for them. The shallow store queue fills,
        the producer's socket blocks, and the deadlock report names
        the blocked process and the wedged queue."""
        from repro.noc import Mesh2D
        from repro.sim import Environment
        from repro.soc import (
            DmaEngine,
            MemoryMap,
            MemoryTile,
            P2P_QUEUE_DEPTH,
        )

        env = Environment()
        mesh = Mesh2D(env, 3, 1)
        memory = MemoryTile(env, mesh, (2, 0), size_words=1 << 12)
        dma = DmaEngine(env, mesh, (0, 0), MemoryMap([memory]))

        def producer():
            # One chunk more than the queue holds: the last put wedges.
            for index in range(P2P_QUEUE_DEPTH + 1):
                yield from dma._p2p_store(np.full(4, float(index)))

        done = env.process(producer(), name="p2p-producer")
        with pytest.raises(DeadlockError) as exc_info:
            env.run(until=done)
        message = str(exc_info.value)
        assert "p2p-producer" in message
        assert "p2p-store" in message

    def test_executor_watchdog_preempts_the_wedge(self):
        """With a recovery policy armed, the same wedge surfaces as a
        watchdog-driven degradation instead of a DeadlockError."""
        from repro.faults import FaultInjector, FaultPlan, FaultSpec, \
            RecoveryPolicy
        from repro.runtime import EspRuntime, chain
        from tests.conftest import make_soc, make_spec

        soc = make_soc([("s0", make_spec(name="s0")),
                        ("s1", make_spec(name="s1"))])
        # Kill the consumer's load requests permanently: s0's store
        # queue fills and wedges, exactly the drained-schedule case —
        # but the stream watchdog fires first and the run degrades.
        plan = FaultPlan([FaultSpec(kind="p2p_req_drop", target="s1",
                                    at_cycle=0, count=None)])
        FaultInjector(plan).attach(soc)
        runtime = EspRuntime(
            soc, recovery=RecoveryPolicy(watchdog_cycles=20_000))
        frames = np.arange(4 * 16, dtype=float).reshape(4, 16)
        result = runtime.esp_run(chain("two", ["s0", "s1"]), frames,
                                 mode="p2p")
        np.testing.assert_array_equal(result.outputs, frames + 2.0)
        assert result.degraded
