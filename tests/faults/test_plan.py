"""Tests for fault plans: spec validation, scheduling, determinism."""

import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    RecoveryPolicy,
    zero_fault_plan,
)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor_strike", at_cycle=0)

    def test_needs_a_trigger(self):
        with pytest.raises(ValueError, match="at_cycle or a probability"):
            FaultSpec(kind="link_drop")

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(kind="link_drop", probability=1.5)

    def test_count_bounds(self):
        with pytest.raises(ValueError, match="count"):
            FaultSpec(kind="link_drop", at_cycle=0, count=0)

    def test_duration_bounds(self):
        with pytest.raises(ValueError, match="duration"):
            FaultSpec(kind="dma_stall", at_cycle=0, duration=0)

    def test_factor_bounds(self):
        with pytest.raises(ValueError, match="factor"):
            FaultSpec(kind="acc_slow", at_cycle=0, factor=0.5)

    def test_every_kind_constructs(self):
        for kind in FAULT_KINDS:
            FaultSpec(kind=kind, at_cycle=0)


class TestFaultPlan:
    def test_at_cycle_fires_at_first_opportunity_after(self):
        plan = FaultPlan([FaultSpec(kind="acc_hang", at_cycle=100)])
        assert plan.draw("acc_hang", "dev", 50) is None
        spec = plan.draw("acc_hang", "dev", 100)
        assert spec is not None and spec.fired == 1

    def test_count_exhaustion(self):
        plan = FaultPlan([FaultSpec(kind="acc_hang", at_cycle=0,
                                    count=2)])
        assert plan.draw("acc_hang", "dev", 0) is not None
        assert plan.draw("acc_hang", "dev", 1) is not None
        assert plan.draw("acc_hang", "dev", 2) is None
        assert plan.faults[0].exhausted

    def test_target_filter(self):
        plan = FaultPlan([FaultSpec(kind="acc_crash", target="nv0",
                                    at_cycle=0)])
        assert plan.draw("acc_crash", "cl0", 0) is None
        assert plan.draw("acc_crash", "nv0", 0) is not None

    def test_kind_filter(self):
        plan = FaultPlan([FaultSpec(kind="acc_crash", at_cycle=0)])
        assert plan.draw("acc_hang", "dev", 0) is None

    def test_plane_and_message_kind_filter(self):
        plan = FaultPlan([FaultSpec(kind="link_drop", at_cycle=0,
                                    plane="dma-rsp",
                                    message_kind="DMA_RSP")])
        assert plan.draw("link_drop", None, 0, plane="dma-req",
                         message_kind="DMA_RSP") is None
        assert plan.draw("link_drop", None, 0, plane="dma-rsp",
                         message_kind="DMA_REQ") is None
        assert plan.draw("link_drop", None, 0, plane="dma-rsp",
                         message_kind="DMA_RSP") is not None

    def test_probabilistic_draws_are_seed_deterministic(self):
        def firing_pattern(seed):
            plan = FaultPlan([FaultSpec(kind="link_drop",
                                        probability=0.3, count=None)],
                             seed=seed)
            return [plan.draw("link_drop", None, t) is not None
                    for t in range(50)]

        assert firing_pattern(7) == firing_pattern(7)
        assert firing_pattern(7) != firing_pattern(8)

    def test_event_log_and_summary(self):
        plan = FaultPlan([FaultSpec(kind="acc_hang", at_cycle=0,
                                    count=2)])
        plan.draw("acc_hang", "dev", 5)
        plan.draw("acc_hang", "dev", 9)
        assert plan.fired == 2
        assert [e.cycle for e in plan.events] == [5, 9]
        assert plan.summary() == "acc_hangx2"

    def test_zero_fault_plan_never_fires(self):
        plan = zero_fault_plan()
        for kind in FAULT_KINDS:
            assert plan.draw(kind, "dev", 0) is None
        assert plan.summary() == "no faults fired"

    def test_first_matching_spec_wins(self):
        first = FaultSpec(kind="acc_hang", at_cycle=0, count=1)
        second = FaultSpec(kind="acc_hang", at_cycle=0, count=1)
        plan = FaultPlan([first, second])
        assert plan.draw("acc_hang", "dev", 0) is first
        assert plan.draw("acc_hang", "dev", 1) is second


class TestRecoveryPolicy:
    def test_watchdog_backoff_is_exponential(self):
        policy = RecoveryPolicy(watchdog_cycles=1000, backoff_factor=2.0)
        assert policy.watchdog_for(0) == 1000
        assert policy.watchdog_for(1) == 2000
        assert policy.watchdog_for(2) == 4000

    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(watchdog_cycles=0)
        with pytest.raises(ValueError):
            RecoveryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_factor=0.5)
