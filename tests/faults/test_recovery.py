"""Tests for watchdog / retry / degradation across the runtime stack."""

import numpy as np
import pytest

from repro.faults import (
    AcceleratorTimeout,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    NodeFailed,
    RecoveryPolicy,
)
from repro.runtime import EspRuntime, RuntimeCosts, chain
from tests.conftest import make_soc, make_spec


def three_stage_soc():
    """The Fig. 7 shape in miniature: a 3-deep chain of sockets."""
    return make_soc([("s0", make_spec(name="s0")),
                     ("s1", make_spec(name="s1")),
                     ("s2", make_spec(name="s2"))])


DATAFLOW = ["s0", "s1", "s2"]


def run_chain(soc, mode="pipe", n_frames=4, recovery=None, costs=None):
    runtime = EspRuntime(soc, costs=costs, recovery=recovery)
    frames = np.arange(n_frames * 16, dtype=float).reshape(n_frames, 16)
    result = runtime.esp_run(chain("three", DATAFLOW), frames, mode=mode)
    return runtime, result, frames + 3.0   # each stage adds one


def policy(**kwargs):
    kwargs.setdefault("watchdog_cycles", 20_000)
    return RecoveryPolicy(**kwargs)


class TestWatchdogCap:
    def test_uncapped_backoff_grows_exponentially(self):
        p = policy(backoff_factor=2.0)
        assert [p.watchdog_for(a) for a in range(4)] == \
            [20_000, 40_000, 80_000, 160_000]

    def test_cap_clamps_backed_off_deadlines(self):
        p = policy(backoff_factor=2.0, max_watchdog_cycles=50_000)
        assert [p.watchdog_for(a) for a in range(4)] == \
            [20_000, 40_000, 50_000, 50_000]

    def test_cap_below_base_deadline_rejected(self):
        with pytest.raises(ValueError, match="max_watchdog_cycles"):
            policy(max_watchdog_cycles=10_000)

    def test_cap_equal_to_base_pins_every_attempt(self):
        p = policy(backoff_factor=4.0, max_watchdog_cycles=20_000)
        assert [p.watchdog_for(a) for a in range(3)] == [20_000] * 3

    def test_capped_policy_still_recovers_a_hang(self):
        soc = three_stage_soc()
        FaultInjector(FaultPlan([
            FaultSpec(kind="acc_hang", target="s1", at_cycle=1,
                      count=1)])).attach(soc)
        runtime, result, expected = run_chain(
            soc, recovery=policy(max_retries=2, backoff_factor=8.0,
                                 max_watchdog_cycles=25_000))
        assert (result.outputs == expected).all()
        assert runtime.executor.watchdog_timeouts >= 1


class TestHangRecovery:
    def test_pipe_hang_recovers_bit_exact_via_retry(self):
        """The headline scenario: a kernel hang in the middle stage of
        a three-stage pipeline is caught by the watchdog, the device is
        reset and re-invoked, and the batch completes bit-exact."""
        soc = three_stage_soc()
        plan = FaultPlan([FaultSpec(kind="acc_hang", target="s1",
                                    at_cycle=0, count=1)])
        FaultInjector(plan).attach(soc)
        _, result, expected = run_chain(soc, recovery=policy())

        np.testing.assert_array_equal(result.outputs, expected)
        assert result.watchdog_timeouts == 1
        assert result.retries == 1
        assert not result.degraded
        assert soc.accelerators["s1"].resets >= 1

    def test_p2p_hang_degrades_and_stays_bit_exact(self):
        """A hang mid-stream cannot be retried (the stream's peers hold
        partial progress): the whole run degrades to a pipe re-run with
        the failed device in software, still bit-exact."""
        soc = three_stage_soc()
        plan = FaultPlan([FaultSpec(kind="acc_hang", target="s1",
                                    at_cycle=0, count=1)])
        FaultInjector(plan).attach(soc)
        runtime, result, expected = run_chain(soc, mode="p2p",
                                              recovery=policy())

        np.testing.assert_array_equal(result.outputs, expected)
        assert result.degraded
        assert result.software_frames >= 4
        # The watchdog cannot attribute a stalled stream to its root
        # cause (every peer blocks on the wedged stage), so it marks
        # the first stream whose deadline expires — not necessarily s1.
        assert runtime.registry.failed_names()

    def test_hang_exhausting_retries_falls_back_to_software(self):
        """A permanent hang (the fault re-fires on every attempt) burns
        all retries, then the executor runs the stage on the CPU."""
        soc = three_stage_soc()
        plan = FaultPlan([FaultSpec(kind="acc_hang", target="s1",
                                    at_cycle=0, count=None)])
        FaultInjector(plan).attach(soc)
        runtime, result, expected = run_chain(
            soc, recovery=policy(max_retries=1))

        np.testing.assert_array_equal(result.outputs, expected)
        assert result.retries == 1
        assert result.watchdog_timeouts == 2
        assert result.software_frames == 4
        assert runtime.registry.is_failed("s1")

    def test_fallback_disabled_surfaces_node_failed(self):
        soc = three_stage_soc()
        plan = FaultPlan([FaultSpec(kind="acc_hang", target="s1",
                                    at_cycle=0, count=None)])
        FaultInjector(plan).attach(soc)
        with pytest.raises(NodeFailed, match="s1"):
            run_chain(soc, recovery=policy(max_retries=0,
                                           software_fallback=False))


class TestCrashRecovery:
    def test_crash_reports_error_status_and_retries(self):
        """A kernel crash raises STATUS_ERROR (not a timeout): the
        driver sees the error immediately and re-invokes."""
        soc = three_stage_soc()
        plan = FaultPlan([FaultSpec(kind="acc_crash", target="s1",
                                    at_cycle=0, count=1)])
        FaultInjector(plan).attach(soc)
        _, result, expected = run_chain(soc, recovery=policy())

        np.testing.assert_array_equal(result.outputs, expected)
        assert result.retries == 1
        assert result.watchdog_timeouts == 0   # detected via status
        assert soc.accelerators["s1"].kernel_crashes == 1


class TestFailedDeviceRouting:
    def test_marked_failed_device_runs_in_software(self):
        soc = three_stage_soc()
        runtime = EspRuntime(soc, recovery=policy())
        runtime.registry.mark_failed("s1")
        frames = np.arange(4 * 16, dtype=float).reshape(4, 16)
        result = runtime.esp_run(chain("three", DATAFLOW), frames,
                                 mode="pipe")
        np.testing.assert_array_equal(result.outputs, frames + 3.0)
        assert result.software_frames == 4
        assert result.retries == 0   # no hardware attempt at all

    def test_p2p_rerun_after_degradation_keeps_working(self):
        """After a degraded run marked devices, a later p2p request on
        the same runtime degrades cleanly again instead of wedging."""
        soc = three_stage_soc()
        plan = FaultPlan([FaultSpec(kind="acc_hang", target="s1",
                                    at_cycle=0, count=1)])
        FaultInjector(plan).attach(soc)
        runtime, first, expected = run_chain(soc, mode="p2p",
                                             recovery=policy())
        np.testing.assert_array_equal(first.outputs, expected)

        frames = np.arange(4 * 16, dtype=float).reshape(4, 16)
        second = runtime.esp_run(chain("three", DATAFLOW), frames,
                                 mode="p2p")
        np.testing.assert_array_equal(second.outputs, expected)
        assert second.degraded


class TestBoundedPolling:
    def test_poll_loop_times_out_with_descriptive_error(self):
        """Satellite (b): the polling wait carries a configurable bound
        and raises AcceleratorTimeout instead of spinning forever."""
        soc = three_stage_soc()
        plan = FaultPlan([FaultSpec(kind="acc_hang", target="s0",
                                    at_cycle=0, count=1)])
        FaultInjector(plan).attach(soc)
        with pytest.raises(AcceleratorTimeout) as exc_info:
            run_chain(soc, mode="base",
                      costs=RuntimeCosts(completion="poll",
                                         max_wait_cycles=5_000))
        err = exc_info.value
        assert err.device == "s0"
        assert err.waited_cycles >= 5_000
        assert "max_wait_cycles" in str(err)

    def test_unbounded_poll_is_default(self):
        costs = RuntimeCosts()
        assert costs.max_wait_cycles is None

    def test_bound_validation(self):
        with pytest.raises(ValueError, match="max_wait_cycles"):
            RuntimeCosts(max_wait_cycles=0)


class TestWatchdogAccounting:
    def test_zero_fault_run_with_recovery_has_no_retries(self):
        soc = three_stage_soc()
        _, result, expected = run_chain(soc, recovery=policy())
        np.testing.assert_array_equal(result.outputs, expected)
        assert result.retries == 0
        assert result.watchdog_timeouts == 0
        assert result.software_frames == 0
        assert not result.degraded

    def test_bounded_reg_read_abandons_lost_replies(self):
        """A lost register access is abandoned after a bound instead
        of hanging the dispatcher: the bounded read returns None and
        counts the timeout."""
        from repro.soc import STATUS_REG

        soc = three_stage_soc()
        plan = FaultPlan([FaultSpec(kind="link_drop", at_cycle=0,
                                    message_kind="REG_ACCESS", count=1)])
        FaultInjector(plan).attach(soc)
        tile = soc.accelerators["s0"]
        box = {}

        def reader():
            box["value"] = yield from soc.cpu.read_reg_bounded(
                tile.coord, STATUS_REG, max_cycles=500)

        done = soc.env.process(reader())
        soc.env.run(until=done)
        assert box["value"] is None
        assert soc.cpu.reg_read_timeouts == 1
