"""Declarative SLO rules and the firing/resolved health monitor.

A production serving stack does not read dashboards — it evaluates
*rules* against the live metrics and pages when one fires. This module
is that layer for the simulated SoC: an :class:`SloRule` is a named
predicate over the :class:`MetricsRegistry`; the :class:`HealthMonitor`
evaluates its rule set (typically from a :class:`MetricsSampler` tick)
and tracks each rule's alert through the ``firing -> resolved``
transition, keeping a history of every transition with the cycle it
happened at.

Rule factories for the standard failure modes ship below:

- :func:`queue_saturation_rule` — admission queue near its bound;
- :func:`latency_slo_rule` — a tenant burning its latency error
  budget (fraction of requests over target, from histogram buckets);
- :func:`latency_burn_rule` — the same signal over the *delta*
  between evaluations, so the alert resolves once recent requests
  are fast again (the shape a remediating controller needs);
- :func:`link_congestion_rule` — a NoC link above a utilization
  ceiling;
- :func:`accelerator_stall_rule` — a tile whose status register says
  RUNNING but whose progress heartbeat has gone quiet (the observable
  signature of a hung kernel or wedged DMA engine).

Evaluation reads registry state only: it never schedules events, so a
monitor (like all recording) cannot perturb simulated timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .registry import MetricsRegistry

#: Alert severities, mildest first. ``status()`` reports the worst
#: severity among currently-firing alerts.
SEVERITIES = ("info", "warning", "critical")

STATE_FIRING = "firing"
STATE_RESOLVED = "resolved"


@dataclass(frozen=True)
class SloRule:
    """One declarative health rule.

    ``check(registry, now)`` returns ``None`` when the rule is
    satisfied, or a human-readable violation detail when it is not.

    ``fire_after`` / ``resolve_after`` override the monitor's
    hysteresis for this rule (0 = inherit the monitor's setting): the
    rule must breach on that many *consecutive* evaluations before its
    alert fires, and pass on that many before it resolves.
    """

    name: str
    check: Callable[[MetricsRegistry, int], Optional[str]]
    severity: str = "warning"
    description: str = ""
    fire_after: int = 0
    resolve_after: int = 0

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}, "
                             f"got {self.severity!r}")
        if self.fire_after < 0 or self.resolve_after < 0:
            raise ValueError("fire_after/resolve_after must be >= 0")


@dataclass
class Alert:
    """One rule's alert lifecycle: fired at some cycle, maybe resolved."""

    rule: str
    severity: str
    state: str
    fired_at: int
    detail: str
    resolved_at: Optional[int] = None

    @property
    def is_firing(self) -> bool:
        return self.state == STATE_FIRING

    def __repr__(self) -> str:
        window = (f"@{self.fired_at}"
                  if self.resolved_at is None
                  else f"@{self.fired_at}..{self.resolved_at}")
        return (f"<Alert {self.rule} [{self.severity}] {self.state} "
                f"{window}>")


@dataclass
class HealthMonitor:
    """Evaluates a rule set against the registry; tracks transitions.

    ``fire_after`` / ``resolve_after`` add hysteresis: a rule must
    breach on that many consecutive evaluations before its alert
    fires, and pass on that many before it resolves, so one noisy
    scrape cannot flap an alert. The defaults (1/1) fire and resolve
    immediately — the pre-hysteresis behavior. Rules can override
    either knob individually via :class:`SloRule`.
    """

    registry: MetricsRegistry
    rules: Sequence[SloRule] = ()
    #: Consecutive breaching evaluations before an alert fires.
    fire_after: int = 1
    #: Consecutive clean evaluations before an alert resolves.
    resolve_after: int = 1
    #: Currently-firing alert per rule name.
    active: Dict[str, Alert] = field(default_factory=dict)
    #: Every alert ever raised (firing and resolved), in fire order.
    history: List[Alert] = field(default_factory=list)
    evaluations: int = 0

    def __post_init__(self) -> None:
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names in {names}")
        if self.fire_after < 1 or self.resolve_after < 1:
            raise ValueError("fire_after/resolve_after must be >= 1")
        self.rules = list(self.rules)
        self._breach_streak: Dict[str, int] = {}
        self._clean_streak: Dict[str, int] = {}
        self._subscribers: List[Callable[..., None]] = []

    def add_rule(self, rule: SloRule) -> None:
        if any(r.name == rule.name for r in self.rules):
            raise ValueError(f"rule {rule.name!r} already registered")
        self.rules.append(rule)

    def subscribe(self, fn: Callable[..., None]) -> None:
        """Register ``fn(monitor, transitions)`` to run after every
        evaluation pass (even when nothing transitioned — subscribers
        like the control plane also act on alert *persistence*)."""
        self._subscribers.append(fn)

    def _thresholds(self, rule: SloRule) -> tuple:
        fire = rule.fire_after or self.fire_after
        resolve = rule.resolve_after or self.resolve_after
        return fire, resolve

    def evaluate(self) -> List[Alert]:
        """One evaluation pass; returns alerts that *transitioned*.

        Refreshes collector-backed gauges first, then checks every
        rule: a violation with no active alert fires one (once the
        breach streak reaches ``fire_after``); a satisfied rule with
        an active alert resolves it (once the clean streak reaches
        ``resolve_after``). A rule that stays violated keeps its
        original alert (and ``fired_at``) — alerts do not re-fire on
        every tick, only on state changes, so the history length
        measures incidents, not evaluations. Subscribers registered
        via :meth:`subscribe` run after the pass.
        """
        self.registry.run_collectors()
        now = self.registry.env.now
        self.evaluations += 1
        transitions: List[Alert] = []
        for rule in self.rules:
            detail = rule.check(self.registry, now)
            alert = self.active.get(rule.name)
            fire_after, resolve_after = self._thresholds(rule)
            if detail is not None:
                streak = self._breach_streak.get(rule.name, 0) + 1
                self._breach_streak[rule.name] = streak
                self._clean_streak[rule.name] = 0
                if alert is None and streak >= fire_after:
                    alert = Alert(rule=rule.name,
                                  severity=rule.severity,
                                  state=STATE_FIRING, fired_at=now,
                                  detail=detail)
                    self.active[rule.name] = alert
                    self.history.append(alert)
                    transitions.append(alert)
                elif alert is not None:
                    alert.detail = detail   # keep the message current
            else:
                streak = self._clean_streak.get(rule.name, 0) + 1
                self._clean_streak[rule.name] = streak
                self._breach_streak[rule.name] = 0
                if alert is not None and streak >= resolve_after:
                    alert.state = STATE_RESOLVED
                    alert.resolved_at = now
                    del self.active[rule.name]
                    transitions.append(alert)
        for fn in self._subscribers:
            fn(self, transitions)
        return transitions

    def status(self) -> str:
        """``healthy`` / ``degraded`` / ``critical`` right now."""
        if not self.active:
            return "healthy"
        worst = max(SEVERITIES.index(a.severity)
                    for a in self.active.values())
        return "critical" if SEVERITIES[worst] == "critical" \
            else "degraded"

    def firing(self) -> List[Alert]:
        return sorted(self.active.values(), key=lambda a: a.fired_at)

    def render(self) -> str:
        lines = [f"health: {self.status()} "
                 f"({self.evaluations} evaluations, "
                 f"{len(self.history)} incidents)"]
        for alert in self.firing():
            lines.append(f"  FIRING [{alert.severity}] {alert.rule} "
                         f"since cycle {alert.fired_at}: {alert.detail}")
        return "\n".join(lines)


# -- rule factories ---------------------------------------------------------

def _gauge_series(registry: MetricsRegistry, name: str):
    """Series of a gauge family, or [] when it never got registered."""
    try:
        family = registry.get(name)
    except KeyError:
        return []
    return family.series()


def queue_saturation_rule(max_depth: int, fraction: float = 0.8,
                          severity: str = "warning") -> SloRule:
    """Fires while the serve queue is at >= ``fraction`` of its bound."""
    threshold = max(1, int(max_depth * fraction))

    def check(registry: MetricsRegistry, now: int) -> Optional[str]:
        depth = registry.serve_queue_depth.value
        if depth >= threshold:
            return (f"queue depth {depth} >= {threshold} "
                    f"({fraction:.0%} of max_depth {max_depth})")
        return None

    return SloRule(
        name="queue-saturation", check=check, severity=severity,
        description=(f"admission queue at {fraction:.0%} of its "
                     f"{max_depth}-request bound"))


def latency_slo_rule(tenant: str, target_cycles: int,
                     error_budget: float = 0.01,
                     min_requests: int = 5,
                     severity: str = "warning") -> SloRule:
    """Fires while ``tenant`` burns its latency error budget.

    The burn signal is the fraction of completed requests whose
    end-to-end latency exceeded ``target_cycles``, computed from the
    ``serve_request_cycles`` histogram buckets (conservative: a
    request sharing the target's bucket counts as over — see
    ``HistogramSeries.fraction_over``). Below ``min_requests``
    completions the rule stays quiet (no signal, no alert).
    """

    def check(registry: MetricsRegistry, now: int) -> Optional[str]:
        series = registry.serve_request_cycles.labels(tenant)
        if series.count < min_requests:
            return None
        over = series.fraction_over(target_cycles)
        if over > error_budget:
            return (f"tenant {tenant!r}: {over:.1%} of "
                    f"{series.count} requests over "
                    f"{target_cycles} cycles (budget "
                    f"{error_budget:.1%})")
        return None

    return SloRule(
        name=f"latency-slo:{tenant}", check=check, severity=severity,
        description=(f"{tenant!r} requests over {target_cycles} cycles "
                     f"beyond a {error_budget:.1%} error budget"))


def latency_burn_rule(tenant: str, target_cycles: int,
                      error_budget: float = 0.25,
                      min_requests: int = 2,
                      severity: str = "warning") -> SloRule:
    """Fires while ``tenant``'s *recent* completions burn the budget.

    :func:`latency_slo_rule` computes the over-target fraction over
    the whole cumulative histogram, so once enough slow requests have
    accumulated the alert can never resolve — even after a remediation
    restores hardware-speed serving. This variant evaluates the burn
    over the **delta** between evaluations: the fraction of requests
    completed since the last check that exceeded ``target_cycles``.
    Windows with fewer than ``min_requests`` new completions hold the
    previous verdict (a stalled tenant completing nothing stays in
    breach; a quiet healthy tenant stays clean).
    """
    state = {"count": 0.0, "over": 0.0, "breaching": False}

    def check(registry: MetricsRegistry, now: int) -> Optional[str]:
        series = registry.serve_request_cycles.labels(tenant)
        count = float(series.count)
        over = series.fraction_over(target_cycles) * count \
            if count else 0.0
        d_count = count - state["count"]
        d_over = over - state["over"]
        if d_count >= min_requests:
            state["count"], state["over"] = count, over
            fraction = d_over / d_count
            state["breaching"] = fraction > error_budget
            if state["breaching"]:
                state["detail"] = (
                    f"tenant {tenant!r}: {fraction:.1%} of last "
                    f"{int(d_count)} requests over {target_cycles} "
                    f"cycles (budget {error_budget:.1%})")
        if state["breaching"]:
            return state.get(
                "detail",
                f"tenant {tenant!r} burning latency budget")
        return None

    return SloRule(
        name=f"latency-burn:{tenant}", check=check, severity=severity,
        description=(f"{tenant!r} recent requests over "
                     f"{target_cycles} cycles beyond a "
                     f"{error_budget:.1%} error budget"))


def link_congestion_rule(threshold: float = 0.9,
                         severity: str = "warning") -> SloRule:
    """Fires while any NoC link's utilization exceeds ``threshold``.

    Needs the SoC collectors (``register_soc_collectors``) so the
    ``noc_link_utilization`` gauges exist; without them the rule is
    silent rather than failing.
    """

    def check(registry: MetricsRegistry, now: int) -> Optional[str]:
        worst = None
        for values, series in _gauge_series(registry,
                                            "noc_link_utilization"):
            if series.value > threshold and (
                    worst is None or series.value > worst[1]):
                worst = (values, series.value)
        if worst is not None:
            (link, plane), utilization = worst[0], worst[1]
            return (f"link {link} plane {plane} at "
                    f"{utilization:.0%} utilization "
                    f"(threshold {threshold:.0%})")
        return None

    return SloRule(
        name="link-congestion", check=check, severity=severity,
        description=f"a NoC link above {threshold:.0%} utilization")


def stalled_devices(registry: MetricsRegistry, now: int,
                    quiet_cycles: int) -> List[tuple]:
    """``(device, quiet)`` pairs for RUNNING tiles whose progress
    heartbeat is older than ``quiet_cycles``.

    Shared by :func:`accelerator_stall_rule` and the control plane
    (which needs the offending device names, not just the alert
    detail string). Needs the SoC collectors for the ``acc_status``
    gauge; returns ``[]`` without them.
    """
    from ..soc.registers import STATUS_RUNNING

    stalled = []
    for values, series in _gauge_series(registry, "acc_status"):
        if series.value != STATUS_RUNNING:
            continue
        device = values[0]
        last = registry.acc_last_progress.labels(device).value
        quiet = now - last
        if quiet > quiet_cycles:
            stalled.append((device, quiet))
    return stalled


def accelerator_stall_rule(quiet_cycles: int,
                           severity: str = "critical") -> SloRule:
    """Fires while a RUNNING tile's progress heartbeat is quiet.

    A healthy invocation completes DMA transactions continuously;
    ``acc_last_progress_cycle`` tracks the latest one per device. A
    device whose ``STATUS_REG`` reads RUNNING but whose heartbeat is
    older than ``quiet_cycles`` is wedged — a hung kernel, a dead DMA
    engine, or a lost p2p request upstream. Needs the SoC collectors
    for the live ``acc_status`` gauge.
    """

    def check(registry: MetricsRegistry, now: int) -> Optional[str]:
        stalled = stalled_devices(registry, now, quiet_cycles)
        if stalled:
            worst = max(stalled, key=lambda s: s[1])
            return (f"device {worst[0]!r} RUNNING with no progress "
                    f"for {worst[1]} cycles (threshold "
                    f"{quiet_cycles}); {len(stalled)} stalled total")
        return None

    return SloRule(
        name="accelerator-stall", check=check, severity=severity,
        description=(f"a RUNNING tile quiet for more than "
                     f"{quiet_cycles} cycles"))


def default_rules(server, target_cycles: Optional[int] = None,
                  quiet_cycles: Optional[int] = None) -> List[SloRule]:
    """A sensible rule set for one :class:`InferenceServer`.

    ``quiet_cycles`` defaults to twice the slowest registered kernel's
    per-frame compute latency: the longest legitimate heartbeat gap is
    one COMPUTE phase (no DMA completes while the kernel crunches), so
    2x that cannot false-positive on a healthy tile, while a genuinely
    hung kernel stays quiet forever and still trips it.
    """
    if quiet_cycles is None:
        slowest = max((tile.spec.latency_cycles
                       for tile in server.soc.accelerators.values()),
                      default=1000)
        quiet_cycles = 2 * slowest
    rules = [
        queue_saturation_rule(server.config.max_queue_depth),
        link_congestion_rule(),
        accelerator_stall_rule(quiet_cycles),
    ]
    if target_cycles is not None:
        for tenant in server.tenants:
            rules.append(latency_slo_rule(tenant, target_cycles))
    return rules
