"""The live metrics registry: labeled counters, gauges and histograms.

The tracing subsystem (:mod:`repro.trace`) answers *what happened* by
logging every event; this module answers *how is it going right now*
by keeping aggregated series the way a production inference server's
telemetry stack does (cf. NVDLA's CSB status interface and VTA's
runtime instrumentation counters). One :class:`MetricsRegistry`
attaches to the simulation :class:`~repro.sim.Environment`; every
layer of the stack reports into it through three series kinds:

- :class:`Counter` — monotonically increasing totals (packets, DMA
  words, admissions, watchdog timeouts);
- :class:`Gauge` — instantaneous values (queue depth, last-progress
  cycle, link utilization);
- :class:`Histogram` — distributions over fixed log-spaced buckets
  (invocation latency, end-to-end request latency).

Design rules (the same contract as the tracer and the fault hooks):

- **Zero timing impact.** Recording never yields, never schedules an
  event and never advances the clock: a metrics-enabled run is
  cycle-for-cycle *and event-for-event* identical to a metrics-off
  run. Only the opt-in :class:`MetricsSampler` schedules anything,
  and even it only adds its own timeout events — it cannot perturb
  the timing of other processes.
- **O(1), allocation-free hot path.** ``Counter.inc`` and
  ``Gauge.set`` are single integer/float updates on a slotted object;
  ``Histogram.observe`` finds its bucket with one ``bit_length`` call
  (the default buckets are powers of two). No record objects are
  created per event — that is the difference from the tracer, and why
  metrics can stay on in production-sized runs.
- **Near-zero overhead when disabled.** Instrumentation sites guard
  with ``env.metrics is None`` — one attribute load and a pointer
  compare.

The registry pre-creates the standard instrumentation families (NoC,
DMA, accelerator, runtime, serve) as attributes so hot sites pay one
attribute load plus one dict lookup, never a name lookup by string.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets for cycle-valued observations: log-spaced
#: powers of two from 1 to 2^24 cycles. Power-of-two spacing makes
#: ``observe`` O(1) (one ``bit_length``) and bounds the relative error
#: of any bucket-interpolated quantile by a factor of two (see
#: :meth:`repro.eval.harness.LatencySummary.from_histogram`).
CYCLE_BUCKETS: Tuple[int, ...] = tuple(1 << k for k in range(25))


class MetricsError(Exception):
    """Raised for registry misuse (name clash, label mismatch, ...)."""


class CounterSeries:
    """One labeled child of a :class:`Counter`: a monotonic total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MetricsError(f"counter decremented by {amount}")
        self.value += amount


class GaugeSeries:
    """One labeled child of a :class:`Gauge`: an instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount


class HistogramSeries:
    """One labeled child of a :class:`Histogram`.

    ``counts[i]`` is the number of observations in bucket ``i`` — the
    *non-cumulative* per-bucket count; ``counts[-1]`` is the overflow
    (``+Inf``) bucket. The Prometheus exporter cumulates at exposition
    time, so recording stays a single ``+= 1``.

    Exemplars: an observation may carry a trace ID; the series keeps
    the *last* ``(trace_id, value)`` per bucket (OpenMetrics-style
    exemplars), which is what links a bad latency percentile back to
    one replayable request timeline. Storage is lazy — a series never
    given an exemplar holds a single ``None``.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "max", "_pow2",
                 "exemplars")

    def __init__(self, bounds: Tuple[int, ...], pow2: bool) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0
        self.count = 0
        #: Exact maximum observed value (one compare per observation;
        #: lets summaries report a true max instead of a bucket edge).
        self.max = 0
        self._pow2 = pow2
        #: Lazily created ``{bucket_index: (trace_id, value)}``.
        self.exemplars = None

    def observe(self, value, exemplar=None) -> None:
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value
        if self._pow2:
            # Smallest i with value <= 2**i, in O(1): for v >= 1,
            # (v - 1).bit_length() == ceil(log2(v)).
            v = int(value)
            index = 0 if v <= 1 else (v - 1).bit_length()
            if index > len(self.bounds):
                index = len(self.bounds)
        else:
            index = self._bisect(value)
        self.counts[index] += 1
        if exemplar is not None:
            if self.exemplars is None:
                self.exemplars = {}
            self.exemplars[index] = (exemplar, value)

    def _bisect(self, value) -> int:
        bounds = self.bounds
        lo, hi = 0, len(bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def bucket_index(self, value) -> int:
        """The bucket an observation of ``value`` would land in."""
        if self._pow2:
            v = int(value)
            index = 0 if v <= 1 else (v - 1).bit_length()
            return min(index, len(self.bounds))
        return self._bisect(value)

    def fraction_over(self, threshold) -> float:
        """Fraction of observations strictly above ``threshold``.

        Exact when ``threshold`` is a bucket bound; otherwise
        conservative (an observation sharing the threshold's bucket
        counts as *over*) — an SLO evaluated through this never
        under-reports a violation.
        """
        if self.count == 0:
            return 0.0
        index = self.bucket_index(threshold)
        if index < len(self.bounds) and self.bounds[index] == threshold:
            index += 1
        under = sum(self.counts[:index])
        return (self.count - under) / self.count


class MetricFamily:
    """Base of the three family kinds: a named, labeled series set."""

    kind = "untyped"

    def __init__(self, name: str, help: str,
                 label_names: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise MetricsError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise MetricsError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._series: Dict[Tuple[str, ...], object] = {}

    def _make_series(self):
        raise NotImplementedError

    def labels(self, *values: str):
        """The child series for one label-value combination (cached)."""
        series = self._series.get(values)
        if series is None:
            if len(values) != len(self.label_names):
                raise MetricsError(
                    f"{self.name}: expected {len(self.label_names)} "
                    f"label values {self.label_names}, got {values!r}")
            series = self._series[values] = self._make_series()
        return series

    def series(self) -> List[Tuple[Tuple[str, ...], object]]:
        """Every (label values, series) pair, in stable sorted order."""
        return sorted(self._series.items(),
                      key=lambda item: tuple(map(str, item[0])))

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.name!r} "
                f"{len(self._series)} series>")


class Counter(MetricFamily):
    """A family of monotonically increasing totals."""

    kind = "counter"

    def _make_series(self) -> CounterSeries:
        return CounterSeries()

    def inc(self, amount: int = 1) -> None:
        """Increment the unlabeled series (labelless families only)."""
        self.labels().inc(amount)

    @property
    def total(self):
        """Sum over every labeled series."""
        return sum(s.value for s in self._series.values())


class Gauge(MetricFamily):
    """A family of instantaneous values."""

    kind = "gauge"

    def _make_series(self) -> GaugeSeries:
        return GaugeSeries()

    def set(self, value) -> None:
        self.labels().set(value)

    @property
    def value(self):
        """The unlabeled series' value (labelless families only)."""
        return self.labels().value


class Histogram(MetricFamily):
    """A family of fixed-bucket distributions."""

    kind = "histogram"

    def __init__(self, name: str, help: str,
                 label_names: Sequence[str] = (),
                 buckets: Sequence[int] = CYCLE_BUCKETS) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(buckets)
        if not bounds:
            raise MetricsError(f"{name}: histogram needs >= 1 bucket")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise MetricsError(f"{name}: bucket bounds must increase")
        self.bounds = bounds
        self._pow2 = all(
            isinstance(b, int) and b > 0 and b & (b - 1) == 0
            for b in bounds) and bounds[0] == 1 and all(
            b == a * 2 for a, b in zip(bounds, bounds[1:]))

    def _make_series(self) -> HistogramSeries:
        return HistogramSeries(self.bounds, self._pow2)

    def observe(self, value, exemplar=None) -> None:
        self.labels().observe(value, exemplar=exemplar)


class MetricsRegistry:
    """All metric families of one simulation, plus scrape collectors.

    Attach with :func:`attach_metrics`; instrumentation sites across
    the stack then record into the pre-created standard families. A
    *collector* is a callable run at scrape time (:meth:`collect`,
    :meth:`snapshot`, health evaluation) to refresh gauges from
    hardware counters the hot path never touches — per-link busy
    cycles, accelerator occupancy, memory traffic. Collectors read
    state; they must never schedule simulation events.
    """

    def __init__(self, env, namespace: Optional[str] = None) -> None:
        if namespace is not None and (not _LABEL_RE.match(namespace)
                                      or namespace.startswith("__")):
            raise MetricsError(f"invalid namespace {namespace!r}")
        self.env = env
        #: Optional per-registry prefix applied to every family name.
        #: A fleet attaches one registry per SoC instance; without a
        #: namespace, scraping N instances into one snapshot would
        #: silently collide identical series (``serve_admitted_total``
        #: from instance 0 vs instance 3 are different totals). With
        #: ``namespace="i3"`` the family is ``i3_serve_admitted_total``
        #: — distinct by construction, and ``merge_snapshots`` /
        #: :func:`~repro.metrics.export.to_prometheus` need no
        #: dedup logic. Hot sites are unaffected: they record through
        #: the pre-created attribute families, whatever their names.
        self.namespace = namespace
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

        # -- standard instrumentation schema (hot-path families are
        # attributes: one load instead of a string lookup per event) --
        self.noc_packets = self.counter(
            "noc_packets_total", "Packets delivered, per NoC plane",
            ("plane",))
        self.noc_flits = self.counter(
            "noc_flit_hops_total", "Flit-hops carried, per NoC plane",
            ("plane",))
        self.noc_dropped = self.counter(
            "noc_packets_dropped_total",
            "Packets lost to injected delivery faults", ("plane",))
        self.noc_corrupted = self.counter(
            "noc_packets_corrupted_total",
            "Packets discarded by the link-level CRC", ("plane",))
        self.dma_transactions = self.counter(
            "dma_transactions_total",
            "DMA engine transactions, per device and operation",
            ("device", "op"))
        self.dma_words = self.counter(
            "dma_words_total", "Words moved by the DMA engine",
            ("device", "op"))
        self.dma_stalls = self.counter(
            "dma_stalls_injected_total",
            "Injected DMA stalls (fault campaigns)", ("device",))
        self.acc_invocations = self.counter(
            "acc_invocations_total", "Completed accelerator invocations",
            ("device",))
        self.acc_invocation_cycles = self.histogram(
            "acc_invocation_cycles",
            "End-to-end invocation latency, in cycles", ("device",))
        self.acc_phase_cycles = self.counter(
            "acc_phase_cycles_total",
            "Wrapper cycles spent per LOAD/COMPUTE/STORE phase",
            ("device", "phase"))
        self.acc_crashes = self.counter(
            "acc_kernel_crashes_total",
            "Kernel crashes surfaced through STATUS_ERROR", ("device",))
        self.acc_resets = self.counter(
            "acc_host_resets_total",
            "Host-driven CMD_RESET aborts", ("device",))
        self.acc_last_progress = self.gauge(
            "acc_last_progress_cycle",
            "Cycle of the device's last completed DMA transaction or "
            "invocation (the stall-detection heartbeat)", ("device",))
        self.serve_admitted = self.counter(
            "serve_admitted_total", "Requests past admission control",
            ("tenant",))
        self.serve_rejected = self.counter(
            "serve_rejected_total", "Requests rejected, by reason",
            ("tenant", "reason"))
        self.serve_completed = self.counter(
            "serve_completed_total", "Requests served to completion",
            ("tenant",))
        self.serve_failed = self.counter(
            "serve_failed_total",
            "Requests failed past every recovery layer", ("tenant",))
        self.serve_frames = self.counter(
            "serve_frames_total", "Frames served to completion",
            ("tenant",))
        self.serve_batches = self.counter(
            "serve_batches_total", "Coalesced batches dispatched",
            ("tenant",))
        self.serve_queue_depth = self.gauge(
            "serve_queue_depth", "Requests currently queued, all tenants")
        self.serve_request_cycles = self.histogram(
            "serve_request_cycles",
            "End-to-end (submit-to-complete) request latency, in cycles",
            ("tenant",))
        self.serve_queue_wait_cycles = self.histogram(
            "serve_queue_wait_cycles",
            "Admission-to-dispatch queueing latency, in cycles",
            ("tenant",))
        self.watchdog_timeouts = self.counter(
            "runtime_watchdog_timeouts_total",
            "Invocation watchdogs that expired")
        self.retries = self.counter(
            "runtime_retries_total", "Bounded-retry re-invocations")
        self.degraded_runs = self.counter(
            "runtime_degraded_runs_total",
            "Runs degraded to the CPU software fallback")
        self.control_actions = self.counter(
            "control_actions_total",
            "Remediation actions the control plane attempted, by "
            "action kind and outcome", ("action", "outcome"))
        self.control_last_action = self.gauge(
            "control_last_action_cycle",
            "Cycle of the control plane's last applied action, by "
            "action kind", ("action",))

    # -- family creation ---------------------------------------------------

    def qualify(self, name: str) -> str:
        """``name`` with this registry's namespace prefix applied."""
        if self.namespace is None or name.startswith(
                f"{self.namespace}_"):
            return name
        return f"{self.namespace}_{name}"

    def _register(self, family: MetricFamily) -> MetricFamily:
        existing = self._families.get(family.name)
        if existing is not None:
            if (existing.kind != family.kind
                    or existing.label_names != family.label_names):
                raise MetricsError(
                    f"metric {family.name!r} re-registered as "
                    f"{family.kind}{family.label_names} but exists as "
                    f"{existing.kind}{existing.label_names}")
            return existing
        self._families[family.name] = family
        return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        """Get or create a counter family (idempotent)."""
        return self._register(Counter(self.qualify(name), help, labels))

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        """Get or create a gauge family (idempotent)."""
        return self._register(Gauge(self.qualify(name), help, labels))

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[int] = CYCLE_BUCKETS) -> Histogram:
        """Get or create a histogram family (idempotent)."""
        return self._register(Histogram(self.qualify(name), help, labels,
                                        buckets=buckets))

    def get(self, name: str) -> MetricFamily:
        """Look up a family by name; the bare (un-namespaced) name
        works too, so callers written against the standard schema
        (SLO rules, dashboards) run unchanged on namespaced registries."""
        family = self._families.get(name)
        if family is None:
            family = self._families.get(self.qualify(name))
        if family is None:
            raise KeyError(f"no metric named {name!r}; families: "
                           f"{sorted(self._families)}")
        return family

    @property
    def families(self) -> List[MetricFamily]:
        return list(self._families.values())

    # -- scraping ----------------------------------------------------------

    def register_collector(
            self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """Add a scrape-time refresher (runs on every collect)."""
        self._collectors.append(fn)

    def run_collectors(self) -> None:
        for fn in self._collectors:
            fn(self)

    def collect(self) -> List[MetricFamily]:
        """Refresh collector-backed gauges, then return every family."""
        self.run_collectors()
        return self.families

    def snapshot(self) -> dict:
        """A JSON-able snapshot of every series, at the current cycle."""
        families = []
        for family in self.collect():
            series = []
            for values, child in family.series():
                labels = dict(zip(family.label_names, values))
                if family.kind == "histogram":
                    entry = {
                        "labels": labels,
                        "buckets": list(child.counts),
                        "bounds": list(child.bounds),
                        "sum": child.sum,
                        "count": child.count,
                        "max": child.max,
                    }
                    if child.exemplars:
                        entry["exemplars"] = {
                            str(i): [tid, value]
                            for i, (tid, value)
                            in sorted(child.exemplars.items())}
                    series.append(entry)
                else:
                    series.append({"labels": labels,
                                   "value": child.value})
            families.append({
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "label_names": list(family.label_names),
                "series": series,
            })
        return {"cycle": self.env.now, "families": families}

    def __repr__(self) -> str:
        series = sum(len(f._series) for f in self._families.values())
        return (f"<MetricsRegistry {len(self._families)} families, "
                f"{series} series, {len(self._collectors)} collectors>")


class MetricsSampler:
    """Opt-in periodic scrape loop running *inside* the simulation.

    Recording is passive, so live views (the dashboard, SLO evaluation
    during a run) need something to trigger scrapes while the event
    loop is owned by a workload. The sampler is that trigger: a
    simulation process that calls the given callbacks every
    ``interval`` cycles.

    Determinism note: the sampler schedules its own timeout events, so
    it adds to ``events_processed`` — but pure timeouts cannot perturb
    any other process, so simulated *cycle* counts of the workload are
    unchanged. Runs that pin event counts (``bench_perf``) must not
    arm a sampler; runs that pin cycle counts may.
    """

    def __init__(self, registry: MetricsRegistry, interval: int,
                 callbacks: Sequence[Callable[[MetricsRegistry], None]],
                 max_samples: Optional[int] = None) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.registry = registry
        self.interval = interval
        self.callbacks = list(callbacks)
        self.max_samples = max_samples
        self.samples_taken = 0
        self._process = None
        self._stopped = False

    def start(self) -> "MetricsSampler":
        if self._process is not None:
            return self
        env = self.registry.env
        self._process = env.process(self._loop(), name="metrics-sampler")
        return self

    def stop(self) -> None:
        self._stopped = True
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("sampler stopped")
        self._process = None

    def _loop(self):
        env = self.registry.env
        while not self._stopped:
            yield env.timeout(self.interval)
            if self._stopped:
                return
            self.registry.run_collectors()
            for callback in self.callbacks:
                callback(self.registry)
            self.samples_taken += 1
            if (self.max_samples is not None
                    and self.samples_taken >= self.max_samples):
                return


def _environment_of(target):
    env = getattr(target, "env", None)
    return env if env is not None else target


def attach_metrics(target,
                   namespace: Optional[str] = None) -> MetricsRegistry:
    """Create a :class:`MetricsRegistry` and attach it to the environment.

    ``target`` may be an :class:`~repro.sim.Environment` or anything
    carrying one as ``.env`` (a SoC instance, a runtime, a server).
    ``namespace`` prefixes every family name — required when scraping
    several environments (a fleet of SoC instances) into one snapshot,
    since identical names from different registries would otherwise
    collide. Idempotent: an already-attached registry is returned
    unchanged (asking for a *different* namespace than the attached
    one is a :class:`MetricsError`, not a silent re-label).
    """
    env = _environment_of(target)
    existing = getattr(env, "metrics", None)
    if existing is not None:
        if namespace is not None and existing.namespace != namespace:
            raise MetricsError(
                f"environment already has a registry with namespace "
                f"{existing.namespace!r}; refusing to re-attach as "
                f"{namespace!r}")
        return existing
    env.metrics = MetricsRegistry(env, namespace=namespace)
    return env.metrics


def detach_metrics(target) -> Optional[MetricsRegistry]:
    """Detach (and return) the environment's registry, if any.

    After detaching, every instrumentation site is back to its
    disabled-cost path; the returned registry still holds its series
    for export.
    """
    env = _environment_of(target)
    registry = getattr(env, "metrics", None)
    env.metrics = None
    return registry
