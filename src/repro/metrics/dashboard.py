"""The ASCII ops dashboard: one screen of live SoC state.

``python -m repro metrics-top`` renders this during a serving trace —
the simulated counterpart of watching ``htop`` + a Grafana board over
a production inference cluster. One frame shows:

- a header (cycle, events, health status);
- the tile grid with per-accelerator busy fraction and live status;
- a link-utilization heatmap of the mesh (worst plane per hop);
- a per-tenant latency table from the live histograms
  (:meth:`LatencySummary.from_histogram` — bucket-interpolated
  percentiles, exact mean/max);
- the firing alerts, if any.

Rendering reads registry + simulation state only; like every exporter
it cannot perturb simulated timing.
"""

from __future__ import annotations

from typing import List, Optional

from .health import HealthMonitor
from .registry import MetricsRegistry

#: Utilization glyph ramp (0% .. 100%), coarse on purpose: the heatmap
#: is for spotting hot rows, not reading values.
HEAT_RAMP = " .:-=+*#%@"

#: Status register value -> short display tag.
STATUS_TAGS = {0: "idle", 1: "RUN ", 2: "done", 3: "ERR!"}


def _heat_glyph(utilization: float) -> str:
    index = int(min(max(utilization, 0.0), 1.0)
                * (len(HEAT_RAMP) - 1))
    return HEAT_RAMP[index]


def _tile_cell(soc, registry: MetricsRegistry, coord) -> str:
    tile = soc.config.tiles.get(coord)
    if tile is None:
        return "..........."
    if tile.kind != "acc":
        return f"[{tile.kind:^9s}]"
    acc = soc.accelerators[tile.name]
    tag = STATUS_TAGS.get(acc.status, "?")
    busy = acc.utilization()
    return f"[{tile.name[:4]:<4s}{busy:>4.0%}{tag[0]}]"


def _link_utilization(soc, a, b) -> float:
    """Worst per-plane utilization over the two directions of a hop."""
    worst = 0.0
    for src, dst in ((a, b), (b, a)):
        for plane in soc.mesh.planes:
            link = soc.mesh.links.get((src, dst, plane))
            if link is not None:
                worst = max(worst, link.utilization())
    return worst


def render_tile_grid(soc, registry: MetricsRegistry) -> List[str]:
    """The mesh as rows of tile cells with link-heat glyphs between."""
    lines: List[str] = []
    for y in range(soc.config.rows):
        cells = []
        for x in range(soc.config.cols):
            cells.append(_tile_cell(soc, registry, (x, y)))
            if x + 1 < soc.config.cols:
                heat = _link_utilization(soc, (x, y), (x + 1, y))
                cells.append(_heat_glyph(heat) * 2)
        lines.append(" ".join(cells))
        if y + 1 < soc.config.rows:
            verticals = []
            for x in range(soc.config.cols):
                heat = _link_utilization(soc, (x, y), (x, y + 1))
                verticals.append(f"{_heat_glyph(heat):^11s}")
            lines.append(" ".join(verticals))
    return lines


def render_tenant_table(registry: MetricsRegistry,
                        clock_mhz: Optional[float] = None) -> List[str]:
    """Per-tenant serving table from the live registry series."""
    tenants = sorted({values[0] for values, _ in
                      registry.serve_admitted.series()})
    if not tenants:
        return ["(no serve traffic yet)"]
    unit = "us" if clock_mhz else "cyc"
    scale = (1.0 / clock_mhz) if clock_mhz else 1.0
    lines = [f"{'tenant':<14}{'ok':>6}{'rej':>5}{'fail':>5}"
             f"{'p50 ' + unit:>10}{'p95 ' + unit:>10}"
             f"{'p99 ' + unit:>10}{'max ' + unit:>10}"]
    for tenant in tenants:
        completed = registry.serve_completed.labels(tenant).value
        rejected = sum(
            series.value for values, series in
            registry.serve_rejected.series() if values[0] == tenant)
        failed = registry.serve_failed.labels(tenant).value
        latency = registry.serve_request_cycles.labels(tenant)
        if latency.count:
            # Imported here, not at module scope: eval aggregates the
            # whole stack (including repro.control, which needs this
            # package), so a top-level metrics -> eval import is a
            # cycle.
            from ..eval.harness import LatencySummary
            s = LatencySummary.from_histogram(latency).scaled(scale)
            tail = (f"{s.p50:>10.1f}{s.p95:>10.1f}{s.p99:>10.1f}"
                    f"{s.max:>10.1f}")
        else:
            tail = f"{'-':>10}{'-':>10}{'-':>10}{'-':>10}"
        lines.append(f"{tenant:<14}{completed:>6}{rejected:>5}"
                     f"{failed:>5}{tail}")
    return lines


def render_control_actions(registry: MetricsRegistry) -> List[str]:
    """Remediation-action counters, from the control-plane families.

    Reads ``control_actions_total`` / ``control_last_action_cycle``
    only — renderable with or without a live :class:`ControlPlane`
    attached (empty when no controller ever acted)."""
    rows = sorted(registry.control_actions.series())
    if not rows:
        return []
    lines = [f"{'action':<16}{'outcome':<18}{'count':>7}"
             f"{'last applied':>15}"]
    for (action, outcome), series in rows:
        last = registry.control_last_action.labels(action).value
        shown = (f"{int(last):,}"
                 if outcome == "applied" and last else "-")
        lines.append(f"{action:<16}{outcome:<18}"
                     f"{int(series.value):>7}{shown:>15}")
    return lines


def render_dashboard(soc, registry: MetricsRegistry,
                     monitor: Optional[HealthMonitor] = None) -> str:
    """One full dashboard frame as a string."""
    registry.run_collectors()
    env = registry.env
    status = monitor.status() if monitor is not None else "n/a"
    depth = registry.serve_queue_depth.value
    width = max(60, 12 * soc.config.cols)
    lines = [
        "=" * width,
        f" {soc.name}  cycle {env.now:,}  "
        f"events {env.events_processed:,}  queue {depth}  "
        f"health: {status}",
        "=" * width,
        f" tiles ({soc.config.cols}x{soc.config.rows}; link heat "
        f"'{HEAT_RAMP}' = 0..100%):",
    ]
    lines.extend("   " + line for line in render_tile_grid(soc, registry))
    lines.append("-" * width)
    lines.extend(" " + line for line in render_tenant_table(
        registry, clock_mhz=soc.clock_mhz))
    control = render_control_actions(registry)
    if control:
        lines.append("-" * width)
        lines.append(" control plane:")
        lines.extend(" " + line for line in control)
    if monitor is not None and monitor.firing():
        lines.append("-" * width)
        for alert in monitor.firing():
            lines.append(f" FIRING [{alert.severity}] {alert.rule} "
                         f"since cycle {alert.fired_at:,}: "
                         f"{alert.detail}")
    lines.append("=" * width)
    return "\n".join(lines)
