"""Scrape-time collectors: hardware counters -> registry gauges.

The hot-path instrumentation in :mod:`repro.metrics.registry` covers
*events* (a packet delivered, a request admitted). Occupancy-style
state — how busy each link is, what each accelerator's status register
reads, how many words memory has moved — already lives in the
simulated hardware's own counters; re-recording it per event would
duplicate work the sockets do anyway. Collectors bridge the two
worlds: callables registered on the :class:`MetricsRegistry` that copy
those counters into gauges whenever somebody scrapes (an exporter, the
health monitor, the dashboard, a :class:`MetricsSampler` tick).

Collectors read simulation state and write registry series; they must
never schedule events or advance the clock — they run outside the
timing model entirely, like reading ESP's status registers over the
slow IO plane after the fact.
"""

from __future__ import annotations

from .registry import MetricsRegistry, attach_metrics


def register_soc_collectors(registry: MetricsRegistry, soc) -> None:
    """Wire a built SoC's hardware counters into scrape-time gauges.

    Adds gauges for per-link occupancy (busy cycles + utilization,
    labeled by link endpoints and plane), per-accelerator occupancy
    (busy cycles, utilization, live ``STATUS_REG`` value), and memory
    traffic (words read/written per run so far).
    """
    link_busy = registry.gauge(
        "noc_link_busy_cycles", "Cycles each link channel was held",
        ("link", "plane"))
    link_util = registry.gauge(
        "noc_link_utilization",
        "Busy fraction of each link channel since boot (0..1)",
        ("link", "plane"))
    acc_busy = registry.gauge(
        "acc_busy_cycles", "Cycles each accelerator spent in the "
        "wrapper (completed invocations)", ("device",))
    acc_util = registry.gauge(
        "acc_utilization",
        "Busy fraction of each accelerator since boot (0..1)",
        ("device",))
    acc_status = registry.gauge(
        "acc_status", "Live STATUS_REG value (0 idle, 1 running, "
        "2 done, 3 error)", ("device",))
    mem_read = registry.gauge(
        "mem_words_read", "Words read from the memory tiles")
    mem_written = registry.gauge(
        "mem_words_written", "Words written to the memory tiles")

    def scrape(reg: MetricsRegistry) -> None:
        for (src, dst, plane), link in soc.mesh.links.items():
            if link.flits_carried == 0 \
                    and link.channel.busy_cycles == 0:
                continue   # keep untouched links out of the exposition
            label = f"{src[0]},{src[1]}->{dst[0]},{dst[1]}"
            link_busy.labels(label, plane).set(link.channel.busy_cycles)
            link_util.labels(label, plane).set(
                round(link.utilization(), 6))
        for name, tile in soc.accelerators.items():
            acc_busy.labels(name).set(tile.busy_cycles)
            acc_util.labels(name).set(round(tile.utilization(), 6))
            acc_status.labels(name).set(tile.status)
        mem_read.set(soc.memory_map.words_read)
        mem_written.set(soc.memory_map.words_written)

    registry.register_collector(scrape)


def register_server_collectors(registry: MetricsRegistry,
                               server) -> None:
    """Wire an :class:`InferenceServer`'s queue state into gauges."""
    peak = registry.gauge(
        "serve_queue_peak_depth",
        "Deepest the request queue has been this run")
    tenant_depth = registry.gauge(
        "serve_tenant_queue_depth", "Requests queued per tenant",
        ("tenant",))

    def scrape(reg: MetricsRegistry) -> None:
        reg.serve_queue_depth.set(server.queue.depth)
        peak.set(server.queue.peak_depth)
        for tenant in server.queue.tenants:
            tenant_depth.labels(tenant).set(
                server.queue.tenant_depth(tenant))

    registry.register_collector(scrape)


def instrument_server(server) -> MetricsRegistry:
    """One-call setup for serving: attach + SoC + server collectors.

    Idempotent on the registry itself, but calling it twice would
    register the collectors twice — call once per server.
    """
    registry = attach_metrics(server.env)
    register_soc_collectors(registry, server.soc)
    register_server_collectors(registry, server)
    return registry
