"""Live metrics, health and SLO monitoring for the simulated SoC.

The operational-visibility counterpart of :mod:`repro.trace`: where
the tracer logs every event for post-hoc analysis, this package keeps
*aggregated live state* — counters, gauges and fixed-bucket histograms
— cheap enough to leave on in production-sized runs, plus the layers a
serving operator needs on top: scrape-time collectors over the
hardware counters, declarative SLO rules with firing/resolved alerts,
Prometheus/JSON exporters and an ASCII dashboard.

Quick start::

    from repro.metrics import attach_metrics, instrument_server

    registry = instrument_server(server)     # attach + collectors
    server.run_trace(trace)
    print(to_prometheus(registry))           # scrape

Recording never yields or schedules: metrics-enabled runs are
cycle-for-cycle identical to metrics-off runs (asserted by
``benchmarks/bench_metrics.py`` and ``tests/metrics/``).
"""

from .registry import (
    CYCLE_BUCKETS,
    Counter,
    CounterSeries,
    Gauge,
    GaugeSeries,
    Histogram,
    HistogramSeries,
    MetricsError,
    MetricsRegistry,
    MetricsSampler,
    attach_metrics,
    detach_metrics,
)
from .collect import (
    instrument_server,
    register_server_collectors,
    register_soc_collectors,
)
from .export import (
    merge_snapshots,
    parse_exemplars,
    parse_exposition,
    snapshot,
    to_prometheus,
    write_snapshot,
)
from .health import (
    Alert,
    HealthMonitor,
    SloRule,
    accelerator_stall_rule,
    default_rules,
    latency_burn_rule,
    latency_slo_rule,
    link_congestion_rule,
    queue_saturation_rule,
    stalled_devices,
)
from .dashboard import (
    HEAT_RAMP,
    render_control_actions,
    render_dashboard,
    render_tenant_table,
    render_tile_grid,
)

__all__ = [
    "Alert",
    "CYCLE_BUCKETS",
    "HEAT_RAMP",
    "Counter",
    "CounterSeries",
    "Gauge",
    "GaugeSeries",
    "HealthMonitor",
    "Histogram",
    "HistogramSeries",
    "MetricsError",
    "MetricsRegistry",
    "MetricsSampler",
    "SloRule",
    "accelerator_stall_rule",
    "attach_metrics",
    "default_rules",
    "detach_metrics",
    "instrument_server",
    "latency_burn_rule",
    "latency_slo_rule",
    "link_congestion_rule",
    "merge_snapshots",
    "parse_exemplars",
    "parse_exposition",
    "queue_saturation_rule",
    "register_server_collectors",
    "register_soc_collectors",
    "render_control_actions",
    "render_dashboard",
    "render_tenant_table",
    "render_tile_grid",
    "snapshot",
    "stalled_devices",
    "to_prometheus",
    "write_snapshot",
]
