"""Exporters: Prometheus text exposition and JSON snapshots.

The exposition format follows the Prometheus text format v0.0.4:
``# HELP`` / ``# TYPE`` per family, one ``name{labels} value`` sample
per series, histograms expanded to cumulative ``_bucket`` samples
(with the mandatory ``le="+Inf"``) plus ``_sum`` and ``_count``.
Label values escape backslash, double-quote and newline.

A :func:`parse_exposition` round-trip parser ships alongside so tests
(and downstream tools) can consume a scrape without a real Prometheus:
it returns every sample as ``(name, labels, value)`` triples.

Exemplars: histogram buckets that recorded one export an
OpenMetrics-style suffix on their cumulative ``_bucket`` line —
``... 42 # {trace_id="t-7"} 1234`` — linking the bucket straight to a
request's distributed-trace timeline. :func:`parse_exposition`
tolerates (and strips) the suffix, keeping its 3-tuple shape;
:func:`parse_exemplars` returns the exemplar-annotated samples.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

from .registry import MetricsRegistry

_ESCAPES = (("\\", "\\\\"), ("\"", "\\\""), ("\n", "\\n"))


def _escape(value: str) -> str:
    for raw, escaped in _ESCAPES:
        value = value.replace(raw, escaped)
    return value


def _unescape(value: str) -> str:
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"\\": "\\", "\"": "\"", "n": "\n"}.get(
                nxt, ch + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _format_labels(names, values, extra: str = "") -> str:
    parts = [f'{n}="{_escape(str(v))}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _format_exemplar(entry) -> str:
    """OpenMetrics exemplar suffix for one bucket line ('' if none)."""
    if entry is None:
        return ""
    trace_id, value = entry
    return (f' # {{trace_id="{_escape(str(trace_id))}"}} '
            f'{_format_value(value)}')


def to_prometheus(registry: MetricsRegistry,
                  namespace: str = "repro") -> str:
    """Render every family as Prometheus text exposition.

    Runs the scrape-time collectors first, so occupancy gauges are
    current as of ``registry.env.now``. Families with no series yet
    are omitted (Prometheus convention: absent, not zero).
    """
    prefix = f"{namespace}_" if namespace else ""
    lines: List[str] = []
    for family in registry.collect():
        series = family.series()
        if not series:
            continue
        name = f"{prefix}{family.name}"
        lines.append(f"# HELP {name} {family.help or family.name}")
        lines.append(f"# TYPE {name} {family.kind}")
        label_names = family.label_names
        if family.kind == "histogram":
            for values, child in series:
                exemplars = child.exemplars or {}
                cumulative = 0
                for index, (bound, count) in enumerate(
                        zip(child.bounds, child.counts)):
                    cumulative += count
                    labels = _format_labels(label_names, values,
                                            extra=f'le="{bound}"')
                    lines.append(f"{name}_bucket{labels} {cumulative}"
                                 + _format_exemplar(
                                     exemplars.get(index)))
                labels = _format_labels(label_names, values,
                                        extra='le="+Inf"')
                lines.append(f"{name}_bucket{labels} {child.count}"
                             + _format_exemplar(
                                 exemplars.get(len(child.bounds))))
                labels = _format_labels(label_names, values)
                lines.append(
                    f"{name}_sum{labels} {_format_value(child.sum)}")
                lines.append(f"{name}_count{labels} {child.count}")
        else:
            for values, child in series:
                labels = _format_labels(label_names, values)
                lines.append(
                    f"{name}{labels} {_format_value(child.value)}")
    return "\n".join(lines) + "\n"


Sample = Tuple[str, Dict[str, str], float]


def _parse_labels(body: str, raw: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        key = body[i:eq]
        if body[eq + 1] != "\"":
            raise ValueError(f"unquoted label value in {raw!r}")
        j = eq + 2
        chunk = []
        while body[j] != "\"":
            if body[j] == "\\":
                chunk.append(body[j:j + 2])
                j += 2
            else:
                chunk.append(body[j])
                j += 1
        labels[key] = _unescape("".join(chunk))
        i = j + 1
        if i < len(body) and body[i] == ",":
            i += 1
    return labels


def _parse_samples(text: str):
    """Yield ``(name, labels, value, exemplar)`` for every sample line;
    ``exemplar`` is ``None`` or ``(exemplar_labels, exemplar_value)``."""
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            body, rest = rest.split("}", 1)
            labels = _parse_labels(body, raw)
            value_text = rest.strip()
        else:
            name, value_text = line.split(None, 1)
            labels = {}
        exemplar = None
        if " # " in value_text:
            # OpenMetrics exemplar suffix: `value # {labels} exvalue`.
            value_text, suffix = value_text.split(" # ", 1)
            value_text = value_text.strip()
            suffix = suffix.strip()
            if not suffix.startswith("{") or "}" not in suffix:
                raise ValueError(f"malformed exemplar in {raw!r}")
            ex_body, ex_rest = suffix[1:].split("}", 1)
            exemplar = (_parse_labels(ex_body, raw),
                        float(ex_rest.strip()))
        if not name or not value_text:
            raise ValueError(f"malformed sample line {raw!r}")
        yield name, labels, float(value_text), exemplar


def parse_exposition(text: str) -> List[Sample]:
    """Parse exposition text back into ``(name, labels, value)`` samples.

    A deliberately small parser covering what :func:`to_prometheus`
    emits (which is valid text format v0.0.4 plus OpenMetrics exemplar
    suffixes, which are stripped here — see :func:`parse_exemplars`):
    comments/HELP/TYPE lines are skipped, escaped label values are
    unescaped. Raises ``ValueError`` on a malformed sample line, so
    tests that round-trip a scrape through this are format-conformance
    tests too.
    """
    return [(name, labels, value)
            for name, labels, value, _ in _parse_samples(text)]


def parse_exemplars(text: str) -> List[Tuple[str, Dict[str, str],
                                             float, Dict[str, str],
                                             float]]:
    """Every exemplar-annotated sample of an exposition.

    Returns ``(name, labels, value, exemplar_labels, exemplar_value)``
    tuples — ``exemplar_labels["trace_id"]`` is the request timeline a
    bucket links to.
    """
    return [(name, labels, value, ex_labels, ex_value)
            for name, labels, value, exemplar in _parse_samples(text)
            if exemplar is not None
            for ex_labels, ex_value in [exemplar]]


def snapshot(registry: MetricsRegistry) -> dict:
    """A JSON-able snapshot (delegates to the registry)."""
    return registry.snapshot()


def merge_snapshots(snapshots) -> dict:
    """Combine per-instance registry snapshots into one fleet snapshot.

    The fleet scrape path: every SoC instance keeps its own registry
    (its own ``Environment``), and a fleet-wide view concatenates
    their snapshots. Family names must be globally unique — attach
    each instance's registry with a distinct ``namespace`` — because
    two families with the same name from different instances are
    different totals, and silently keeping either (or summing them)
    would corrupt the series. A collision therefore raises
    :class:`~repro.metrics.registry.MetricsError` naming the family,
    instead of producing a quietly wrong merged snapshot.

    The merged ``cycle`` is the maximum over the parts (instances in a
    lockstep fleet agree on it anyway).
    """
    from .registry import MetricsError

    snapshots = list(snapshots)
    if not snapshots:
        raise ValueError("merge_snapshots of no snapshots")
    families = []
    owner: Dict[str, int] = {}
    for index, snap in enumerate(snapshots):
        for family in snap["families"]:
            name = family["name"]
            if name in owner:
                raise MetricsError(
                    f"family {name!r} appears in snapshot {owner[name]}"
                    f" and snapshot {index}: attach each instance's "
                    f"registry with a distinct namespace before "
                    f"merging")
            owner[name] = index
            families.append(family)
    return {"cycle": max(s["cycle"] for s in snapshots),
            "families": families}


def write_snapshot(registry: MetricsRegistry, path) -> Path:
    """Write the JSON snapshot to ``path`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(registry.snapshot(), indent=2) + "\n")
    return path
