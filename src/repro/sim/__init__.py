"""Discrete-event simulation substrate for the ESP4ML reproduction."""

from .kernel import (
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    Process,
    SimulationError,
    Timeout,
)
from .channels import Barrier, Counter, Fifo, Resource, Semaphore

__all__ = [
    "AllOf",
    "AnyOf",
    "Barrier",
    "Condition",
    "Counter",
    "Environment",
    "Event",
    "Fifo",
    "Process",
    "Resource",
    "Semaphore",
    "SimulationError",
    "Timeout",
]
