"""Discrete-event simulation substrate for the ESP4ML reproduction."""

from .kernel import (
    AllOf,
    AnyOf,
    Condition,
    DeadlockError,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .channels import (Barrier, Counter, Fifo, ProgressCounter, Resource,
                       Semaphore)

__all__ = [
    "AllOf",
    "AnyOf",
    "Barrier",
    "Condition",
    "Counter",
    "DeadlockError",
    "Environment",
    "Event",
    "Fifo",
    "Interrupt",
    "Process",
    "ProgressCounter",
    "Resource",
    "Semaphore",
    "SimulationError",
    "Timeout",
]
