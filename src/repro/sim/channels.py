"""Blocking channels and resources on top of the simulation kernel.

These model the hardware queues of the ESP platform: the shallow FIFOs
in the accelerator wrapper, the NoC input/output queues, and exclusive
resources such as a DMA engine or a NoC link.

Invariants
----------

The channel primitives uphold these properties, which both the
platform model and the kernel's scheduling fast paths rely on:

1. **Blocking-put backpressure.** A ``Fifo.put`` on a full queue does
   not drop, overwrite, or reorder: the putter's event stays pending
   until space frees, and stalls propagate *upstream only* — this is
   the hardware backpressure that makes the p2p consumption assumption
   hold (a producer blocks locally rather than parking a long packet
   in the NoC).
2. **FIFO service order.** Items leave a ``Fifo`` in insertion order;
   blocked putters, getters, resource waiters and semaphore waiters
   are all served strictly first-come-first-served. Grant order is
   therefore a deterministic function of request order.
3. **Immediate-completion fast path.** When an operation can complete
   without waiting (put with space and no queued putter, get with an
   item, acquire with a free slot), its event is triggered *at the
   call site* and dispatched through the kernel's zero-delay ready
   queue in scheduling order — no calendar traffic, and by the
   kernel's ordering contract (see :mod:`repro.sim.kernel`) at exactly
   the position a delayed trigger would have had. These sites assign
   the event value and append to ``env._ready`` directly instead of
   calling ``Event.succeed`` — the event was created (or dequeued from
   a waiter list) in the same expression, so the double-trigger guard
   is statically dead; the write is what ``succeed`` would have done.
   Operation latency in simulated time is always 0 cycles either way;
   only who-waits-on-whom is modelled.
4. **Conservation.** ``total_puts``/``total_gets`` count accepted
   handshakes exactly once, including fast-path completions, so
   queue-occupancy accounting balances under any interleaving
   (``tests/noc/test_conservation.py``).

Randomized equivalence tests against a reference implementation
(``tests/sim/test_fastpath_equivalence.py``) pin properties 2 and 3,
including the waiter/no-waiter boundary cases.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from .kernel import Environment, Event, SimulationError


class Fifo:
    """A bounded FIFO with blocking put/get, like a hardware queue.

    ``capacity`` of ``None`` means unbounded (used for software-side
    queues where backpressure is modelled elsewhere).
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None,
                 name: str = "fifo") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._putters: Deque[tuple] = deque()   # (event, item)
        self._getters: Deque[Event] = deque()
        self.total_puts = 0
        self.total_gets = 0

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self.items

    def put(self, item: Any) -> Event:
        """Enqueue ``item``; the returned event triggers when accepted."""
        event = Event(self.env)
        # Fast path: space available and no putter queued ahead — accept
        # and trigger immediately (invariant 3; the is_full property is
        # inlined as this runs once per NoC/PLM handshake).
        if not self._putters and (self.capacity is None
                                  or len(self.items) < self.capacity):
            self._accept(item)
            event._value = None
            self.env._ready.append(event)
        else:
            event.wait_reason = f"put on full fifo {self.name!r}"
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Dequeue one item; the returned event triggers with the item."""
        event = Event(self.env)
        if self.items:
            event._value = self.items.popleft()
            self.env._ready.append(event)
            self.total_gets += 1
            if self._putters:
                self._drain_putters()
        else:
            event.wait_reason = f"get on empty fifo {self.name!r}"
            self._getters.append(event)
        return event

    def waiters(self) -> dict:
        """Introspect blocked endpoints: pending put/get events.

        Used by the simulation deadlock detector and by backpressure
        statistics; the returned events are the live wait objects, so
        callers must not trigger them.
        """
        return {"putters": tuple(event for event, _ in self._putters),
                "getters": tuple(self._getters)}

    def cancel(self, event: Event) -> bool:
        """Withdraw a pending put/get event (watchdog gave up on it).

        Returns True when the event was found and removed; False when
        it was not waiting (already serviced, or never queued here).
        """
        for index, pending in enumerate(self._getters):
            if pending is event:
                del self._getters[index]
                return True
        for index, (pending, _) in enumerate(self._putters):
            if pending is event:
                del self._putters[index]
                return True
        return False

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the queue is full."""
        if self.is_full:
            return False
        self._accept(item)
        return True

    def try_get(self) -> Any:
        """Non-blocking get; returns None when the queue is empty."""
        if not self.items:
            return None
        item = self.items.popleft()
        self.total_gets += 1
        self._drain_putters()
        return item

    def flush(self, drop_putters: bool = True) -> int:
        """Discard queued items (hardware reset of the queue).

        Pending putters are dropped too by default: their events stay
        pending forever, which models an aborted producer that was
        abandoned mid-handshake. Blocked getters are kept — a live
        server keeps waiting for fresh data. Returns the number of
        discarded items.
        """
        dropped = len(self.items)
        self.items.clear()
        if drop_putters:
            dropped += len(self._putters)
            self._putters.clear()
        return dropped

    def _accept(self, item: Any) -> None:
        self.total_puts += 1
        if self._getters:
            # A queued getter is pending by construction (triggered
            # events never sit in the waiter deques), so the inline
            # trigger of invariant 3 applies here too.
            getter = self._getters.popleft()
            getter._value = item
            self.env._ready.append(getter)
            self.total_gets += 1
        else:
            self.items.append(item)

    def _drain_putters(self) -> None:
        while self._putters and not self.is_full:
            event, item = self._putters.popleft()
            self._accept(item)
            event._value = None
            self.env._ready.append(event)


class Resource:
    """An exclusive resource with ``slots`` concurrent holders.

    Used for NoC links (1 slot per plane direction) and DMA engines.
    """

    def __init__(self, env: Environment, slots: int = 1,
                 name: str = "resource",
                 record_history: bool = False) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self.env = env
        self.slots = slots
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        # Utilization accounting.
        self._busy_since: Optional[int] = None
        self.busy_cycles = 0
        self.total_acquisitions = 0
        # Optional occupancy trace: (time, in_use) transitions, for
        # waveform export.
        self.record_history = record_history
        self.history: List[tuple] = []

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Request a slot; the event triggers when the slot is granted."""
        event = Event(self.env)
        if self._in_use < self.slots:
            self._grant(event)
        else:
            event.wait_reason = f"acquire of busy resource {self.name!r}"
            self._waiters.append(event)
        return event

    def waiters(self) -> tuple:
        """The pending acquire events (deadlock/backpressure probes)."""
        return tuple(self._waiters)

    def cancel(self, event: Event) -> bool:
        """Withdraw a pending acquire (it will never be granted)."""
        for index, pending in enumerate(self._waiters):
            if pending is event:
                del self._waiters[index]
                return True
        return False

    def release(self) -> None:
        """Return a previously granted slot."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self.busy_cycles += self.env.now - self._busy_since
            self._busy_since = None
        if self.record_history:
            self.history.append((self.env.now, self._in_use))
        if self._waiters:
            self._grant(self._waiters.popleft())

    def _grant(self, event: Event) -> None:
        if self._in_use == 0:
            self._busy_since = self.env.now
        self._in_use += 1
        self.total_acquisitions += 1
        if self.record_history:
            self.history.append((self.env.now, self._in_use))
        # Fresh acquire events and dequeued waiters are both pending by
        # construction — inline trigger (invariant 3).
        event._value = None
        self.env._ready.append(event)

    def utilization(self, elapsed: Optional[int] = None) -> float:
        """Fraction of a window the resource was held at least once.

        The window is the trailing ``elapsed`` cycles ending now (the
        whole run when ``elapsed`` is ``None``). Busy time is tracked
        over the resource's lifetime, so against a shorter window it is
        clamped to the window — the result is always in ``[0, 1]``,
        with 1.0 meaning "held for at least the whole window".
        """
        busy = self.busy_cycles
        if self._busy_since is not None:
            busy += self.env.now - self._busy_since
        span = elapsed if elapsed is not None else self.env.now
        if span <= 0:
            return 0.0
        return min(busy, span) / span


class Semaphore:
    """A counting semaphore for producer/consumer synchronization."""

    def __init__(self, env: Environment, value: int = 0,
                 name: str = "semaphore") -> None:
        if value < 0:
            raise ValueError(f"initial value must be >= 0, got {value}")
        self.env = env
        self.name = name
        self._value = value
        self._waiters: Deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    def post(self, count: int = 1) -> None:
        """Increment, waking waiters in FIFO order."""
        for _ in range(count):
            if self._waiters:
                self._waiters.popleft().succeed()
            else:
                self._value += 1

    def wait(self) -> Event:
        """Decrement; the event triggers once the count allows it."""
        event = Event(self.env)
        if self._value > 0:
            self._value -= 1
            event.succeed()
        else:
            event.wait_reason = f"wait on semaphore {self.name!r}"
            self._waiters.append(event)
        return event

    def waiters(self) -> tuple:
        """The pending wait events (deadlock/backpressure probes)."""
        return tuple(self._waiters)


class ProgressCounter:
    """A monotonically increasing counter with threshold waits.

    Models "frames completed" progress that consumers wait on
    (pthread-condition style): ``wait_until(n)`` triggers once the
    counter reaches ``n``.

    Formerly named ``Counter``; renamed so the *synchronization
    primitive* no longer collides with the metrics/tracer counter
    concepts (a :class:`repro.metrics.Counter` is pure telemetry and
    never wakes anyone). The old name remains as a deprecated alias.
    """

    def __init__(self, env: Environment, value: int = 0,
                 name: str = "counter") -> None:
        self.env = env
        self.name = name
        self._value = value
        self._waiters: List[tuple] = []   # (threshold, event)

    @property
    def value(self) -> int:
        return self._value

    def increment(self, by: int = 1) -> None:
        if by < 1:
            raise ValueError(f"increment must be >= 1, got {by}")
        self._value += by
        ready = [w for w in self._waiters if w[0] <= self._value]
        self._waiters = [w for w in self._waiters if w[0] > self._value]
        for _, event in ready:
            event.succeed(self._value)

    def wait_until(self, threshold: int) -> Event:
        event = Event(self.env)
        if self._value >= threshold:
            event.succeed(self._value)
        else:
            event.wait_reason = (f"wait_until({threshold}) on counter "
                                 f"{self.name!r} (value={self._value})")
            self._waiters.append((threshold, event))
        return event

    def waiters(self) -> tuple:
        """(threshold, event) pairs still below the counter value."""
        return tuple(self._waiters)


#: Deprecated alias for :class:`ProgressCounter` (the pre-metrics
#: name). New code should say ``ProgressCounter``.
Counter = ProgressCounter


class Barrier:
    """A reusable barrier for ``parties`` processes (pthread_barrier)."""

    def __init__(self, env: Environment, parties: int) -> None:
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        self.env = env
        self.parties = parties
        self._waiting: List[Event] = []

    def wait(self) -> Event:
        event = Event(self.env)
        event.wait_reason = f"wait on barrier of {self.parties}"
        self._waiting.append(event)
        if len(self._waiting) >= self.parties:
            waiting, self._waiting = self._waiting, []
            for waiter in waiting:
                waiter.succeed()
        return event
