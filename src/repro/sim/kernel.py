"""Discrete-event simulation kernel.

This is the substrate under the whole ESP4ML reproduction: the NoC, the
tile sockets, the DMA engines and the software runtime all run as
coroutine processes scheduled by an :class:`Environment`.

The design follows the classic event-queue/coroutine pattern (as in
SimPy): a *process* is a generator that yields :class:`Event` objects;
when a yielded event triggers, the process resumes with the event's
value. Time is an integer cycle count, which matches the hardware
semantics of the simulated SoC (one unit == one clock cycle).

Scheduling order contract
-------------------------

Events scheduled for the same simulated time are processed in
scheduling order (FIFO). The scheduler is a **calendar queue** (hash
bucket per occupied cycle) rather than the seed's single binary heap:

- ``_ready`` — a plain deque holding every event due *now*, in FIFO
  (= scheduling) order. Zero-delay triggers (``succeed``, ``fail``,
  ``timeout(0)``) append here directly; advancing the clock moves a
  whole calendar bucket here at once (batched dispatch).
- ``_buckets`` — a dict mapping an absolute due cycle to the list of
  events scheduled for it, each list in push order. Enqueue is O(1):
  one dict probe plus a list append — no tuple allocation, no sequence
  number, no log-n sift.
- ``_times`` — a min-heap over the *distinct occupied cycles* of
  ``_buckets``. A cycle is pushed once, when its bucket is created, so
  heap traffic scales with distinct wake-up times, not with events
  (same-cycle storms cost one heap entry total).

Why this is bit-identical to the seed's single ``(time, sequence,
event)`` heap:

1. A delayed event's ``delay`` is >= 1, so nothing is ever added to
   the bucket of the *current* cycle; and the clock only advances when
   ``_ready`` is empty. Therefore, when the clock reaches cycle ``t``,
   bucket ``t`` is frozen and ``_ready`` is empty.
2. The bucket's list order is push order — exactly the order the
   seed's sequence numbers would have imposed among events due at
   ``t`` — and every bucket entry was pushed *before* the clock
   reached ``t``, so under the seed's heap all of them sort before any
   zero-delay event triggered *at* ``t``. Draining the bucket first
   and appending zero-delay triggers behind it reproduces that order.
3. The deque itself preserves FIFO order for the zero-delay tail.

So the calendar schedule and the seed schedule dispatch the same
events in the same order at the same times — see
``docs/performance.md`` for the full cost model and
``tests/sim/test_fastpath_equivalence.py`` for the randomized
cross-check against a reference single-heap kernel (including
same-cycle storms and long idle gaps).

Batched dispatch and fast-forward
---------------------------------

``run()`` drains events in *cycle batches*: advancing the clock moves
the whole calendar bucket into the ready deque in one operation and
dispatches it inline, without re-entering ``step()``/``peek()`` per
event — the stop-time comparison happens once per distinct cycle, not
once per event. When the next occupied cycle lies beyond the ``until``
horizon, :meth:`Environment.run` **fast-forwards**: it sets the clock
to the horizon in O(1), skipping the whole idle span. This is sound
for the event-driven model by construction — a span with no scheduled
event is a span in which provably nothing happens (no link transfer,
no process wake-up), because every state change in this kernel is the
callback of a scheduled event. :meth:`Environment.fast_forward` makes
the same jump available to coordinators (the fleet's lockstep
``advance_to``) with the emptiness precondition checked.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Dict, Generator, Iterable, List, \
    Optional, Tuple


class SimulationError(Exception):
    """Raised for kernel-level misuse (double trigger, bad yield, ...)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    ``cause`` carries whatever the interrupter passed to
    :meth:`Process.interrupt` (e.g. the reason for an abort).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class DeadlockError(SimulationError):
    """The schedule drained while the awaited event stayed pending.

    This is how a hardware deadlock (a wedged p2p queue, a lost
    packet, a mis-programmed pipeline) surfaces: instead of hanging the
    event loop, the kernel reports **which processes are blocked on
    which resources** so the failure is diagnosable.
    """

    def __init__(self, message: str,
                 blocked: Optional[List[Tuple["Process", "Event"]]] = None
                 ) -> None:
        self.blocked = list(blocked or [])
        if self.blocked:
            lines = [message, "blocked processes:"]
            for proc, target in self.blocked:
                reason = getattr(target, "wait_reason", None) \
                    or repr(target)
                lines.append(f"  - process {proc.name!r} blocked on "
                             f"{reason}")
            message = "\n".join(lines)
        super().__init__(message)


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` early."""


PENDING = object()


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event starts *pending*, is *triggered* with a value (or an
    exception) exactly once, and then has its callbacks run by the
    environment. Processes wait on events by yielding them.

    Events are the unit currency of the simulation — a pipelined run
    allocates one per FIFO handshake, resource grant and timeout — so
    the class is slotted: no per-instance ``__dict__``, which roughly
    halves allocation cost and memory. The two attributes that other
    layers attach dynamically (``wait_reason`` for deadlock reports,
    ``__sim_defused__`` for absorbed failures) are declared as slots.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok",
                 "wait_reason", "__sim_defused__")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok = True

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True unless the event failed with an exception."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("value of a pending event is not available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._value = value
        self.env._ready.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.env.now}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay.

    Timeouts are the hottest event constructor (every modelled latency
    is one), so ``__init__`` assigns the :class:`Event` fields directly
    instead of chaining through ``Event.__init__``; scheduling still
    goes through :meth:`Environment._schedule`, the single overridable
    enqueue point.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = value
        self.delay = delay
        env._schedule(self, delay)


class Process(Event):
    """A running coroutine; also an event that triggers on completion.

    The wrapped generator yields events. The process resumes when the
    yielded event triggers; a failed event raises inside the generator
    (and aborts the process if unhandled). The generator's return value
    becomes the process event's value.

    ``_resume_cb``/``_send``/``_throw`` cache the bound methods used on
    every resume (one per dispatched event), so the hot loop does no
    repeated bound-method allocation or attribute lookups.
    """

    __slots__ = ("_generator", "_target", "name", "_created_at",
                 "_resume_cb", "_send", "_throw")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any],
                 name: Optional[str] = None) -> None:
        super().__init__(env)
        try:
            self._send = generator.send
            self._throw = generator.throw
        except AttributeError:
            raise TypeError(f"{generator!r} is not a generator") from None
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        self._created_at = env.now
        self._resume_cb = self._resume
        env._register_process(self)
        # Bootstrap: resume once at the current time.
        init = Event(env)
        init._value = None
        env._schedule(init)
        init.callbacks.append(self._resume_cb)

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently blocked on (if any)."""
        return self._target

    def interrupt(self, cause: Any = None, defuse: bool = True) -> None:
        """Abort the process by raising :class:`Interrupt` inside it.

        The process is detached from whatever event it was waiting on
        and resumed with the exception at its current ``yield``. With
        ``defuse`` (the default) an unhandled interrupt kills the
        process quietly instead of crashing the event loop — the
        executor uses this to cancel zombie pipeline threads when a
        run is aborted for graceful degradation.
        """
        if not self.is_alive:
            return
        if self._target is not None \
                and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._target = None
        if defuse:
            self.__sim_defused__ = True  # type: ignore[attr-defined]
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.__sim_defused__ = True  # type: ignore[attr-defined]
        self.env._schedule(event)
        event.callbacks.append(self._resume_cb)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return (f"<{type(self).__name__} {self.name!r} {state} "
                f"at t={self.env.now}>")

    def _resume(self, event: Event) -> None:
        env = self.env
        send = self._send
        env._active_proc = self
        while True:
            try:
                if event._ok:
                    target = send(event._value)
                else:
                    # The generator gets a chance to handle the failure;
                    # receiving it here defuses the original event so the
                    # kernel does not crash on it a second time.
                    event.__sim_defused__ = True  # type: ignore[attr-defined]
                    target = self._throw(event._value)
            except StopIteration as stop:
                env._active_proc = None
                if env.tracer is not None:
                    env.tracer.complete(
                        "sim", "processes", self.name, "sim.process",
                        self._created_at, env.now, outcome="done")
                self.succeed(getattr(stop, "value", None))
                return
            except BaseException as exc:
                # The process dies; waiters (if any) observe the failure
                # through this process event. If nobody defuses it, the
                # exception surfaces from the dispatch loop.
                env._active_proc = None
                if env.tracer is not None:
                    env.tracer.complete(
                        "sim", "processes", self.name, "sim.process",
                        self._created_at, env.now, outcome="failed",
                        error=type(exc).__name__)
                self.fail(exc)
                return

            if not isinstance(target, Event):
                env._active_proc = None
                raise SimulationError(
                    f"process yielded a non-event: {target!r}")
            if target.callbacks is None:
                # Already processed: loop and resume immediately.
                event = target
                continue
            self._target = target
            target.callbacks.append(self._resume_cb)
            env._active_proc = None
            return


class Condition(Event):
    """Composite event over several sub-events (all-of / any-of)."""

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event],
                 evaluate: Callable[[List[Event], int], bool]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                # A sub-event failed after the condition resolved (e.g.
                # a pipeline thread interrupted once its plan already
                # aborted): the condition delivered its value long ago,
                # so absorb the straggler instead of crashing the loop.
                event.__sim_defused__ = True  # type: ignore[attr-defined]
            return
        if not event.ok:
            defused_source = getattr(event, "__sim_defused__", False)
            event.__sim_defused__ = True  # type: ignore[attr-defined]
            self.fail(event.value)
            if defused_source:
                # The failure was defused at its source (an interrupted
                # process); if the condition's waiter has given up too,
                # re-raising through the condition must stay quiet.
                self.__sim_defused__ = True  # type: ignore[attr-defined]
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed({e: e.value for e in self._events if e.processed})


class AllOf(Condition):
    """Triggers once every sub-event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, events, lambda evs, count: count >= len(evs))


class AnyOf(Condition):
    """Triggers as soon as any sub-event triggers."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, events, lambda evs, count: count >= 1)


class Environment:
    """Execution environment: calendar event queue plus the clock.

    Scheduling structures (see the module docstring for the ordering
    argument):

    - ``_ready`` — deque of events due at the current cycle, FIFO.
    - ``_buckets`` — absolute cycle -> list of events, push-ordered.
    - ``_times`` — min-heap over the distinct keys of ``_buckets``.

    Subclasses that need different storage (the reference single-heap
    oracle in the equivalence tests) override ``_schedule``, ``peek``,
    ``step`` and ``run``; ``Event.succeed`` additionally appends to
    ``_ready`` directly, so such subclasses substitute ``_ready`` with
    a shim object exposing ``append``/``__bool__``/``__len__``.
    """

    def __init__(self, initial_time: int = 0) -> None:
        self._now = initial_time
        #: Events awaiting dispatch at the current cycle, in FIFO
        #: (= scheduling) order: zero-delay triggers land here at the
        #: call site, and advancing the clock moves a whole calendar
        #: bucket here in one operation.
        self._ready: deque = deque()
        #: Calendar: absolute due cycle -> push-ordered event list.
        self._buckets: Dict[int, List[Event]] = {}
        #: Min-heap of the distinct occupied cycles (one entry per
        #: bucket, pushed at bucket creation).
        self._times: List[int] = []
        self._active_proc: Optional[Process] = None
        self._processes: List[Process] = []
        self._prune_at = 64
        #: Events dispatched so far (one increment per event) — the
        #: numerator of the events/second throughput metric reported by
        #: ``benchmarks/bench_perf.py``.
        self.events_processed = 0
        #: Optional cycle-level tracer (see :mod:`repro.trace`). ``None``
        #: keeps every instrumentation site on its one-comparison path.
        self.tracer = None
        #: Optional live metrics registry (see :mod:`repro.metrics`).
        #: Same contract as the tracer: ``None`` means every
        #: instrumentation site pays one attribute load and a pointer
        #: compare; attached recording never schedules events.
        self.metrics = None

    @property
    def now(self) -> int:
        """Current simulated time (clock cycles)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_proc

    # -- event factories -------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: Optional[str] = None) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- process bookkeeping (deadlock diagnosis) ------------------------

    def _register_process(self, process: "Process") -> None:
        self._processes.append(process)
        if len(self._processes) > self._prune_at:
            self._processes = [p for p in self._processes if p.is_alive]
            self._prune_at = max(64, 2 * len(self._processes))

    def blocked_processes(self) -> List[Tuple["Process", Event]]:
        """Alive processes and the events they are blocked on.

        The substrate of the deadlock detector: when the schedule
        drains with work outstanding, this names who is stuck where
        (channel wait events carry a ``wait_reason`` attribute naming
        the resource).
        """
        self._processes = [p for p in self._processes if p.is_alive]
        return [(p, p.target) for p in self._processes
                if p.target is not None]

    def deadlock_report(self) -> str:
        """Human-readable listing of every blocked process."""
        blocked = self.blocked_processes()
        if not blocked:
            return "no blocked processes"
        lines = []
        for proc, target in blocked:
            reason = getattr(target, "wait_reason", None) or repr(target)
            lines.append(f"process {proc.name!r} blocked on {reason}")
        return "\n".join(lines)

    # -- scheduling / running --------------------------------------------

    def _schedule(self, event: Event, delay: int = 0) -> None:
        """Enqueue ``event`` after ``delay`` cycles (0 = this cycle).

        O(1) amortized: a dict probe and a list append; the heap is
        touched only when a cycle becomes occupied for the first time.
        """
        if delay:
            when = self._now + delay
            buckets = self._buckets
            bucket = buckets.get(when)
            if bucket is None:
                buckets[when] = [event]
                heappush(self._times, when)
            else:
                bucket.append(event)
        else:
            self._ready.append(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        if self._ready:
            return self._now
        if self._times:
            return self._times[0]
        return float("inf")

    def step(self) -> None:
        """Process the next scheduled event.

        When the current cycle's ready deque is empty, the clock
        advances to the next occupied cycle and that whole calendar
        bucket moves to the deque (batched dispatch); bucket entries
        dispatch before any zero-delay event triggered at the new
        cycle — see the module docstring for why this order is
        bit-identical to the seed's single heap.
        """
        ready = self._ready
        if not ready:
            times = self._times
            if not times:
                raise SimulationError("step() on an empty schedule")
            when = heappop(times)
            self._now = when
            ready.extend(self._buckets.pop(when))
        event = ready.popleft()
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not getattr(event, "__sim_defused__", False):
            raise event._value

    def fast_forward(self, cycle: int) -> None:
        """Jump the clock to ``cycle`` without dispatching anything.

        O(1). Legal only when the span ``(now, cycle]`` is provably
        empty of scheduled work — no ready event and no calendar
        bucket at or before ``cycle``; in the event-driven model that
        *is* the proof that nothing happens in the span (every state
        change is the callback of a scheduled event, and an idle NoC
        link or a parked single waiter cannot spontaneously generate
        one). Raises :class:`SimulationError` when the precondition
        does not hold, so a coordinator cannot silently skip work.
        """
        if cycle < self._now:
            raise ValueError(
                f"fast_forward to {cycle} is in the past (now={self._now})")
        if self._ready or (self._times and self._times[0] <= cycle):
            raise SimulationError(
                f"fast_forward({cycle}) would skip a scheduled event "
                f"(next at {self.peek()})")
        self._now = cycle

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        ``until`` may be ``None`` (drain), an integer time, or an
        :class:`Event` whose value is returned when it triggers.

        The loop dispatches in cycle batches: one clock advance moves
        the whole calendar bucket into the ready deque, and the
        stop-time horizon is compared once per *distinct cycle*, never
        per event. When the next occupied cycle lies beyond the
        horizon, the clock fast-forwards to the horizon in O(1) — a
        lockstep coordinator advancing an idle instance costs one
        comparison and one assignment, regardless of the span length.
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[int] = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value

            def _stop(event: Event) -> None:
                raise StopSimulation

            stop_event.callbacks.append(_stop)
        elif until is not None:
            stop_time = int(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time} is in the past (now={self._now})")

        ready = self._ready
        times = self._times
        buckets = self._buckets
        try:
            while True:
                if not ready:
                    if not times:
                        break
                    when = times[0]
                    if stop_time is not None and when > stop_time:
                        # Fast-forward: nothing is scheduled in
                        # (now, stop_time] — jump straight there.
                        self._now = stop_time
                        return None
                    heappop(times)
                    self._now = when
                    ready.extend(buckets.pop(when))
                event = ready.popleft()
                self.events_processed += 1
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok \
                        and not getattr(event, "__sim_defused__", False):
                    raise event._value
        except StopSimulation:
            assert stop_event is not None
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        finally:
            # If an unrelated exception (or a drain) exits this run
            # before the stop event processes, its _stop callback must
            # not stay armed — it would raise a stray StopSimulation
            # out of a *later* run() call.
            if stop_event is not None and stop_event.callbacks \
                    and _stop in stop_event.callbacks:
                stop_event.callbacks.remove(_stop)
        if stop_event is not None and not stop_event.triggered:
            raise DeadlockError(
                "run(until=event) drained the schedule before the event "
                "triggered", blocked=self.blocked_processes())
        if stop_time is not None:
            self._now = stop_time
        return None
