"""Discrete-event simulation kernel.

This is the substrate under the whole ESP4ML reproduction: the NoC, the
tile sockets, the DMA engines and the software runtime all run as
coroutine processes scheduled by an :class:`Environment`.

The design follows the classic event-queue/coroutine pattern (as in
SimPy): a *process* is a generator that yields :class:`Event` objects;
when a yielded event triggers, the process resumes with the event's
value. Time is an integer cycle count, which matches the hardware
semantics of the simulated SoC (one unit == one clock cycle).

Scheduling order contract
-------------------------

Events scheduled for the same simulated time are processed in
scheduling order (FIFO). The implementation keeps two structures:

- a binary heap of ``(time, sequence, event)`` entries for *delayed*
  events (``delay > 0``), and
- a plain deque — ``_ready`` — for *zero-delay* events (``succeed``,
  ``fail``, ``timeout(0)``), which skips the heap entirely.

The split preserves the exact order a single heap would produce:
zero-delay events are, by construction, scheduled *at* the current
time, while every heap entry due at the current time was pushed
*before* the clock reached it (a push at the current time for the
current time is zero-delay and lands in the deque). Sequence numbers
increase with push order, so every due heap entry precedes every deque
entry, and the deque itself is FIFO. ``step()`` therefore drains due
heap entries first, then the deque, which is bit-identical to the
single-heap schedule — see ``docs/performance.md`` for the full
argument and ``tests/sim/test_fastpath_equivalence.py`` for the
randomized cross-check against a reference single-heap kernel.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple


class SimulationError(Exception):
    """Raised for kernel-level misuse (double trigger, bad yield, ...)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    ``cause`` carries whatever the interrupter passed to
    :meth:`Process.interrupt` (e.g. the reason for an abort).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class DeadlockError(SimulationError):
    """The schedule drained while the awaited event stayed pending.

    This is how a hardware deadlock (a wedged p2p queue, a lost
    packet, a mis-programmed pipeline) surfaces: instead of hanging the
    event loop, the kernel reports **which processes are blocked on
    which resources** so the failure is diagnosable.
    """

    def __init__(self, message: str,
                 blocked: Optional[List[Tuple["Process", "Event"]]] = None
                 ) -> None:
        self.blocked = list(blocked or [])
        if self.blocked:
            lines = [message, "blocked processes:"]
            for proc, target in self.blocked:
                reason = getattr(target, "wait_reason", None) \
                    or repr(target)
                lines.append(f"  - process {proc.name!r} blocked on "
                             f"{reason}")
            message = "\n".join(lines)
        super().__init__(message)


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` early."""


PENDING = object()


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event starts *pending*, is *triggered* with a value (or an
    exception) exactly once, and then has its callbacks run by the
    environment. Processes wait on events by yielding them.

    Events are the unit currency of the simulation — a pipelined run
    allocates one per FIFO handshake, resource grant and timeout — so
    the class is slotted: no per-instance ``__dict__``, which roughly
    halves allocation cost and memory. The two attributes that other
    layers attach dynamically (``wait_reason`` for deadlock reports,
    ``__sim_defused__`` for absorbed failures) are declared as slots.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok",
                 "wait_reason", "__sim_defused__")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok = True

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True unless the event failed with an exception."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("value of a pending event is not available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._value = value
        self.env._ready.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.env.now}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        env._schedule(self, delay=delay)


class Process(Event):
    """A running coroutine; also an event that triggers on completion.

    The wrapped generator yields events. The process resumes when the
    yielded event triggers; a failed event raises inside the generator
    (and aborts the process if unhandled). The generator's return value
    becomes the process event's value.
    """

    __slots__ = ("_generator", "_target", "name", "_created_at")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any],
                 name: Optional[str] = None) -> None:
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise TypeError(f"{generator!r} is not a generator")
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        self._created_at = env.now
        env._register_process(self)
        # Bootstrap: resume once at the current time.
        init = Event(env)
        init._value = None
        env._schedule(init)
        init.callbacks.append(self._resume)

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently blocked on (if any)."""
        return self._target

    def interrupt(self, cause: Any = None, defuse: bool = True) -> None:
        """Abort the process by raising :class:`Interrupt` inside it.

        The process is detached from whatever event it was waiting on
        and resumed with the exception at its current ``yield``. With
        ``defuse`` (the default) an unhandled interrupt kills the
        process quietly instead of crashing the event loop — the
        executor uses this to cancel zombie pipeline threads when a
        run is aborted for graceful degradation.
        """
        if not self.is_alive:
            return
        if self._target is not None \
                and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        if defuse:
            self.__sim_defused__ = True  # type: ignore[attr-defined]
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.__sim_defused__ = True  # type: ignore[attr-defined]
        self.env._schedule(event)
        event.callbacks.append(self._resume)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return (f"<{type(self).__name__} {self.name!r} {state} "
                f"at t={self.env.now}>")

    def _resume(self, event: Event) -> None:
        env = self.env
        generator = self._generator
        env._active_proc = self
        while True:
            try:
                if event._ok:
                    target = generator.send(event._value)
                else:
                    # The generator gets a chance to handle the failure;
                    # receiving it here defuses the original event so the
                    # kernel does not crash on it a second time.
                    event.__sim_defused__ = True  # type: ignore[attr-defined]
                    target = generator.throw(event._value)
            except StopIteration as stop:
                env._active_proc = None
                if env.tracer is not None:
                    env.tracer.complete(
                        "sim", "processes", self.name, "sim.process",
                        self._created_at, env.now, outcome="done")
                self.succeed(getattr(stop, "value", None))
                return
            except BaseException as exc:
                # The process dies; waiters (if any) observe the failure
                # through this process event. If nobody defuses it, the
                # exception surfaces from Environment.step().
                env._active_proc = None
                if env.tracer is not None:
                    env.tracer.complete(
                        "sim", "processes", self.name, "sim.process",
                        self._created_at, env.now, outcome="failed",
                        error=type(exc).__name__)
                self.fail(exc)
                return

            if not isinstance(target, Event):
                env._active_proc = None
                raise SimulationError(
                    f"process yielded a non-event: {target!r}")
            if target.callbacks is None:
                # Already processed: loop and resume immediately.
                event = target
                continue
            self._target = target
            target.callbacks.append(self._resume)
            env._active_proc = None
            return


class Condition(Event):
    """Composite event over several sub-events (all-of / any-of)."""

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event],
                 evaluate: Callable[[List[Event], int], bool]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                # A sub-event failed after the condition resolved (e.g.
                # a pipeline thread interrupted once its plan already
                # aborted): the condition delivered its value long ago,
                # so absorb the straggler instead of crashing the loop.
                event.__sim_defused__ = True  # type: ignore[attr-defined]
            return
        if not event.ok:
            defused_source = getattr(event, "__sim_defused__", False)
            event.__sim_defused__ = True  # type: ignore[attr-defined]
            self.fail(event.value)
            if defused_source:
                # The failure was defused at its source (an interrupted
                # process); if the condition's waiter has given up too,
                # re-raising through the condition must stay quiet.
                self.__sim_defused__ = True  # type: ignore[attr-defined]
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed({e: e.value for e in self._events if e.processed})


class AllOf(Condition):
    """Triggers once every sub-event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, events, lambda evs, count: count >= len(evs))


class AnyOf(Condition):
    """Triggers as soon as any sub-event triggers."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, events, lambda evs, count: count >= 1)


class Environment:
    """Execution environment: event queue plus the simulation clock."""

    def __init__(self, initial_time: int = 0) -> None:
        self._now = initial_time
        self._queue: List = []
        #: Zero-delay events awaiting dispatch at the current time, in
        #: FIFO (= scheduling) order. The fast path of ``_schedule``:
        #: the common case — ``succeed``/``fail``/``timeout(0)`` — skips
        #: the heap (no tuple, no sequence number, no log-n sift). See
        #: the module docstring for why the order is unchanged.
        self._ready: deque = deque()
        self._eid = itertools.count()
        self._active_proc: Optional[Process] = None
        self._processes: List[Process] = []
        self._prune_at = 64
        #: Events dispatched so far (one increment per ``step()``) — the
        #: numerator of the events/second throughput metric reported by
        #: ``benchmarks/bench_perf.py``.
        self.events_processed = 0
        #: Optional cycle-level tracer (see :mod:`repro.trace`). ``None``
        #: keeps every instrumentation site on its one-comparison path.
        self.tracer = None
        #: Optional live metrics registry (see :mod:`repro.metrics`).
        #: Same contract as the tracer: ``None`` means every
        #: instrumentation site pays one attribute load and a pointer
        #: compare; attached recording never schedules events.
        self.metrics = None

    @property
    def now(self) -> int:
        """Current simulated time (clock cycles)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_proc

    # -- event factories -------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: Optional[str] = None) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- process bookkeeping (deadlock diagnosis) ------------------------

    def _register_process(self, process: "Process") -> None:
        self._processes.append(process)
        if len(self._processes) > self._prune_at:
            self._processes = [p for p in self._processes if p.is_alive]
            self._prune_at = max(64, 2 * len(self._processes))

    def blocked_processes(self) -> List[Tuple["Process", Event]]:
        """Alive processes and the events they are blocked on.

        The substrate of the deadlock detector: when the schedule
        drains with work outstanding, this names who is stuck where
        (channel wait events carry a ``wait_reason`` attribute naming
        the resource).
        """
        self._processes = [p for p in self._processes if p.is_alive]
        return [(p, p.target) for p in self._processes
                if p.target is not None]

    def deadlock_report(self) -> str:
        """Human-readable listing of every blocked process."""
        blocked = self.blocked_processes()
        if not blocked:
            return "no blocked processes"
        lines = []
        for proc, target in blocked:
            reason = getattr(target, "wait_reason", None) or repr(target)
            lines.append(f"process {proc.name!r} blocked on {reason}")
        return "\n".join(lines)

    # -- scheduling / running --------------------------------------------

    def _schedule(self, event: Event, delay: int = 0) -> None:
        if delay:
            heapq.heappush(self._queue,
                           (self._now + delay, next(self._eid), event))
        else:
            self._ready.append(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        if self._queue:
            when = self._queue[0][0]
            if when == self._now or not self._ready:
                return when
        elif not self._ready:
            return float("inf")
        return self._now

    def step(self) -> None:
        """Process the next scheduled event.

        Heap entries due at the current time dispatch before the ready
        deque (they were scheduled earlier — module docstring); the
        clock only advances once the deque has drained.
        """
        queue = self._queue
        if queue and (queue[0][0] == self._now or not self._ready):
            when, _, event = heapq.heappop(queue)
            self._now = when
        elif self._ready:
            event = self._ready.popleft()
        else:
            raise SimulationError("step() on an empty schedule")
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not getattr(event, "__sim_defused__", False):
            raise event._value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        ``until`` may be ``None`` (drain), an integer time, or an
        :class:`Event` whose value is returned when it triggers.
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[int] = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value

            def _stop(event: Event) -> None:
                raise StopSimulation

            stop_event.callbacks.append(_stop)
        elif until is not None:
            stop_time = int(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time} is in the past (now={self._now})")

        try:
            while self._queue or self._ready:
                if stop_time is not None and self.peek() > stop_time:
                    self._now = stop_time
                    return None
                self.step()
        except StopSimulation:
            assert stop_event is not None
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        finally:
            # If an unrelated exception (or a drain) exits this run
            # before the stop event processes, its _stop callback must
            # not stay armed — it would raise a stray StopSimulation
            # out of a *later* run() call.
            if stop_event is not None and stop_event.callbacks \
                    and _stop in stop_event.callbacks:
                stop_event.callbacks.remove(_stop)
        if stop_event is not None and not stop_event.triggered:
            raise DeadlockError(
                "run(until=event) drained the schedule before the event "
                "triggered", blocked=self.blocked_processes())
        if stop_time is not None:
            self._now = stop_time
        return None
