"""The libesp-style user API (what Fig. 5's generated app calls).

Wraps device probe, buffer allocation and dataflow execution into the
three calls the paper's generated application uses: ``esp_alloc``,
``esp_run`` and ``esp_cleanup``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..faults import RecoveryPolicy
from ..soc import SoCInstance
from .alloc import Buffer, ContigAllocator
from .dataflow import Dataflow
from .driver import DeviceRegistry
from .executor import DataflowExecutor, RunResult, RuntimeCosts


class EspRuntime:
    """The software stack of one booted SoC: driver + libesp.

    Creating the runtime performs the driver probe (building the global
    device list); the instance then exposes the user-level API.
    """

    def __init__(self, soc: SoCInstance,
                 costs: Optional[RuntimeCosts] = None,
                 recovery: Optional[RecoveryPolicy] = None) -> None:
        self.soc = soc
        self.registry = DeviceRegistry()
        self.registry.probe(soc)
        self.allocator = ContigAllocator(soc.memory_map)
        self.executor = DataflowExecutor(soc, self.registry,
                                         self.allocator, costs=costs,
                                         recovery=recovery)

    # -- libesp ----------------------------------------------------------

    def esp_alloc(self, n_words: int, label: str = "buf") -> Buffer:
        """Allocate an accelerator-visible contiguous buffer."""
        return self.allocator.alloc(n_words, label=label)

    def esp_run(self, dataflow: Dataflow, frames: np.ndarray,
                mode: str = "p2p", coherence=None, coherent=None,
                dvfs=None) -> RunResult:
        """Execute the accelerator dataflow over a batch of frames.

        ``mode`` selects the execution strategy of Fig. 7: ``base``
        (serial, DMA), ``pipe`` (threaded pipeline, DMA), ``p2p``
        (threaded pipeline over the p2p service) or ``custom``
        (per-edge transport). ``coherence`` picks the DMA coherence
        model: a single :class:`~repro.soc.CoherenceMode` (or its
        string value — ``"non-coherent"``, ``"llc-coherent"``,
        ``"fully-coherent"``) for every device, or a ``device -> mode``
        mapping so each accelerator in the pipeline chooses its own.
        The boolean ``coherent=`` alias is deprecated (True means
        LLC-coherent). ``dvfs`` maps device names to clock dividers
        (per-tile DVFS): a device with divider k computes k times
        slower and burns ~1/k of its dynamic power.
        """
        return self.executor.execute(dataflow, frames, mode,
                                     coherence=coherence,
                                     coherent=coherent, dvfs=dvfs)

    def esp_cleanup(self) -> None:
        """Release every buffer allocated through this runtime."""
        self.allocator.cleanup()

    # -- conveniences -------------------------------------------------------

    def device_names(self):
        return self.registry.names()

    def device_location(self, name: str):
        return self.registry.coords_for(name)
