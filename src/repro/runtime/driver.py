"""The ESP Linux device-driver layer (kernel-side model).

Paper Sec. IV: "we modified the ESP device driver such that any
registered accelerator (discovered when probe is executed) is added to
a global linked list protected by a spinlock. This list allows any
thread executing the code of an accelerator device-driver in kernel
mode to access information related to other accelerators ... a device
name, already known in user space, can be mapped to the corresponding
x-y coordinates. These coordinates are not exposed to user space."

Here the registry is that global list; the simulation is single-OS so
the spinlock reduces to ordinary mutation, but probe order, name ->
coordinate resolution and the kernel/user visibility split are
preserved: user-level code (the dataflow API) only ever names devices,
and the executor resolves coordinates through this registry when it
programs ``P2P_REG``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..soc import AcceleratorTile, LOCATION_REG, SoCInstance, decode_location

Coord = Tuple[int, int]


@dataclass(frozen=True)
class EspDevice:
    """One probed accelerator device (a node of the global list)."""

    name: str
    spec_name: str
    coord: Coord
    tile: AcceleratorTile

    @property
    def location(self) -> Coord:
        """Coordinates as read back from the tile's LOCATION_REG."""
        return decode_location(self.tile.regs.read(LOCATION_REG))


class DeviceRegistry:
    """The global accelerator list built at probe time."""

    def __init__(self) -> None:
        self._devices: Dict[str, EspDevice] = {}
        self._probe_order: List[str] = []
        self._failed: Set[str] = set()

    def probe(self, soc: SoCInstance) -> None:
        """Discover every accelerator tile of the SoC (driver probe).

        Idempotent: re-probing a SoC (driver reload, hot-plug rescan)
        leaves already-registered devices in place and clears their
        failed marks — a rescan is how a repaired device rejoins the
        pool. A name that resolves to a *different* tile is still an
        error (two devices claiming one name).
        """
        for name in sorted(soc.accelerators):
            tile = soc.accelerators[name]
            existing = self._devices.get(name)
            if existing is not None:
                if existing.tile is not tile:
                    raise ValueError(
                        f"device {name!r} probed twice with different "
                        f"tiles ({existing.coord} vs {tile.coord})")
                self._failed.discard(name)
                continue
            device = EspDevice(name=name, spec_name=tile.spec.name,
                               coord=tile.coord, tile=tile)
            if device.location != tile.coord:
                raise RuntimeError(
                    f"LOCATION_REG of {name!r} reads {device.location}, "
                    f"tile is at {tile.coord}")
            self._devices[name] = device
            self._probe_order.append(name)

    def remove(self, name: str) -> None:
        """Unregister a device (driver unbind / tile decommissioned)."""
        if name not in self._devices:
            raise KeyError(f"no device named {name!r} to remove")
        del self._devices[name]
        self._probe_order.remove(name)
        self._failed.discard(name)

    def mark_failed(self, name: str) -> None:
        """Flag a device as unusable (recovery exhausted its retries).

        The device stays in the list — user space can still resolve its
        name — but the executor routes its work to the software
        fallback until a re-probe clears the mark.
        """
        self.by_name(name)   # raises KeyError for unknown names
        self._failed.add(name)

    def clear_failed(self, name: str) -> None:
        """Clear one device's failed mark (targeted repair).

        The per-device counterpart of a full re-probe: the probation
        path resets a single tile and re-admits it without rescanning
        the whole SoC."""
        self.by_name(name)   # raises KeyError for unknown names
        self._failed.discard(name)

    def is_failed(self, name: str) -> bool:
        return name in self._failed

    def failed_names(self) -> List[str]:
        return sorted(self._failed)

    def by_name(self, name: str) -> EspDevice:
        if name not in self._devices:
            raise KeyError(f"no device named {name!r}; probed: "
                           f"{self._probe_order}")
        return self._devices[name]

    def coords_for(self, name: str) -> Coord:
        """Kernel-side name -> NoC coordinates resolution."""
        return self.by_name(name).coord

    def names(self) -> List[str]:
        return list(self._probe_order)

    def __len__(self) -> int:
        return len(self._devices)

    def __contains__(self, name: str) -> bool:
        return name in self._devices
