"""User-application code generation (the Fig. 5 artifact).

The ESP4ML flow generates, for a given SoC and dataflow, a C
application skeleton plus a ``dflow.h`` configuration header. The
generated sources are flow artifacts (like the HLS firmware emitted by
:mod:`repro.hls4ml_flow.codegen`); the executable behaviour lives in
:class:`repro.runtime.api.EspRuntime`.
"""

from __future__ import annotations

from .dataflow import Dataflow


def emit_dataflow_header(dataflow: Dataflow, n_frames: int,
                         mode: str = "p2p") -> str:
    """Render ``dflow.h``: one descriptor per accelerator invocation."""
    levels = dataflow.levels()
    lines = [
        f"// Auto-generated dataflow configuration: {dataflow.name}",
        f"#define NACC {len(dataflow.devices)}",
        f"#define N_FRAMES {n_frames}",
        "",
        "esp_thread_info_t cfg_" + dataflow.name + "[] = {",
    ]
    last = len(levels) - 1
    for level_idx, names in enumerate(levels):
        for name in names:
            load = "P2P" if (mode == "p2p" and level_idx > 0) else "DMA"
            store = "P2P" if (mode == "p2p" and level_idx < last) else "DMA"
            sources = ""
            if load == "P2P":
                rotation = dataflow.source_rotation(name)
                sources = ', .p2p_srcs = {' + ", ".join(
                    f'"{s}"' for s in rotation) + '}'
            lines.append(
                f'    {{ .devname = "{name}", .load = {load}, '
                f'.store = {store}{sources} }},')
    lines.append("};")
    return "\n".join(lines) + "\n"


def emit_user_app(dataflow: Dataflow, dataset_words: int) -> str:
    """Render the generated ``main`` (the snippet shown in Fig. 5)."""
    header = f"dflow_{dataflow.name}.h"
    return f'''#include "libesp.h"
#include "{header}"

int main(int argc, char **argv)
{{
    int errors = 0;
    contig_handle_t contig;
    uint8_t *buf;

    // Allocate memory
    buf = (uint8_t *) esp_alloc(&contig, {dataset_words});

    // Initialize buffer
    init_buffer(buf);

    // Execute accelerator(s) dataflow.
    // The configuration specifies the communication
    // for each accelerator invocation: DMA or P2P.
    esp_run(cfg_{dataflow.name}, NACC);

    // Validation
    errors += validate_buffer(buf);

    // Free memory
    esp_cleanup();

    return errors;
}}
'''
