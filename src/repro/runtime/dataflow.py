"""Application dataflow specification (the ``dflow.h`` of Fig. 5).

Paper Sec. I contribution 2: "an API that for a given embedded
application and a target SoC architecture allows the specification of
the software part to be accelerated as a simple dataflow of
computational kernels". The dataflow names accelerator *devices* (never
NoC coordinates — the driver resolves those), connects them with edges,
and the runtime turns it into a pipeline in one of four execution
modes:

- ``base``: serial single-thread invocation, DMA through DRAM;
- ``pipe``: one thread per accelerator, per-frame synchronization with
  pthread-style primitives, DMA through DRAM;
- ``p2p``: one thread per accelerator, a single streaming invocation
  each, inter-accelerator data over the p2p service;
- ``custom``: per-edge transport choice (each edge's ``comm``), the
  per-invocation DMA-or-P2P flexibility of Fig. 5.

``base``/``pipe``/``p2p`` are the bars of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import gcd
from typing import Dict, List, Sequence, Tuple

from ..soc import MAX_P2P_SOURCES

#: ``custom`` honours each edge's own ``comm`` attribute — the
#: per-invocation DMA-or-P2P choice the generated application exposes
#: (Fig. 5: "The configuration specifies the communication for each
#: accelerator invocation: DMA or P2P").
EXECUTION_MODES = ("base", "pipe", "p2p", "custom")

COMM_KINDS = ("dma", "p2p")


@dataclass(frozen=True)
class DataflowEdge:
    """A producer -> consumer dependency between two devices.

    ``comm`` selects the transport for this edge in ``custom`` mode;
    the uniform modes (``pipe``, ``p2p``) override it.
    """

    src: str
    dst: str
    comm: str = "dma"

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self-edge on {self.src!r}")
        if self.comm not in COMM_KINDS:
            raise ValueError(
                f"comm must be one of {COMM_KINDS}, got {self.comm!r}")


@dataclass
class Dataflow:
    """A DAG of accelerator devices.

    Nodes are device names present in the target SoC. Levels are
    derived from the graph: all roots (no incoming edge) read the
    application input buffer; all leaves write the output buffer.
    Parallel nodes at the same level split the frame stream in
    round-robin fashion (node ``i`` of ``k`` processes frames with
    index ``i mod k``) — this is how "multiple instances of the slower
    accelerator can be activated to feed a single accelerator
    downstream" (paper Sec. V).
    """

    name: str
    devices: List[str]
    edges: List[DataflowEdge] = field(default_factory=list)
    #: Optional per-device DMA coherence modes
    #: (:class:`~repro.soc.CoherenceMode` or its string value). Devices
    #: not listed run non-coherent; call-level ``coherence=`` arguments
    #: to ``esp_run``/``plan`` overlay these defaults.
    coherence: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.devices:
            raise ValueError("a dataflow needs at least one device")
        if len(set(self.devices)) != len(self.devices):
            raise ValueError("duplicate device in dataflow")
        known = set(self.devices)
        for edge in self.edges:
            if edge.src not in known or edge.dst not in known:
                raise ValueError(
                    f"edge {edge.src}->{edge.dst} references unknown "
                    f"device")
        for device in self.coherence:
            if device not in known:
                raise ValueError(
                    f"coherence mode for unknown device {device!r}")

    # -- graph structure -----------------------------------------------------

    def producers_of(self, device: str) -> List[str]:
        return [e.src for e in self.edges if e.dst == device]

    def consumers_of(self, device: str) -> List[str]:
        return [e.dst for e in self.edges if e.src == device]

    def edge_between(self, src: str, dst: str) -> DataflowEdge:
        for edge in self.edges:
            if edge.src == src and edge.dst == dst:
                return edge
        raise KeyError(f"no edge {src} -> {dst} in dataflow {self.name!r}")

    def levels(self) -> List[List[str]]:
        """Topological levels (longest path from any root).

        Within a level, devices keep the order they were declared in
        ``devices`` — that order defines the round-robin frame split.
        """
        depth: Dict[str, int] = {}

        def compute(device: str, visiting: Tuple[str, ...]) -> int:
            if device in visiting:
                cycle = " -> ".join(visiting + (device,))
                raise ValueError(f"dataflow has a cycle: {cycle}")
            if device in depth:
                return depth[device]
            producers = self.producers_of(device)
            level = 0 if not producers else 1 + max(
                compute(p, visiting + (device,)) for p in producers)
            depth[device] = level
            return level

        for device in self.devices:
            compute(device, ())
        n_levels = max(depth.values()) + 1
        levels: List[List[str]] = [[] for _ in range(n_levels)]
        for device in self.devices:
            levels[depth[device]].append(device)
        return levels

    # -- rewriting ---------------------------------------------------------------

    def substitute(self, mapping: Dict[str, str]) -> "Dataflow":
        """A new dataflow with devices renamed per ``mapping``.

        The structural rewrite behind tenant resharding: the graph
        (edges, levels, round-robin order) is preserved exactly while
        the named sockets change — the paper's runtime
        reconfigurability, where any equivalent accelerator tile can
        take over a role in the pipeline. Devices not in ``mapping``
        keep their names; mapping onto a device that stays in the
        dataflow is rejected (it would alias two roles).
        """
        unknown = set(mapping) - set(self.devices)
        if unknown:
            raise ValueError(
                f"substitute: {sorted(unknown)} not in dataflow "
                f"{self.name!r}")
        devices = [mapping.get(d, d) for d in self.devices]
        if len(set(devices)) != len(devices):
            raise ValueError(
                f"substitute: mapping {mapping} aliases devices "
                f"{devices}")
        edges = [DataflowEdge(src=mapping.get(e.src, e.src),
                              dst=mapping.get(e.dst, e.dst),
                              comm=e.comm)
                 for e in self.edges]
        coherence = {mapping.get(d, d): m
                     for d, m in self.coherence.items()}
        return Dataflow(name=self.name, devices=devices, edges=edges,
                        coherence=coherence)

    # -- validation --------------------------------------------------------------

    def validate(self) -> None:
        """Check the structural rules the runtime planner relies on."""
        levels = self.levels()
        for upstream, downstream in zip(levels, levels[1:]):
            up_index = {d: i for i, d in enumerate(upstream)}
            for device in downstream:
                producers = self.producers_of(device)
                if not producers:
                    raise ValueError(
                        f"device {device!r} sits at an inner level but has "
                        f"no producer")
                for producer in producers:
                    if producer not in up_index:
                        raise ValueError(
                            f"edge {producer}->{device} skips a level; "
                            f"chains must connect adjacent levels")
        for device in self.devices:
            n_sources = len(self.producers_of(device))
            if n_sources > MAX_P2P_SOURCES:
                raise ValueError(
                    f"device {device!r} has {n_sources} producers; "
                    f"P2P_REG supports at most {MAX_P2P_SOURCES}")

    def source_rotation(self, device: str) -> List[str]:
        """The p2p source order programmed into the device's P2P_REG.

        Device ``j`` of ``k`` consumers processes global frames
        ``f_t = j + t*k``; the producer of frame ``f`` is producer
        ``f mod k_up``. The rotation is the periodic sequence of
        producers the round-robin loads must follow.
        """
        levels = self.levels()
        for upstream, downstream in zip(levels, levels[1:]):
            if device not in downstream:
                continue
            k_up = len(upstream)
            k_down = len(downstream)
            j = downstream.index(device)
            period = k_up // gcd(k_down, k_up)
            rotation = [upstream[(j + t * k_down) % k_up]
                        for t in range(period)]
            produced_from = set(self.producers_of(device))
            if set(rotation) != produced_from:
                raise ValueError(
                    f"edges into {device!r} ({sorted(produced_from)}) do "
                    f"not match the frame interleaving, which requires "
                    f"sources {rotation}")
            return rotation
        raise ValueError(f"device {device!r} has no producers")

    def validate_for_p2p(self) -> None:
        """Extra rules for streaming p2p execution."""
        self.validate()
        for device in self.devices:
            rotation_targets = self.consumers_of(device)
            if len(rotation_targets) > 1:
                raise ValueError(
                    f"device {device!r} feeds {len(rotation_targets)} "
                    f"consumers; the p2p store queue serves requests in "
                    f"FIFO order, so one producer can feed only one "
                    f"consumer (replicate the producer instead)")
        for downstream in self.levels()[1:]:
            for device in downstream:
                rotation = self.source_rotation(device)
                if len(rotation) > MAX_P2P_SOURCES:
                    raise ValueError(
                        f"device {device!r} needs a source rotation of "
                        f"{len(rotation)} tiles; P2P_REG holds at most "
                        f"{MAX_P2P_SOURCES}")

    def validate_for_custom(self) -> None:
        """Rules for per-edge communication (``custom`` mode).

        The FIFO-order restriction applies only to producers that feed
        a consumer over a p2p edge; DMA edges tolerate fan-out.
        """
        self.validate()
        for device in self.devices:
            p2p_consumers = [e.dst for e in self.edges
                             if e.src == device and e.comm == "p2p"]
            if len(p2p_consumers) > 1:
                raise ValueError(
                    f"device {device!r} feeds {len(p2p_consumers)} "
                    f"consumers over p2p edges; one producer can feed "
                    f"only one p2p consumer")
        for downstream in self.levels()[1:]:
            for device in downstream:
                self.source_rotation(device)   # edge/interleave check


def chain(name: str, devices: Sequence[str],
          comm: str = "dma") -> Dataflow:
    """A linear pipeline (e.g. the 5-stage multi-tile classifier)."""
    devices = list(devices)
    edges = [DataflowEdge(a, b, comm=comm)
             for a, b in zip(devices, devices[1:])]
    return Dataflow(name=name, devices=devices, edges=edges)


def replicated_stage(name: str, producers: Sequence[str],
                     consumers: Sequence[str],
                     comm: str = "dma") -> Dataflow:
    """Two stages with replication (e.g. 4 NightVision -> 1 Classifier).

    With equal counts the stages pair off (nv_i -> cl_i); a single
    consumer gathers from every producer; a single producer feeds every
    consumer.
    """
    producers = list(producers)
    consumers = list(consumers)
    edges: List[DataflowEdge] = []
    if len(producers) == len(consumers):
        edges = [DataflowEdge(p, c, comm=comm)
                 for p, c in zip(producers, consumers)]
    elif len(consumers) == 1:
        edges = [DataflowEdge(p, consumers[0], comm=comm)
                 for p in producers]
    elif len(producers) == 1:
        edges = [DataflowEdge(producers[0], c, comm=comm)
                 for c in consumers]
    else:
        raise ValueError(
            f"unsupported replication {len(producers)} -> {len(consumers)}")
    return Dataflow(name=name, devices=producers + consumers, edges=edges)
