"""The runtime executor: dataflow -> running accelerator pipeline.

This is the paper's contribution 3 (Sec. V): "a runtime system on top
of Linux that takes this dataflow and translates it into a pipeline of
accelerators that are dynamically configured, managed, and kept
synchronized as they access shared data ... fully transparent to the
application programmer."

Execution modes (base/pipe/p2p are the bars of Fig. 7; ``custom``
honours each edge's own transport):

- ``base``: the accelerators are "invoked serially in a single-thread
  application"; every invocation is one frame; all data through DRAM.
- ``pipe``: "concurrent executions in a reconfigurable pipeline, as
  the accelerators are invoked with a multi-threaded application (one
  thread per accelerator)"; per-frame dependencies "enforced with
  pthread primitives"; data still through DRAM.
- ``p2p``: the same pipeline "adds the ESP4ML p2p communication":
  one *streaming* invocation per accelerator covering all frames;
  synchronization moves into hardware, software overhead drops to "the
  ioctl system calls that are used to start the accelerators".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..faults import AcceleratorTimeout, NodeFailed, RecoveryPolicy
from ..sim import Event, Interrupt, Process, ProgressCounter
from ..soc import (
    CMD_REG,
    CMD_RESET,
    CMD_START,
    COHERENCE_REG,
    CoherenceMode,
    DVFS_REG,
    DST_OFFSET_REG,
    DST_STRIDE_REG,
    N_FRAMES_REG,
    P2PConfig,
    P2P_REG,
    SRC_OFFSET_REG,
    SRC_STRIDE_REG,
    STATUS_DONE,
    STATUS_REG,
    SoCInstance,
    resolve_coherence,
)
from .alloc import Buffer, ContigAllocator
from .dataflow import Dataflow, EXECUTION_MODES
from .driver import DeviceRegistry, EspDevice


@dataclass(frozen=True)
class RuntimeCosts:
    """Software overheads on the RISC-V core, in cycles at SoC clock.

    ``completion`` selects how the driver observes accelerator
    completion: ``"irq"`` sleeps on the interrupt (the paper's
    drivers); ``"poll"`` spins on ``STATUS_REG`` over the IO plane
    every ``poll_interval_cycles`` — cheaper per event but it burns CPU
    cycles and NoC bandwidth, and adds up to one interval of completion
    latency.
    """

    ioctl_cycles: int = 600          # syscall entry/exit + driver work
    reg_write_cycles: int = 10       # uncached MMIO store issue
    thread_spawn_cycles: int = 150   # pthread_create
    sync_cycles: int = 40            # semaphore wait/post pair
    completion: str = "irq"          # "irq" | "poll"
    poll_interval_cycles: int = 200
    #: Upper bound on the STATUS_REG poll loop, in cycles. ``None``
    #: (the default) preserves the unbounded spin of the original
    #: driver; a bound turns a dead accelerator into a descriptive
    #: :class:`~repro.faults.AcceleratorTimeout` instead of a hang.
    max_wait_cycles: Optional[int] = None

    def __post_init__(self) -> None:
        if self.completion not in ("irq", "poll"):
            raise ValueError(
                f"completion must be 'irq' or 'poll', got "
                f"{self.completion!r}")
        if self.poll_interval_cycles < 1:
            raise ValueError("poll_interval_cycles must be >= 1")
        if self.max_wait_cycles is not None and self.max_wait_cycles < 1:
            raise ValueError("max_wait_cycles must be >= 1 (or None)")


@dataclass
class NodePlan:
    """One device's role in the planned execution."""

    device: EspDevice
    level: int
    index: int            # position among its level's siblings
    siblings: int         # number of devices at this level
    n_frames: int         # frames this instance processes

    @property
    def name(self) -> str:
        return self.device.name

    @property
    def spec(self):
        return self.device.tile.spec


@dataclass
class ExecutionPlan:
    """Buffers and per-node assignments for one esp_run call.

    Plans are self-contained so several can be in flight concurrently
    on one SoC (the serving layer interleaves plans over disjoint tile
    sets): pipeline threads and runtime-overhead counters live on the
    plan, not on the executor, and the buffers the plan allocated can
    be released as a unit when it completes.
    """

    dataflow: Dataflow
    mode: str
    n_frames: int
    levels: List[List[NodePlan]]
    input_buffer: Buffer
    output_buffer: Buffer
    inter_buffers: List[Optional[Buffer]]   # one per level boundary
    #: Per-device DMA coherence mode; devices not in the mapping run
    #: non-coherent (the seed behaviour).
    coherence: Dict[str, CoherenceMode] = field(default_factory=dict)
    dvfs: Dict[str, int] = field(default_factory=dict)  # device -> divider
    #: Pipeline threads spawned for this plan (plan-local so concurrent
    #: plans never clobber each other's thread lists).
    threads: List[Process] = field(default_factory=list)
    # Per-plan runtime accounting (the executor keeps cumulative totals
    # too; these attribute overheads to one plan under concurrency).
    ioctl_calls: int = 0
    retries: int = 0
    watchdog_timeouts: int = 0
    software_frames: int = 0
    #: First unrecoverable error a pipeline thread hit. Threads record
    #: it here (and trigger ``abort``) instead of crashing the global
    #: event loop, so a failure inside one plan stays observable by
    #: that plan's main alone — a second plan sharing the SoC keeps
    #: running.
    failure: Optional[BaseException] = None
    abort: Optional[Event] = None

    def node(self, name: str) -> NodePlan:
        for level in self.levels:
            for node in level:
                if node.name == name:
                    return node
        raise KeyError(name)

    def mode_for(self, name: str) -> CoherenceMode:
        return self.coherence.get(name, CoherenceMode.NON_COHERENT)

    @property
    def coherent(self) -> bool:
        """Back-compat view: any device running a cached mode."""
        return any(mode is not CoherenceMode.NON_COHERENT
                   for mode in self.coherence.values())

    @property
    def device_names(self) -> List[str]:
        return [node.name for level in self.levels for node in level]

    @property
    def buffers(self) -> List[Buffer]:
        """Every buffer this plan allocated (for pooled release)."""
        return [self.input_buffer, self.output_buffer] + \
            [b for b in self.inter_buffers if b is not None]


@dataclass
class RunResult:
    """Measured outcome of one esp_run call."""

    dataflow: str
    mode: str
    frames: int
    cycles: int
    clock_mhz: float
    dram_accesses: int
    ioctl_calls: int
    outputs: np.ndarray = field(repr=False)
    # Recovery accounting (all zero on a fault-free run).
    retries: int = 0
    watchdog_timeouts: int = 0
    software_frames: int = 0
    degraded: bool = False

    @property
    def seconds(self) -> float:
        return self.cycles / (self.clock_mhz * 1e6)

    @property
    def frames_per_second(self) -> float:
        return self.frames / self.seconds if self.seconds > 0 else 0.0

    def frames_per_joule(self, watts: float) -> float:
        if watts <= 0:
            raise ValueError(f"watts must be > 0, got {watts}")
        return self.frames_per_second / watts


class DataflowExecutor:
    """Plans and executes dataflows on a built SoC instance."""

    def __init__(self, soc: SoCInstance, registry: DeviceRegistry,
                 allocator: ContigAllocator,
                 costs: Optional[RuntimeCosts] = None,
                 recovery: Optional[RecoveryPolicy] = None) -> None:
        self.soc = soc
        self.registry = registry
        self.allocator = allocator
        self.costs = costs or RuntimeCosts()
        #: ``None`` (the default) keeps the original fail-stop runtime:
        #: every wait is unbounded and the execution path is exactly the
        #: non-robust one (pay-for-what-you-use). A policy arms the
        #: per-invocation watchdog, bounded retry and software fallback.
        self.recovery = recovery
        self.ioctl_calls = 0
        # Recovery accounting (totals across runs).
        self.retries = 0
        self.watchdog_timeouts = 0
        self.software_frames = 0
        self.degraded_runs = 0
        #: Devices the control plane ordered onto the CPU fallback.
        #: Unlike a registry ``failed`` mark (the hardware's verdict),
        #: a forced device is a *policy* decision: invocations route
        #: straight to software without burning the watchdog ladder,
        #: and an in-flight watchdog wait is preempted immediately.
        self.forced_software: Set[str] = set()
        self.forced_preemptions = 0
        self._preempts: Dict[str, Event] = {}
        #: Upper bound, in cycles, on the posted-store quiesce wait of
        #: the re-entrant :meth:`run_process` path. ``None`` waits
        #: until fully quiescent; a bound writes lost stores off so a
        #: dropped packet cannot wedge the serving loop.
        self.quiesce_bound: Optional[int] = None

    # -- planning ----------------------------------------------------------

    @staticmethod
    def _resolve_modes(dataflow: Dataflow, coherence,
                       coherent) -> Dict[str, CoherenceMode]:
        """Per-device coherence assignment for one plan.

        ``coherence`` may be a single mode (enum, string or — via the
        deprecated ``coherent`` boolean — LLC on/off) applied to every
        device, or a mapping ``device -> mode`` for mixed-mode
        pipelines; call-level assignments overlay any modes the
        dataflow itself declares. Non-coherent devices are left out of
        the result so the default plan is empty (seed behaviour).
        """
        modes: Dict[str, CoherenceMode] = {
            device: CoherenceMode.coerce(value)
            for device, value in dataflow.coherence.items()}
        if isinstance(coherence, dict):
            if coherent is not None:
                raise TypeError(
                    "pass either coherence= or the deprecated "
                    "coherent=, not both")
            overlay = coherence
        else:
            uniform = resolve_coherence(coherence, coherent,
                                        stacklevel=5)
            if uniform is CoherenceMode.NON_COHERENT \
                    and coherence is None and coherent is None:
                overlay = {}
            else:
                overlay = {device: uniform
                           for device in dataflow.devices}
        for device, value in overlay.items():
            if device not in dataflow.devices:
                raise ValueError(
                    f"coherence mode given for {device!r}, which is "
                    f"not in the dataflow")
            modes[device] = CoherenceMode.coerce(value)
        return {device: mode for device, mode in modes.items()
                if mode is not CoherenceMode.NON_COHERENT}

    def plan(self, dataflow: Dataflow, n_frames: int,
             mode: str, coherence=None, coherent=None,
             dvfs: Optional[Dict[str, int]] = None) -> ExecutionPlan:
        if mode not in EXECUTION_MODES:
            raise ValueError(
                f"mode must be one of {EXECUTION_MODES}, got {mode!r}")
        if n_frames < 1:
            raise ValueError(f"n_frames must be >= 1, got {n_frames}")
        if mode == "p2p":
            dataflow.validate_for_p2p()
        elif mode == "custom":
            dataflow.validate_for_custom()
        else:
            dataflow.validate()
        modes = self._resolve_modes(dataflow, coherence, coherent)
        dvfs = dict(dvfs or {})
        for device, divider in dvfs.items():
            if device not in dataflow.devices:
                raise ValueError(
                    f"DVFS divider given for {device!r}, which is not in "
                    f"the dataflow")
            if divider < 1:
                raise ValueError(
                    f"DVFS divider for {device!r} must be >= 1")

        level_names = dataflow.levels()
        levels: List[List[NodePlan]] = []
        for level_idx, names in enumerate(level_names):
            siblings = len(names)
            if n_frames % siblings:
                raise ValueError(
                    f"{n_frames} frames do not split evenly over the "
                    f"{siblings} devices of level {level_idx}")
            row = []
            for index, name in enumerate(names):
                device = self.registry.by_name(name)
                row.append(NodePlan(device=device, level=level_idx,
                                    index=index, siblings=siblings,
                                    n_frames=n_frames // siblings))
            levels.append(row)

        self._check_geometry(levels)

        in_words = levels[0][0].spec.input_words
        out_words = levels[-1][0].spec.output_words
        input_buffer = self.allocator.alloc(n_frames * in_words,
                                            label=f"{dataflow.name}:in")
        output_buffer = self.allocator.alloc(n_frames * out_words,
                                             label=f"{dataflow.name}:out")
        inter_buffers: List[Optional[Buffer]] = []
        for boundary in range(len(levels) - 1):
            if mode == "p2p":
                inter_buffers.append(None)   # data never touches DRAM
            elif mode == "custom" and all(
                    e.comm == "p2p" for e in dataflow.edges
                    if e.dst in {n.name for n in levels[boundary + 1]}):
                inter_buffers.append(None)   # every edge here is p2p
            else:
                words = levels[boundary][0].spec.output_words
                inter_buffers.append(self.allocator.alloc(
                    n_frames * words,
                    label=f"{dataflow.name}:l{boundary}"))
        plan = ExecutionPlan(dataflow=dataflow, mode=mode,
                             n_frames=n_frames, levels=levels,
                             input_buffer=input_buffer,
                             output_buffer=output_buffer,
                             inter_buffers=inter_buffers,
                             coherence=modes,
                             dvfs=dvfs,
                             abort=self.soc.env.event())
        tracer = self.soc.env.tracer
        if tracer is not None:
            for buffer in plan.buffers:
                tracer.instant("cpu", "alloc", buffer.label or "buffer",
                               "runtime.alloc", offset=buffer.offset,
                               words=buffer.words)
        return plan

    @staticmethod
    def _check_geometry(levels: List[List[NodePlan]]) -> None:
        for row in levels:
            in_sizes = {n.spec.input_words for n in row}
            out_sizes = {n.spec.output_words for n in row}
            if len(in_sizes) > 1 or len(out_sizes) > 1:
                raise ValueError(
                    f"devices at level {row[0].level} disagree on frame "
                    f"geometry: in={in_sizes}, out={out_sizes}")
        for upper, lower in zip(levels, levels[1:]):
            if upper[0].spec.output_words != lower[0].spec.input_words:
                raise ValueError(
                    f"level {upper[0].level} outputs "
                    f"{upper[0].spec.output_words} words but level "
                    f"{lower[0].level} expects "
                    f"{lower[0].spec.input_words}")

    # -- driver-level invocation --------------------------------------------

    def _program_and_start(self, node: NodePlan, src_offset: int,
                           dst_offset: int, n_frames: int, p2p: P2PConfig,
                           src_stride: int, dst_stride: int,
                           coherence: CoherenceMode, divider: int):
        """The driver's register-programming sequence, ending CMD_START."""
        env = self.soc.env
        cpu = self.soc.cpu
        coord = node.device.coord
        writes = (
            (SRC_OFFSET_REG, src_offset),
            (DST_OFFSET_REG, dst_offset),
            (SRC_STRIDE_REG, src_stride),
            (DST_STRIDE_REG, dst_stride),
            (N_FRAMES_REG, n_frames),
            (P2P_REG, p2p.encode()),
            (COHERENCE_REG, coherence.register_value),
            (DVFS_REG, divider),
            (CMD_REG, CMD_START),
        )
        tracer = env.tracer
        sid = None if tracer is None else tracer.begin(
            "cpu", f"driver:{node.name}", "config", "runtime.config",
            device=node.name)
        for reg, value in writes:
            yield env.timeout(self.costs.reg_write_cycles)
            yield from cpu.write_reg(coord, reg, value)
        if sid is not None:
            tracer.end(sid)

    def _invoke(self, plan: ExecutionPlan, node: NodePlan,
                src_offset: int, dst_offset: int,
                n_frames: int, p2p: P2PConfig, src_stride: int = 0,
                dst_stride: int = 0,
                coherence: CoherenceMode = CoherenceMode.NON_COHERENT,
                divider: int = 1):
        """Configure the device over the NoC, start it, await its IRQ."""
        env = self.soc.env
        cpu = self.soc.cpu
        coord = node.device.coord
        self.ioctl_calls += 1
        plan.ioctl_calls += 1
        tracer = env.tracer
        tid = f"driver:{node.name}"
        sid = None if tracer is None else tracer.begin(
            "cpu", tid, "ioctl", "runtime.ioctl", device=node.name)
        yield env.timeout(self.costs.ioctl_cycles)
        if sid is not None:
            tracer.end(sid)
        yield from self._program_and_start(
            node, src_offset, dst_offset, n_frames, p2p, src_stride,
            dst_stride, coherence, divider)
        sid = None if tracer is None else tracer.begin(
            "cpu", tid, "wait-completion", "runtime.irq_wait",
            device=node.name)
        if self.costs.completion == "poll":
            poll_start = env.now
            while True:
                yield env.timeout(self.costs.poll_interval_cycles)
                status = yield from cpu.read_reg(coord, STATUS_REG)
                if status == STATUS_DONE:
                    break
                if (self.costs.max_wait_cycles is not None
                        and env.now - poll_start
                        >= self.costs.max_wait_cycles):
                    raise AcceleratorTimeout(
                        node.name, env.now - poll_start,
                        detail=f"STATUS_REG stayed {status} past "
                               f"max_wait_cycles="
                               f"{self.costs.max_wait_cycles}")
            # Drain the (unmasked) completion interrupt.
            yield from cpu.wait_irq(node.name)
        else:
            yield from cpu.wait_irq(node.name)
        if sid is not None:
            tracer.end(sid)

    # -- control-plane override ---------------------------------------------

    def force_software(self, name: str) -> None:
        """Order ``name`` onto the CPU fallback until further notice.

        The control plane's escalation for a tile whose stall alert
        outlives the local retry budget: subsequent invocations skip
        the hardware entirely, and an invocation currently parked on
        the watchdog is preempted *now* instead of serving out the
        backed-off deadline. Requires a recovery policy with
        ``software_fallback`` (there is nothing to fall back to
        otherwise)."""
        if self.recovery is None or not self.recovery.software_fallback:
            raise RuntimeError(
                "force_software needs a recovery policy with "
                "software_fallback enabled")
        self.registry.by_name(name)   # raises on unknown devices
        self.forced_software.add(name)
        pending = self._preempts.get(name)
        if pending is not None and not pending.triggered:
            pending.succeed()

    def clear_forced(self, name: str) -> None:
        """Lift a :meth:`force_software` order (tile repaired)."""
        self.forced_software.discard(name)

    def _await_completion(self, node: NodePlan, watchdog_cycles: int):
        """IRQ race against the watchdog; True when the IRQ arrived.

        On timeout the pending IRQ getter is withdrawn so a late
        interrupt parks in the queue (drained before the next attempt)
        instead of resuming a waiter that gave up. A
        :meth:`force_software` order for the device resolves the race
        immediately (counted as a preemption, not a timeout, by the
        caller)."""
        env = self.soc.env
        cpu = self.soc.cpu
        irq = cpu.irq_event(node.name)
        preempt = env.event()
        preempt.wait_reason = f"force-software preempt for {node.name}"
        self._preempts[node.name] = preempt
        yield env.any_of([irq, env.timeout(watchdog_cycles), preempt])
        if self._preempts.get(node.name) is preempt:
            del self._preempts[node.name]
        if irq.triggered:
            return True
        cpu.cancel_irq(node.name, irq)
        return False

    def _invoke_guarded(self, plan: ExecutionPlan, node: NodePlan,
                        src_offset: int,
                        dst_offset: int, n_frames: int, p2p: P2PConfig,
                        src_stride: int, dst_stride: int,
                        coherence: CoherenceMode,
                        divider: int, max_attempts: int):
        """Watchdogged invocation with bounded retry; True on success.

        Each attempt programs and starts the device, then races its
        completion IRQ against ``recovery.watchdog_for(attempt)`` (the
        exponential backoff stretches the window for a slow but live
        device). A missed watchdog or a completion whose STATUS_REG is
        not DONE (kernel crash, lost packet) triggers a hardware
        CMD_RESET of the socket before the next attempt. Completion is
        always observed through the interrupt here, even under
        ``completion="poll"`` costs: the watchdog subsumes the poll
        loop's purpose.
        """
        env = self.soc.env
        cpu = self.soc.cpu
        coord = node.device.coord
        policy = self.recovery
        self.ioctl_calls += 1
        plan.ioctl_calls += 1
        tracer = env.tracer
        tid = f"driver:{node.name}"
        sid = None if tracer is None else tracer.begin(
            "cpu", tid, "ioctl", "runtime.ioctl", device=node.name)
        yield env.timeout(self.costs.ioctl_cycles)
        if sid is not None:
            tracer.end(sid)
        for attempt in range(max_attempts):
            if node.name in self.forced_software:
                # The control plane ordered this device onto the CPU
                # mid-retry: stop burning the watchdog ladder.
                return False
            if attempt:
                self.retries += 1
                plan.retries += 1
                if env.metrics is not None:
                    env.metrics.retries.inc()
            # Drain interrupts a previous (abandoned) attempt left over.
            while cpu.try_irq(node.name) is not None:
                pass
            yield from self._program_and_start(
                node, src_offset, dst_offset, n_frames, p2p, src_stride,
                dst_stride, coherence, divider)
            sid = None if tracer is None else tracer.begin(
                "cpu", tid, "wait-completion", "runtime.irq_wait",
                device=node.name, attempt=attempt)
            arrived = yield from self._await_completion(
                node, policy.watchdog_for(attempt))
            if sid is not None:
                tracer.end(sid, arrived=arrived)
            if arrived:
                status = yield from cpu.read_reg_bounded(
                    coord, STATUS_REG, policy.watchdog_cycles)
                if status == STATUS_DONE:
                    return True
            elif node.name in self.forced_software:
                # Preempted by force_software, not a watchdog verdict.
                self.forced_preemptions += 1
            else:
                self.watchdog_timeouts += 1
                plan.watchdog_timeouts += 1
                if env.metrics is not None:
                    env.metrics.watchdog_timeouts.inc()
            # Recover the socket: abort whatever is (not) running.
            yield env.timeout(self.costs.reg_write_cycles)
            yield from cpu.write_reg(coord, CMD_REG, CMD_RESET)
            yield env.timeout(policy.reset_cycles)
        return False

    def _software_node(self, plan: ExecutionPlan, node: NodePlan,
                       src_offset: int,
                       dst_offset: int, n_frames: int,
                       src_stride: int = 0, dst_stride: int = 0):
        """Graceful degradation: run the node's kernel on the CPU.

        Bit-exact with the accelerator (same NumPy kernel), but each
        frame costs ``latency_cycles * software_slowdown`` — the
        scalar-core penalty the paper's accelerators exist to avoid.
        The compute delay also quiesces in-flight posted stores from
        upstream accelerators before the CPU-side read.
        """
        env = self.soc.env
        spec = node.spec
        memory = self.soc.memory_map
        src_step = src_stride or spec.input_words
        dst_step = dst_stride or spec.output_words
        cost = max(1, int(spec.latency_cycles
                          * self.recovery.software_slowdown))
        tracer = env.tracer
        sid = None if tracer is None else tracer.begin(
            "cpu", f"driver:{node.name}", "software-fallback",
            "runtime.software", device=node.name, frames=n_frames)
        for index in range(n_frames):
            yield env.timeout(cost)
            frame = memory.read_words(src_offset + index * src_step,
                                      spec.input_words)
            memory.write_words(dst_offset + index * dst_step,
                               spec.run(frame))
            self.software_frames += 1
            plan.software_frames += 1
        if sid is not None:
            tracer.end(sid)

    def _run_node(self, plan: ExecutionPlan, node: NodePlan,
                  src_offset: int, dst_offset: int, n_frames: int,
                  p2p: P2PConfig, src_stride: int = 0,
                  dst_stride: int = 0):
        """Dispatch one node invocation through the recovery policy.

        Without a policy this is exactly the original `_invoke` path.
        With one: a device already marked failed goes straight to the
        software fallback; otherwise the guarded invocation runs, and
        on permanent failure the device is marked failed and either
        falls back to software (DMA transports — the data is in DRAM)
        or raises :class:`NodeFailed` (p2p transports — the stream's
        alignment with its peers is unrecoverable, the whole run must
        degrade).
        """
        divider = plan.dvfs.get(node.name, 1)
        node_mode = plan.mode_for(node.name)
        if self.recovery is None:
            yield from self._invoke(
                plan, node, src_offset, dst_offset, n_frames, p2p,
                src_stride=src_stride, dst_stride=dst_stride,
                coherence=node_mode, divider=divider)
            return
        policy = self.recovery
        streaming = p2p.uses_p2p
        if self.registry.is_failed(node.name) \
                or node.name in self.forced_software:
            if streaming:
                raise NodeFailed(node.name,
                                 "device marked failed; a p2p stream "
                                 "cannot be serviced in software")
            yield from self._software_node(plan, node, src_offset,
                                           dst_offset, n_frames,
                                           src_stride, dst_stride)
            return
        # Retrying a p2p stream would desynchronize it from its peers
        # (they hold partial progress), so streams get one attempt.
        attempts = 1 if streaming else policy.max_retries + 1
        ok = yield from self._invoke_guarded(
            plan, node, src_offset, dst_offset, n_frames, p2p, src_stride,
            dst_stride, node_mode, divider, attempts)
        if ok:
            return
        if node.name in self.forced_software:
            # A control-plane order, not a hardware verdict: route to
            # software without branding the device failed.
            if streaming:
                raise NodeFailed(node.name,
                                 "forced to software mid-stream")
            yield from self._software_node(plan, node, src_offset,
                                           dst_offset, n_frames,
                                           src_stride, dst_stride)
            return
        self.registry.mark_failed(node.name)
        if streaming:
            raise NodeFailed(node.name, "watchdog expired mid-stream")
        if not policy.software_fallback:
            raise NodeFailed(node.name, "retries exhausted and software "
                                        "fallback disabled")
        yield from self._software_node(plan, node, src_offset, dst_offset,
                                       n_frames, src_stride, dst_stride)

    def _thread_guard(self, plan: ExecutionPlan, body):
        """Contain a pipeline thread's failure inside its plan.

        An unhandled exception in a bare thread process would crash the
        whole event loop — fatal when several plans share the SoC. The
        guard records the first failure on the plan and triggers its
        ``abort`` event; the plan's main observes it and re-raises, so
        the error surfaces exactly where the plan is being driven.
        """
        try:
            yield from body
        except Interrupt:
            raise    # plan aborted from outside; die quietly (defused)
        except Exception as exc:
            if plan.failure is None:
                plan.failure = exc
                if not plan.abort.triggered:
                    plan.abort.succeed(exc)

    def _spawn_threads(self, plan: ExecutionPlan, make_body):
        """Stagger-spawn one guarded thread per node; then await them.

        ``make_body`` maps a :class:`NodePlan` to the thread generator.
        Stops early if a freshly spawned thread already failed (e.g. a
        p2p stream on a device marked failed raises immediately).
        """
        env = self.soc.env
        tracer = env.tracer
        for row in plan.levels:
            for node in row:
                sid = None if tracer is None else tracer.begin(
                    "cpu", f"driver:{node.name}", "pthread-create",
                    "runtime.spawn", device=node.name)
                yield env.timeout(self.costs.thread_spawn_cycles)
                if sid is not None:
                    tracer.end(sid)
                if plan.failure is not None:
                    raise plan.failure
                plan.threads.append(env.process(
                    self._thread_guard(plan, make_body(node)),
                    name=f"{plan.mode}-thread:{node.name}"))
        yield env.any_of([env.all_of(plan.threads), plan.abort])
        if plan.failure is not None:
            raise plan.failure

    # -- address helpers -------------------------------------------------------

    @staticmethod
    def _frame_addr(buffer: Buffer, frame: int, words: int) -> int:
        return buffer.offset + frame * words

    def _src_buffer(self, plan: ExecutionPlan, level: int) -> Buffer:
        return plan.input_buffer if level == 0 \
            else plan.inter_buffers[level - 1]

    def _dst_buffer(self, plan: ExecutionPlan, level: int) -> Buffer:
        last = len(plan.levels) - 1
        return plan.output_buffer if level == last \
            else plan.inter_buffers[level]

    # -- base mode ----------------------------------------------------------------

    def _base_main(self, plan: ExecutionPlan):
        no_p2p = P2PConfig()
        for frame in range(plan.n_frames):
            for level_idx, row in enumerate(plan.levels):
                node = row[frame % len(row)]
                spec = node.spec
                src = self._frame_addr(self._src_buffer(plan, level_idx),
                                       frame, spec.input_words)
                dst = self._frame_addr(self._dst_buffer(plan, level_idx),
                                       frame, spec.output_words)
                yield from self._run_node(plan, node, src, dst, 1,
                                          no_p2p)

    # -- pipe mode -----------------------------------------------------------------

    def _pipe_thread(self, plan: ExecutionPlan, node: NodePlan,
                     counters: Dict[str, ProgressCounter]):
        env = self.soc.env
        no_p2p = P2PConfig()
        spec = node.spec
        for local in range(node.n_frames):
            frame = node.index + local * node.siblings
            if node.level > 0:
                producers = plan.levels[node.level - 1]
                producer = producers[frame % len(producers)]
                needed = (frame - producer.index) // producer.siblings + 1
                tracer = env.tracer
                sid = None if tracer is None else tracer.begin(
                    "cpu", f"driver:{node.name}", "frame-sync",
                    "runtime.sync", producer=producer.name, frame=frame)
                yield env.timeout(self.costs.sync_cycles)
                yield counters[producer.name].wait_until(needed)
                if sid is not None:
                    tracer.end(sid)
            src = self._frame_addr(self._src_buffer(plan, node.level),
                                   frame, spec.input_words)
            dst = self._frame_addr(self._dst_buffer(plan, node.level),
                                   frame, spec.output_words)
            yield from self._run_node(plan, node, src, dst, 1, no_p2p)
            counters[node.name].increment()

    def _pipe_main(self, plan: ExecutionPlan):
        env = self.soc.env
        counters = {node.name: ProgressCounter(env, name=f"done:{node.name}")
                    for row in plan.levels for node in row}
        yield from self._spawn_threads(
            plan, lambda node: self._pipe_thread(plan, node, counters))

    # -- custom mode (per-edge communication) --------------------------------------

    def _custom_thread(self, plan: ExecutionPlan, node: NodePlan,
                       counters: Dict[str, ProgressCounter]):
        """Per-frame invocations with each edge's own transport.

        DMA edges synchronize in software (like ``pipe``); p2p edges
        rely on the hardware handshake and reprogram ``P2P_REG`` every
        invocation with that frame's single source — the "dynamically
        configured" per-invocation choice of Sec. V.
        """
        env = self.soc.env
        dataflow = plan.dataflow
        spec = node.spec
        last = len(plan.levels) - 1
        for local in range(node.n_frames):
            frame = node.index + local * node.siblings
            load_p2p = False
            sources: Tuple[Tuple[int, int], ...] = ()
            src = dst = 0
            if node.level > 0:
                producers = plan.levels[node.level - 1]
                producer = producers[frame % len(producers)]
                edge = dataflow.edge_between(producer.name, node.name)
                if edge.comm == "p2p":
                    load_p2p = True
                    sources = (producer.device.coord,)
                else:
                    needed = (frame - producer.index) \
                        // producer.siblings + 1
                    tracer = env.tracer
                    sid = None if tracer is None else tracer.begin(
                        "cpu", f"driver:{node.name}", "frame-sync",
                        "runtime.sync", producer=producer.name,
                        frame=frame)
                    yield env.timeout(self.costs.sync_cycles)
                    yield counters[producer.name].wait_until(needed)
                    if sid is not None:
                        tracer.end(sid)
                    src = self._frame_addr(
                        plan.inter_buffers[node.level - 1], frame,
                        spec.input_words)
            else:
                src = self._frame_addr(plan.input_buffer, frame,
                                       spec.input_words)

            store_p2p = False
            if node.level < last:
                consumers = plan.levels[node.level + 1]
                consumer = consumers[frame % len(consumers)]
                edge = dataflow.edge_between(node.name, consumer.name)
                if edge.comm == "p2p":
                    store_p2p = True
                else:
                    dst = self._frame_addr(
                        plan.inter_buffers[node.level], frame,
                        spec.output_words)
            else:
                dst = self._frame_addr(plan.output_buffer, frame,
                                       spec.output_words)

            p2p = P2PConfig(store_enabled=store_p2p,
                            load_enabled=load_p2p, sources=sources)
            yield from self._run_node(plan, node, src, dst, 1, p2p)
            counters[node.name].increment()

    def _custom_main(self, plan: ExecutionPlan):
        env = self.soc.env
        counters = {node.name: ProgressCounter(env, name=f"done:{node.name}")
                    for row in plan.levels for node in row}
        yield from self._spawn_threads(
            plan, lambda node: self._custom_thread(plan, node, counters))

    # -- p2p mode ------------------------------------------------------------------

    def _p2p_thread(self, plan: ExecutionPlan, node: NodePlan):
        spec = node.spec
        last = len(plan.levels) - 1
        load_p2p = node.level > 0
        store_p2p = node.level < last

        src_offset = src_stride = 0
        if not load_p2p:
            src_offset = plan.input_buffer.offset \
                + node.index * spec.input_words
            src_stride = node.siblings * spec.input_words
        dst_offset = dst_stride = 0
        if not store_p2p:
            dst_offset = plan.output_buffer.offset \
                + node.index * spec.output_words
            dst_stride = node.siblings * spec.output_words

        sources: Tuple[Tuple[int, int], ...] = ()
        if load_p2p:
            rotation = plan.dataflow.source_rotation(node.name)
            sources = tuple(self.registry.coords_for(name)
                            for name in rotation)
        p2p = P2PConfig(store_enabled=store_p2p, load_enabled=load_p2p,
                        sources=sources)
        yield from self._run_node(plan, node, src_offset, dst_offset,
                                  node.n_frames, p2p,
                                  src_stride=src_stride,
                                  dst_stride=dst_stride)

    def _p2p_main(self, plan: ExecutionPlan):
        yield from self._spawn_threads(
            plan, lambda node: self._p2p_thread(plan, node))

    # -- entry point --------------------------------------------------------------------

    def execute(self, dataflow: Dataflow, frames: np.ndarray,
                mode: str, coherence=None, coherent=None,
                dvfs: Optional[Dict[str, int]] = None) -> RunResult:
        """Run the dataflow over ``frames`` (N x input_words).

        ``coherence`` selects the DMA coherence model — one
        :class:`CoherenceMode` (or its string value) for the whole run,
        or a ``device -> mode`` mapping so each accelerator picks its
        own. Cached modes require a memory tile with an LLC; without
        one the request silently behaves like non-coherent DMA, as in
        ESP where the fabric downgrades unsupported coherence
        requests. The boolean ``coherent=`` alias is deprecated.
        """
        frames = np.atleast_2d(np.asarray(frames, dtype=np.float64))
        plan = self.plan(dataflow, len(frames), mode,
                         coherence=coherence, coherent=coherent,
                         dvfs=dvfs)
        in_words = plan.levels[0][0].spec.input_words
        if frames.shape[1] != in_words:
            raise ValueError(
                f"input frames have {frames.shape[1]} words; level-0 "
                f"devices expect {in_words}")
        plan.input_buffer.write(frames.reshape(-1))

        env = self.soc.env
        dram_before = self.soc.memory_map.total_accesses
        ioctl_before = self.ioctl_calls
        retries_before = self.retries
        watchdogs_before = self.watchdog_timeouts
        software_before = self.software_frames
        start = env.now
        mains = {"base": self._base_main, "pipe": self._pipe_main,
                 "p2p": self._p2p_main, "custom": self._custom_main}
        done = env.process(mains[mode](plan),
                           name=f"main:{mode}:{dataflow.name}")
        degraded = False
        try:
            env.run(until=done)
        except NodeFailed:
            if self.recovery is None or not self.recovery.software_fallback:
                self._cleanup_failed(plan, done)
                raise
            if done.is_alive:
                # The failure escaped through a pipeline thread directly
                # (a thread died before main observed it — e.g. during
                # the staggered spawn loop, or two streams dying in the
                # same cycle). Kill main now: left alive it would resume
                # inside the quiesce drain and keep spawning threads for
                # the aborted run.
                done.interrupt("degraded re-run")
            plan = self._degrade(plan, dataflow, frames, dvfs)
            degraded = True
        except BaseException:
            # Any other mid-pipeline failure (AcceleratorTimeout,
            # DeadlockError, ...): stop in-flight accelerators, drain,
            # and release the plan's buffers so the SoC is immediately
            # reusable for the next plan, then let the error surface.
            self._cleanup_failed(plan, done)
            raise
        cycles = env.now - start
        if env.tracer is not None:
            env.tracer.complete(
                "cpu", "main", f"{mode}:{dataflow.name}", "runtime.run",
                start, env.now, frames=plan.n_frames, degraded=degraded)
        # Drain the schedule: stores are posted, so the final write may
        # still be in the memory tile's request queue when the IRQ
        # lands. Dependent DMA traffic is ordered by that queue, but the
        # CPU-side result read below bypasses it, so quiesce first. The
        # tail is a few service cycles and is excluded from the timing.
        env.run()

        out_words = plan.levels[-1][0].spec.output_words
        outputs = plan.output_buffer.read().reshape(plan.n_frames,
                                                    out_words)
        return RunResult(
            dataflow=dataflow.name,
            mode=mode,
            frames=plan.n_frames,
            cycles=cycles,
            clock_mhz=self.soc.clock_mhz,
            dram_accesses=self.soc.memory_map.total_accesses - dram_before,
            ioctl_calls=self.ioctl_calls - ioctl_before,
            outputs=outputs,
            retries=self.retries - retries_before,
            watchdog_timeouts=self.watchdog_timeouts - watchdogs_before,
            software_frames=self.software_frames - software_before,
            degraded=degraded,
        )

    def _degrade(self, plan: ExecutionPlan, dataflow: Dataflow,
                 frames: np.ndarray,
                 dvfs: Optional[Dict[str, int]]) -> ExecutionPlan:
        """Graceful degradation after a p2p stream died permanently.

        The failed streaming run cannot be patched in place (its peers
        hold partial progress), so: cancel every surviving pipeline
        thread, hardware-reset every tile of the plan, quiesce, release
        the aborted plan's buffers, then re-run the whole batch in
        ``pipe`` mode — the failed device (marked in the registry)
        executes in software there. Returns the plan of the re-run,
        whose output buffer holds the results.
        """
        env = self.soc.env
        self.degraded_runs += 1
        if env.metrics is not None:
            env.metrics.degraded_runs.inc()
        self._abort_plan(plan)
        env.run()   # drain aborted threads and in-flight hardware
        self._drain_stale_irqs(plan)
        self.release_plan(plan)
        replan = self.plan(dataflow, len(frames), "pipe",
                           coherence=plan.coherence, dvfs=dvfs)
        replan.input_buffer.write(frames.reshape(-1))
        done = env.process(self._pipe_main(replan),
                           name=f"main:degraded:{dataflow.name}")
        env.run(until=done)
        return replan

    # -- plan teardown ------------------------------------------------------------

    def _abort_plan(self, plan: ExecutionPlan) -> None:
        """Stop every thread and accelerator the plan still occupies.

        Surviving pipeline threads are interrupted (defused, so their
        deaths never crash the event loop); already-dead ones are
        defused in case their failure is still queued. Every tile of
        the plan gets a hardware reset, aborting in-flight kernels and
        flushing socket queues.
        """
        for thread in plan.threads:
            if thread.is_alive:
                thread.interrupt("plan aborted")
            else:
                thread.__sim_defused__ = True  # type: ignore[attr-defined]
        for row in plan.levels:
            for node in row:
                node.device.tile.host_reset()

    def _drain_stale_irqs(self, plan: ExecutionPlan) -> None:
        """Discard queued completion IRQs from the plan's devices."""
        cpu = self.soc.cpu
        for name in plan.device_names:
            while cpu.try_irq(name) is not None:
                pass

    def release_plan(self, plan: ExecutionPlan) -> None:
        """Return every buffer the plan allocated to the allocator.

        Idempotent (``free`` ignores already-freed buffers), so a
        failure path and a finally-style caller can both release.
        """
        for buffer in plan.buffers:
            self.allocator.free(buffer)

    def _cleanup_failed(self, plan: ExecutionPlan, done: Process) -> None:
        """Blocking-path teardown after ``execute`` caught a failure."""
        if done.is_alive:
            done.interrupt("plan aborted")
        self._abort_plan(plan)
        self.soc.env.run()   # drain aborted processes and posted stores
        self._drain_stale_irqs(plan)
        self.release_plan(plan)

    def _quiesce_stores(self):
        """Wait (in-process) until posted stores have retired.

        The blocking ``execute`` path drains the whole schedule before
        reading outputs; a serving loop cannot (other plans are still
        running), so it waits only for the memory map's posted-store
        count to reach zero. ``quiesce_bound`` caps the wait: past the
        bound, stores that never retired (packets lost to injected NoC
        faults) are written off so one dropped packet cannot wedge the
        serving loop.
        """
        env = self.soc.env
        memory_map = self.soc.memory_map
        quiet = memory_map.quiesce_event(env)
        if self.quiesce_bound is None:
            yield quiet
            return
        yield env.any_of([quiet, env.timeout(self.quiesce_bound)])
        if not quiet.triggered:
            memory_map.cancel_quiesce(quiet)
            memory_map.write_off_in_flight()

    def _abort_and_release(self, plan: ExecutionPlan):
        """In-process teardown: abort, quiesce, then free the buffers.

        The quiesce between the abort and the release is load-bearing:
        the plan's posted stores must land (or be written off) before
        its addresses can be handed to the next plan, or a stale store
        could corrupt the successor's buffers.
        """
        self._abort_plan(plan)
        yield from self._quiesce_stores()
        self._drain_stale_irqs(plan)
        self.release_plan(plan)

    def _degrade_in_process(self, plan: ExecutionPlan, dataflow: Dataflow,
                            frames: np.ndarray,
                            dvfs: Optional[Dict[str, int]]):
        """In-process graceful degradation (serving-loop counterpart of
        :meth:`_degrade`, which may not ``env.run`` inside a process).
        """
        env = self.soc.env
        self.degraded_runs += 1
        if env.metrics is not None:
            env.metrics.degraded_runs.inc()
        yield from self._abort_and_release(plan)
        yield env.timeout(self.recovery.reset_cycles)
        replan = self.plan(dataflow, len(frames), "pipe",
                           coherence=plan.coherence, dvfs=dvfs)
        replan.input_buffer.write(frames.reshape(-1))
        # Carry the aborted attempt's accounting so the RunResult
        # reflects the whole request, not just the re-run.
        replan.ioctl_calls = plan.ioctl_calls
        replan.retries = plan.retries
        replan.watchdog_timeouts = plan.watchdog_timeouts
        replan.software_frames = plan.software_frames
        yield from self._pipe_main(replan)
        return replan

    # -- re-entrant entry point (serving layer) -----------------------------------

    def run_process(self, dataflow: Dataflow, frames: np.ndarray,
                    mode: str, coherence=None, coherent=None,
                    dvfs: Optional[Dict[str, int]] = None,
                    release_buffers: bool = True):
        """Re-entrant ``execute``: a generator to run as a sim process.

        ``execute`` drives the event loop itself (``env.run``), so only
        one call can be outstanding — fine for the paper's single-app
        experiments, unusable for serving. ``run_process`` is the same
        pipeline expressed as a process: several instances can be in
        flight concurrently over disjoint tile sets, interleaved by the
        kernel like any other processes. Returns a :class:`RunResult`
        built from the plan's own counters.

        Differences from the blocking path, by necessity:

        - output reads are gated on posted-store quiescence (bounded by
          ``quiesce_bound``) instead of a global schedule drain;
        - ``dram_accesses`` is a global delta over the request's
          lifetime — best-effort attribution when plans overlap (the
          per-tile monitors give exact per-plan numbers);
        - buffers are released on completion (``release_buffers``) so a
          long-lived server does not leak DRAM.
        """
        frames = np.atleast_2d(np.asarray(frames, dtype=np.float64))
        plan = self.plan(dataflow, len(frames), mode,
                         coherence=coherence, coherent=coherent,
                         dvfs=dvfs)
        in_words = plan.levels[0][0].spec.input_words
        if frames.shape[1] != in_words:
            self.release_plan(plan)
            raise ValueError(
                f"input frames have {frames.shape[1]} words; level-0 "
                f"devices expect {in_words}")
        plan.input_buffer.write(frames.reshape(-1))

        env = self.soc.env
        dram_before = self.soc.memory_map.total_accesses
        start = env.now
        mains = {"base": self._base_main, "pipe": self._pipe_main,
                 "p2p": self._p2p_main, "custom": self._custom_main}
        degraded = False
        try:
            yield from mains[mode](plan)
        except NodeFailed:
            if self.recovery is None or not self.recovery.software_fallback:
                yield from self._abort_and_release(plan)
                raise
            plan = yield from self._degrade_in_process(
                plan, dataflow, frames, dvfs)
            degraded = True
        except BaseException:
            # Includes Interrupt (the server cancelling this request):
            # put the tiles and buffers back before propagating.
            yield from self._abort_and_release(plan)
            raise
        cycles = env.now - start
        if env.tracer is not None:
            env.tracer.complete(
                "cpu", "main", f"{mode}:{dataflow.name}", "runtime.run",
                start, env.now, frames=plan.n_frames, degraded=degraded)
        # Posted stores: the final write may still be in flight when
        # the IRQ lands; wait for it to retire before the CPU-side
        # read below (the serving analogue of execute's global drain —
        # the tail is excluded from the timing, as there).
        yield from self._quiesce_stores()
        out_words = plan.levels[-1][0].spec.output_words
        outputs = plan.output_buffer.read().reshape(plan.n_frames,
                                                    out_words)
        result = RunResult(
            dataflow=dataflow.name,
            mode=mode,
            frames=plan.n_frames,
            cycles=cycles,
            clock_mhz=self.soc.clock_mhz,
            dram_accesses=self.soc.memory_map.total_accesses - dram_before,
            ioctl_calls=plan.ioctl_calls,
            outputs=outputs,
            retries=plan.retries,
            watchdog_timeouts=plan.watchdog_timeouts,
            software_frames=plan.software_frames,
            degraded=degraded,
        )
        if release_buffers:
            self.release_plan(plan)
        return result
