"""Contiguous buffer allocation (the ``esp_alloc`` of libesp).

Accelerators DMA into big physically-backed buffers that user space
sees as contiguous (paper [15]); ``esp_alloc`` hands them out and
``esp_cleanup`` releases everything. The allocator also gives software
direct read/write access to buffer contents (the CPU side of Fig. 5's
``init_buffer`` / ``validate_buffer``).

Beyond the paper's one-shot allocate-run-cleanup lifecycle, the
allocator supports per-buffer :meth:`~ContigAllocator.free` (idempotent,
with first-fit reuse of freed space) and scoped :class:`BufferPool`s so
long-lived multi-tenant workloads — the serving layer runs thousands of
plans on one SoC — neither leak nor exhaust the accelerator address
space.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..soc import MemoryMap


class Buffer:
    """One contiguous allocation in the accelerator address space."""

    def __init__(self, memory_map: MemoryMap, offset: int, words: int,
                 label: str = "buf") -> None:
        self.memory_map = memory_map
        self.offset = offset
        self.words = words
        self.label = label
        self.freed = False

    def _check(self, start: int, n_words: int) -> None:
        if self.freed:
            raise RuntimeError(f"buffer {self.label!r} already freed")
        if start < 0 or start + n_words > self.words:
            raise ValueError(
                f"range [{start}, {start + n_words}) outside buffer "
                f"{self.label!r} of {self.words} words")

    def write(self, data: np.ndarray, start: int = 0) -> None:
        """CPU-side store into the buffer."""
        data = np.asarray(data, dtype=np.float64).reshape(-1)
        self._check(start, len(data))
        self.memory_map.write_words(self.offset + start, data)

    def read(self, start: int = 0,
             n_words: Optional[int] = None) -> np.ndarray:
        """CPU-side load from the buffer."""
        n_words = self.words - start if n_words is None else n_words
        self._check(start, n_words)
        return self.memory_map.read_words(self.offset + start, n_words)

    def word_address(self, index: int = 0) -> int:
        """Global word address of element ``index`` (for DMA offsets)."""
        self._check(index, 1)
        return self.offset + index

    def __len__(self) -> int:
        return self.words


class BufferPool:
    """A scoped group of allocations released together.

    Context-manager form guarantees release even when the scope dies
    mid-request (a crashed plan cannot leak buffer space)::

        with allocator.pool() as pool:
            buf = pool.alloc(1024, label="req:in")
            ...                    # any exception still frees buf

    Release is idempotent, so buffers freed early (or adopted into the
    pool after an explicit free) are skipped silently.
    """

    def __init__(self, allocator: "ContigAllocator") -> None:
        self.allocator = allocator
        self.buffers: List[Buffer] = []

    def alloc(self, n_words: int, label: str = "buf") -> Buffer:
        buffer = self.allocator.alloc(n_words, label=label)
        self.buffers.append(buffer)
        return buffer

    def adopt(self, buffer: Buffer) -> Buffer:
        """Track an externally allocated buffer for release with the pool."""
        self.buffers.append(buffer)
        return buffer

    def release(self) -> int:
        """Free every tracked buffer; returns how many were live."""
        freed = 0
        for buffer in self.buffers:
            freed += self.allocator.free(buffer)
        self.buffers.clear()
        return freed

    def __enter__(self) -> "BufferPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class ContigAllocator:
    """First-fit allocator over the SoC's memory space, 64-word aligned.

    Real contig_alloc manages physically scattered chunks behind a
    scatter-gather list; the TLB hides that from accelerators, so a
    linear model preserves every observable behaviour. Freed ranges go
    to a coalescing free list and are reused first-fit; with no frees
    the allocator degenerates to the original bump allocator, so
    address assignment (and therefore every cycle count) of one-shot
    runs is unchanged.
    """

    ALIGN = 64

    def __init__(self, memory_map: MemoryMap, base: int = 0) -> None:
        self.memory_map = memory_map
        self.base = base
        self._cursor = base
        self._live: List[Buffer] = []
        #: Sorted, coalesced (offset, words) ranges available for reuse.
        self._free_blocks: List[Tuple[int, int]] = []

    def alloc(self, n_words: int, label: str = "buf") -> Buffer:
        if n_words < 1:
            raise ValueError(f"n_words must be >= 1, got {n_words}")
        offset = self._from_free_list(n_words)
        if offset is None:
            aligned = (self._cursor + self.ALIGN - 1) \
                // self.ALIGN * self.ALIGN
            if aligned + n_words > self.memory_map.total_words:
                raise MemoryError(
                    f"out of accelerator memory: need {n_words} words at "
                    f"{aligned}, capacity {self.memory_map.total_words}")
            offset = aligned
            self._cursor = aligned + n_words
        buffer = Buffer(self.memory_map, offset, n_words, label=label)
        self._live.append(buffer)
        return buffer

    def _from_free_list(self, n_words: int) -> Optional[int]:
        """First freed block that fits an aligned allocation, split."""
        for index, (start, words) in enumerate(self._free_blocks):
            aligned = (start + self.ALIGN - 1) // self.ALIGN * self.ALIGN
            head = aligned - start
            if head + n_words > words:
                continue
            del self._free_blocks[index]
            if head:
                self._insert_free(start, head)
            tail = words - head - n_words
            if tail:
                self._insert_free(aligned + n_words, tail)
            return aligned
        return None

    def _insert_free(self, offset: int, words: int) -> None:
        """Insert a range into the free list, coalescing neighbours."""
        blocks = self._free_blocks
        lo, hi = 0, len(blocks)
        while lo < hi:
            mid = (lo + hi) // 2
            if blocks[mid][0] < offset:
                lo = mid + 1
            else:
                hi = mid
        blocks.insert(lo, (offset, words))
        # Coalesce with the successor, then the predecessor.
        if lo + 1 < len(blocks) and \
                blocks[lo][0] + blocks[lo][1] == blocks[lo + 1][0]:
            blocks[lo] = (blocks[lo][0],
                          blocks[lo][1] + blocks[lo + 1][1])
            del blocks[lo + 1]
        if lo > 0 and blocks[lo - 1][0] + blocks[lo - 1][1] == blocks[lo][0]:
            blocks[lo - 1] = (blocks[lo - 1][0],
                              blocks[lo - 1][1] + blocks[lo][1])
            del blocks[lo]
        # Retract the bump cursor over the topmost free blocks, so a
        # fully drained allocator returns to its pristine address map.
        # A block is reabsorbed into bump space when nothing live sits
        # above it — this also swallows alignment padding between the
        # block's end and the cursor, which no allocation ever owned.
        while blocks:
            start = blocks[-1][0]
            top_live = max((b.offset + b.words for b in self._live),
                           default=self.base)
            if top_live > start:
                break
            self._cursor = max(self.base, start)
            del blocks[-1]

    def free(self, buffer: Buffer) -> bool:
        """Release one allocation; idempotent.

        Returns True when the buffer was live and is now freed, False
        when it had already been freed (double-free is a no-op, so
        cleanup paths can free unconditionally).
        """
        if buffer.freed:
            return False
        buffer.freed = True
        try:
            self._live.remove(buffer)
        except ValueError:
            # Freed via cleanup() between alloc and free, or foreign.
            return False
        self._insert_free(buffer.offset, buffer.words)
        return True

    def pool(self) -> BufferPool:
        """A scoped allocation group (see :class:`BufferPool`)."""
        return BufferPool(self)

    def cleanup(self) -> None:
        """Free every allocation (the ``esp_cleanup`` call)."""
        for buffer in self._live:
            buffer.freed = True
        self._live.clear()
        self._free_blocks.clear()
        self._cursor = self.base

    @property
    def live_buffers(self) -> int:
        return len(self._live)

    @property
    def words_in_use(self) -> int:
        return sum(b.words for b in self._live)

    @property
    def free_list_words(self) -> int:
        """Words parked on the free list awaiting reuse."""
        return sum(words for _, words in self._free_blocks)
