"""Contiguous buffer allocation (the ``esp_alloc`` of libesp).

Accelerators DMA into big physically-backed buffers that user space
sees as contiguous (paper [15]); ``esp_alloc`` hands them out and
``esp_cleanup`` releases everything. The allocator also gives software
direct read/write access to buffer contents (the CPU side of Fig. 5's
``init_buffer`` / ``validate_buffer``).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..soc import MemoryMap


class Buffer:
    """One contiguous allocation in the accelerator address space."""

    def __init__(self, memory_map: MemoryMap, offset: int, words: int,
                 label: str = "buf") -> None:
        self.memory_map = memory_map
        self.offset = offset
        self.words = words
        self.label = label
        self.freed = False

    def _check(self, start: int, n_words: int) -> None:
        if self.freed:
            raise RuntimeError(f"buffer {self.label!r} already freed")
        if start < 0 or start + n_words > self.words:
            raise ValueError(
                f"range [{start}, {start + n_words}) outside buffer "
                f"{self.label!r} of {self.words} words")

    def write(self, data: np.ndarray, start: int = 0) -> None:
        """CPU-side store into the buffer."""
        data = np.asarray(data, dtype=np.float64).reshape(-1)
        self._check(start, len(data))
        self.memory_map.write_words(self.offset + start, data)

    def read(self, start: int = 0,
             n_words: Optional[int] = None) -> np.ndarray:
        """CPU-side load from the buffer."""
        n_words = self.words - start if n_words is None else n_words
        self._check(start, n_words)
        return self.memory_map.read_words(self.offset + start, n_words)

    def word_address(self, index: int = 0) -> int:
        """Global word address of element ``index`` (for DMA offsets)."""
        self._check(index, 1)
        return self.offset + index

    def __len__(self) -> int:
        return self.words


class ContigAllocator:
    """Bump allocator over the SoC's memory space with 64-word alignment.

    Real contig_alloc manages physically scattered chunks behind a
    scatter-gather list; the TLB hides that from accelerators, so a
    linear model preserves every observable behaviour.
    """

    ALIGN = 64

    def __init__(self, memory_map: MemoryMap, base: int = 0) -> None:
        self.memory_map = memory_map
        self.base = base
        self._cursor = base
        self._live: List[Buffer] = []

    def alloc(self, n_words: int, label: str = "buf") -> Buffer:
        if n_words < 1:
            raise ValueError(f"n_words must be >= 1, got {n_words}")
        aligned = (self._cursor + self.ALIGN - 1) // self.ALIGN * self.ALIGN
        if aligned + n_words > self.memory_map.total_words:
            raise MemoryError(
                f"out of accelerator memory: need {n_words} words at "
                f"{aligned}, capacity {self.memory_map.total_words}")
        buffer = Buffer(self.memory_map, aligned, n_words, label=label)
        self._cursor = aligned + n_words
        self._live.append(buffer)
        return buffer

    def cleanup(self) -> None:
        """Free every allocation (the ``esp_cleanup`` call)."""
        for buffer in self._live:
            buffer.freed = True
        self._live.clear()
        self._cursor = self.base

    @property
    def live_buffers(self) -> int:
        return len(self._live)

    @property
    def words_in_use(self) -> int:
        return sum(b.words for b in self._live)
