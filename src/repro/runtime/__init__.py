"""The ESP4ML software runtime: driver, allocator, dataflow, executor."""

from ..faults import AcceleratorTimeout, NodeFailed, RecoveryPolicy
from .driver import DeviceRegistry, EspDevice
from .alloc import Buffer, BufferPool, ContigAllocator
from .dataflow import (
    COMM_KINDS,
    Dataflow,
    DataflowEdge,
    EXECUTION_MODES,
    chain,
    replicated_stage,
)
from .executor import (
    DataflowExecutor,
    ExecutionPlan,
    NodePlan,
    RunResult,
    RuntimeCosts,
)
from .api import EspRuntime
from .codegen import emit_dataflow_header, emit_user_app

__all__ = [
    "AcceleratorTimeout",
    "Buffer",
    "BufferPool",
    "COMM_KINDS",
    "ContigAllocator",
    "Dataflow",
    "DataflowEdge",
    "DataflowExecutor",
    "DeviceRegistry",
    "EXECUTION_MODES",
    "EspDevice",
    "EspRuntime",
    "ExecutionPlan",
    "NodeFailed",
    "NodePlan",
    "RecoveryPolicy",
    "RunResult",
    "RuntimeCosts",
    "chain",
    "emit_dataflow_header",
    "emit_user_app",
    "replicated_stage",
]
