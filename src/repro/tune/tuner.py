"""Trace-driven auto-tuner for per-accelerator DMA coherence modes.

ESP lets every accelerator pick its own coherence model at run time
(Giri et al., "Accelerator Integration for Open-Source SoC Design");
the right choice depends on footprints and sharing patterns that are
invisible statically. The tuner recovers them from one profiled run:

1. **Profile** — execute the dataflow once, non-coherent, with the
   unified tracer attached. The pass yields per-device DMA footprints
   (words moved per frame and per run), the critical-path share of DMA
   in the end-to-end latency (:func:`repro.trace.analyze_run`) and the
   flit counts on the three coherence planes (idle in this baseline —
   any load there later is pure protocol overhead).
2. **Recommend** — a footprint heuristic proposes a mode per device:
   fully-coherent when a frame fits the tile's private cache (the
   protocol then keeps producer-consumer data on chip), LLC-coherent
   when the run's working set fits the last-level cache, non-coherent
   otherwise (streaming DMA with posted stores is hard to beat when
   every access misses anyway). Two veto rules run first: when DMA is
   off the critical path the protocol can only add latency, and when
   a device shares its pipeline level with siblings *and* its frames
   are not cache-line aligned, boundary lines would ping-pong between
   private caches (false sharing) — both cases pin non-coherent.
3. **Verify** — the candidate assignment and the three uniform
   baselines are measured on fresh, identical runtimes. If any uniform
   beats the candidate, the tuner returns that uniform instead — the
   result is **never worse than the best uniform mode**, by
   construction, because the simulator is deterministic.

Profiling and measuring always build fresh runtimes through the
caller's factory, so arms never share warmed caches or allocator
state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..noc import (COH_FORWARD_PLANE, COH_REQUEST_PLANE,
                   COH_RESPONSE_PLANE)
from ..runtime.api import EspRuntime
from ..runtime.dataflow import Dataflow
from ..soc import CoherenceMode, DEFAULT_PRIVATE_CACHE_WORDS, SoCInstance
from ..trace import analyze_run, attach_tracer

#: The three uniform baselines every tuned assignment must beat.
UNIFORM_MODES: Tuple[CoherenceMode, ...] = (
    CoherenceMode.NON_COHERENT,
    CoherenceMode.LLC_COHERENT,
    CoherenceMode.FULLY_COHERENT,
)

#: A factory returning one freshly built (SoC, runtime) pair. Every
#: profiling or measurement arm calls it once, so arms are independent.
RuntimeFactory = Callable[[], Tuple[SoCInstance, EspRuntime]]


@dataclass
class DeviceProfile:
    """What the profiling run learned about one accelerator."""

    device: str
    frame_words: int            # input + output words per frame
    words_loaded: int           # total DMA words in during the run
    words_stored: int
    private_cache_words: int
    recommended: CoherenceMode
    reason: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "device": self.device,
            "frame_words": self.frame_words,
            "words_loaded": self.words_loaded,
            "words_stored": self.words_stored,
            "private_cache_words": self.private_cache_words,
            "recommended": self.recommended.value,
            "reason": self.reason,
        }


@dataclass
class TuneProfile:
    """The trace evidence one autotune call is based on."""

    cycles: int                 # baseline (non-coherent) run latency
    dram_accesses: int
    dma_fraction: float         # critical-path share attributed to DMA
    llc_words: int              # largest LLC on any memory tile
    coh_plane_flits: Dict[str, int] = field(default_factory=dict)
    devices: List[DeviceProfile] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "cycles": self.cycles,
            "dram_accesses": self.dram_accesses,
            "dma_fraction": round(self.dma_fraction, 4),
            "llc_words": self.llc_words,
            "coh_plane_flits": dict(self.coh_plane_flits),
            "devices": [d.as_dict() for d in self.devices],
        }


@dataclass
class TuneResult:
    """An autotune verdict: the assignment plus its evidence."""

    assignment: Dict[str, CoherenceMode]   # what to run with
    candidate: Dict[str, CoherenceMode]    # the heuristic's proposal
    chosen: str                 # "tuned" or a uniform mode's value
    measured: Dict[str, int]    # arm label -> cycles
    profile: TuneProfile

    @property
    def cycles(self) -> int:
        return self.measured[self.chosen]

    @property
    def best_uniform_cycles(self) -> int:
        return min(self.measured[mode.value] for mode in UNIFORM_MODES
                   if mode.value in self.measured)

    def as_dict(self) -> Dict[str, object]:
        return {
            "assignment": {d: m.value
                           for d, m in self.assignment.items()},
            "candidate": {d: m.value for d, m in self.candidate.items()},
            "chosen": self.chosen,
            "measured": dict(self.measured),
            "cycles": self.cycles,
            "best_uniform_cycles": self.best_uniform_cycles,
            "profile": self.profile.as_dict(),
        }


def profile_dataflow(build_runtime: RuntimeFactory, dataflow: Dataflow,
                     frames: np.ndarray,
                     mode: str = "pipe") -> TuneProfile:
    """Run the dataflow once (non-coherent) and gather the evidence."""
    soc, runtime = build_runtime()
    tracer = attach_tracer(soc)
    result = runtime.esp_run(dataflow, frames, mode=mode)
    report = analyze_run(tracer)
    llc_words = max((tile.llc.capacity_words
                     for tile in soc.memory_map.tiles
                     if tile.llc is not None), default=0)
    line_words = max((tile.llc.line_words
                      for tile in soc.memory_map.tiles
                      if tile.llc is not None), default=16)
    plane_flits = soc.mesh.plane_flits()
    coh_flits = {plane: plane_flits.get(plane, 0)
                 for plane in (COH_REQUEST_PLANE, COH_FORWARD_PLANE,
                               COH_RESPONSE_PLANE)}
    siblings = {name: len(level)
                for level in dataflow.levels() for name in level}
    dma_fraction = report.fraction("dma")
    devices = []
    for name in dataflow.devices:
        tile = soc.accelerator(name)
        spec = tile.spec
        frame_words = spec.input_words + spec.output_words
        misaligned = bool(spec.input_words % line_words
                          or spec.output_words % line_words)
        capacity = tile.dma.private_cache_words \
            or DEFAULT_PRIVATE_CACHE_WORDS
        recommended, reason = _recommend(
            frame_words, tile.dma.words_loaded + tile.dma.words_stored,
            capacity, llc_words, dma_fraction=dma_fraction,
            siblings=siblings.get(name, 1), misaligned=misaligned)
        devices.append(DeviceProfile(
            device=name, frame_words=frame_words,
            words_loaded=tile.dma.words_loaded,
            words_stored=tile.dma.words_stored,
            private_cache_words=capacity,
            recommended=recommended, reason=reason))
    return TuneProfile(cycles=result.cycles,
                       dram_accesses=result.dram_accesses,
                       dma_fraction=dma_fraction,
                       llc_words=llc_words,
                       coh_plane_flits=coh_flits,
                       devices=devices)


def _recommend(frame_words: int, total_words: int,
               private_cache_words: int, llc_words: int, *,
               dma_fraction: float = 1.0, siblings: int = 1,
               misaligned: bool = False) -> Tuple[CoherenceMode, str]:
    """The footprint heuristic behind one device's proposed mode."""
    if llc_words == 0:
        return (CoherenceMode.NON_COHERENT,
                "no memory tile hosts an LLC; cached modes would "
                "downgrade anyway")
    if dma_fraction < 0.05:
        return (CoherenceMode.NON_COHERENT,
                f"DMA is {dma_fraction:.1%} of the critical path; "
                f"coherence protocol latency cannot pay for itself")
    if siblings > 1 and misaligned:
        return (CoherenceMode.NON_COHERENT,
                f"{siblings} devices share the level and frames are "
                f"not line-aligned: boundary lines would ping-pong "
                f"between private caches (false sharing)")
    if frame_words <= private_cache_words:
        return (CoherenceMode.FULLY_COHERENT,
                f"a frame ({frame_words}w) fits the private cache "
                f"({private_cache_words}w); the protocol keeps "
                f"producer-consumer lines on chip")
    if total_words <= llc_words:
        return (CoherenceMode.LLC_COHERENT,
                f"the run's footprint ({total_words}w) fits the LLC "
                f"({llc_words}w)")
    return (CoherenceMode.NON_COHERENT,
            f"footprint ({total_words}w) exceeds the LLC "
            f"({llc_words}w); streaming DMA avoids thrash")


def _measure(build_runtime: RuntimeFactory, dataflow: Dataflow,
             frames: np.ndarray, mode: str, coherence) -> int:
    """One measurement arm on a fresh runtime; returns run cycles."""
    _, runtime = build_runtime()
    return runtime.esp_run(dataflow, frames, mode=mode,
                           coherence=coherence).cycles


def autotune(build_runtime: RuntimeFactory, dataflow: Dataflow,
             frames: np.ndarray, mode: str = "pipe",
             profile: Optional[TuneProfile] = None) -> TuneResult:
    """Profile, propose, verify: a never-worse coherence assignment.

    Returns the heuristic's per-device assignment when it measures at
    least as fast as every uniform baseline; otherwise the best
    uniform. Pass a precomputed ``profile`` to skip the profiling run
    (e.g. when sweeping several dataflows over one profile).
    """
    if profile is None:
        profile = profile_dataflow(build_runtime, dataflow, frames,
                                   mode=mode)
    candidate = {d.device: d.recommended for d in profile.devices
                 if d.recommended is not CoherenceMode.NON_COHERENT}
    measured: Dict[str, int] = {}
    for uniform in UNIFORM_MODES:
        measured[uniform.value] = _measure(
            build_runtime, dataflow, frames, mode,
            {name: uniform for name in dataflow.devices}
            if uniform is not CoherenceMode.NON_COHERENT else None)
    measured["tuned"] = _measure(build_runtime, dataflow, frames, mode,
                                 candidate or None)
    best_uniform = min(UNIFORM_MODES,
                       key=lambda m: measured[m.value])
    if measured["tuned"] <= measured[best_uniform.value]:
        chosen = "tuned"
        assignment = candidate
    else:
        # Verified fallback: the heuristic lost, return the measured
        # winner so the tuned assignment is never worse than the best
        # uniform mode.
        chosen = best_uniform.value
        assignment = {} if best_uniform is CoherenceMode.NON_COHERENT \
            else {name: best_uniform for name in dataflow.devices}
    return TuneResult(assignment=assignment, candidate=candidate,
                      chosen=chosen, measured=measured, profile=profile)
