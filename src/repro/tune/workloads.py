"""Ablation workloads for the coherence auto-tuner.

Three small, deterministic workloads whose best coherence mode
differs, so the tuner (and the ``bench_coherence`` benchmark gating
CI) exercises every branch of the decision:

- ``fc-streaming`` — one wide accelerator pushing frames far beyond
  every cache. Fully-coherent wins here: full-line stores complete at
  ownership-grant latency (no data flits at store time — the eviction
  writebacks overlap the next compute), and the private-cache path
  never walks the DMA TLB. The footprint heuristic proposes
  non-coherent for this shape, so the workload exercises the measured
  fallback in the *other* direction: the verify pass promotes the
  faster uniform mode.
- ``llc-resident`` — frames larger than the accelerators' (shrunken)
  private caches, but a run footprint that fits a roomy LLC:
  LLC-coherent DMA wins, and the heuristic proposes exactly that.
- ``false-sharing`` — two same-level accelerators whose frames are
  not cache-line aligned, so the buffer lines at frame boundaries
  ping-pong between the two private caches (invalidate, recall,
  re-fetch — every round trip through the directory). Non-coherent
  streaming sidesteps the protocol entirely and wins; the tuner's
  misalignment veto predicts this statically.

Each workload builds its SoC fresh per measurement arm (the factory
contract of :mod:`repro.tune.tuner`), so arms never share state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..accelerators.base import AcceleratorSpec
from ..runtime.api import EspRuntime
from ..runtime.dataflow import Dataflow, chain
from ..soc import SoCConfig, SoCInstance, build_soc


@dataclass(frozen=True)
class Workload:
    """One ablation point: a SoC factory plus the batch to run."""

    name: str
    description: str
    mode: str
    dataflow: Dataflow
    frames: np.ndarray
    build: Callable[[], Tuple[SoCInstance, EspRuntime]]


def _soc(llc_words: int, specs, mem_words: int = 1 << 19,
         private_cache_words: Optional[int] = None):
    config = SoCConfig(cols=4, rows=2)
    config.add_cpu((0, 0))
    config.add_memory((1, 0), size_words=mem_words,
                      llc_words=llc_words)
    coords = [(2, 0), (3, 0), (2, 1), (3, 1)]
    for coord, (name, spec) in zip(coords, specs):
        config.add_accelerator(coord, name, spec,
                               private_cache_words=private_cache_words)
    soc = build_soc(config)
    return soc, EspRuntime(soc)


def _frames(n_frames: int, words: int) -> np.ndarray:
    return (np.arange(n_frames * words, dtype=np.float64)
            .reshape(n_frames, words) % 97.0)


def _spec(name: str, words: int, latency: int) -> AcceleratorSpec:
    return AcceleratorSpec(name=name, input_words=words,
                           output_words=words,
                           compute=lambda x: x * 0.5 + 1.0,
                           latency_cycles=latency,
                           interval_cycles=max(1, latency // 4))


def fc_streaming() -> Workload:
    words = 1024
    spec = _spec("wide", words, latency=200)
    return Workload(
        name="fc-streaming",
        description="wide frames through a tiny LLC: upgrade stores "
                    "and TLB-free loads let fully-coherent win",
        mode="pipe",
        dataflow=chain("fc-streaming", ["pump"]),
        frames=_frames(24, words),
        build=lambda: _soc(llc_words=2048,
                           specs=[("pump", _spec("wide", words, 200))],
                           private_cache_words=256))


def llc_resident() -> Workload:
    words = 512
    spec = _spec("mid", words, latency=120)
    return Workload(
        name="llc-resident",
        description="frames exceed the (shrunken) private caches but "
                    "the run fits the LLC",
        mode="pipe",
        dataflow=chain("llc-resident", ["front", "back"]),
        frames=_frames(8, words),
        build=lambda: _soc(llc_words=1 << 15,
                           specs=[("front", spec), ("back", spec)],
                           private_cache_words=128))


def false_sharing() -> Workload:
    words = 200   # not a multiple of the 16-word line: frames share lines
    spec = _spec("ragged", words, latency=60)
    return Workload(
        name="false-sharing",
        description="two siblings with line-misaligned frames: "
                    "boundary lines ping-pong, non-coherent wins",
        mode="pipe",
        dataflow=Dataflow(name="false-sharing",
                          devices=["left", "right"]),
        frames=_frames(16, words),
        build=lambda: _soc(llc_words=2048,
                           specs=[("left", spec), ("right", spec)],
                           private_cache_words=1024))


def ablation_workloads() -> List[Workload]:
    """The suite the benchmark and the ``tune`` CLI sweep."""
    return [fc_streaming(), llc_resident(), false_sharing()]
