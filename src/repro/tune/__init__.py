"""Coherence auto-tuning: profile a dataflow, assign per-device modes.

See :mod:`repro.tune.tuner` for the profile -> recommend -> verify
pipeline and :mod:`repro.tune.workloads` for the ablation suite the
benchmark and the ``python -m repro tune`` command sweep.
"""

from .tuner import (
    DeviceProfile,
    TuneProfile,
    TuneResult,
    UNIFORM_MODES,
    autotune,
    profile_dataflow,
)
from .workloads import Workload, ablation_workloads

__all__ = [
    "DeviceProfile",
    "TuneProfile",
    "TuneResult",
    "UNIFORM_MODES",
    "Workload",
    "ablation_workloads",
    "autotune",
    "profile_dataflow",
]
