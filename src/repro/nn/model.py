"""Sequential model container (Keras substitute)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .layers import Dense, Layer, inference_layers


class Sequential:
    """A linear stack of layers with forward/backward passes.

    Mirrors the small slice of the Keras API that the ESP4ML flow needs:
    build, predict, summary, and (de)serialization of topology/weights.
    """

    def __init__(self, layers: Optional[List[Layer]] = None,
                 name: str = "model") -> None:
        self.name = name
        self.layers: List[Layer] = list(layers or [])
        self.input_dim: Optional[int] = None
        self.output_dim: Optional[int] = None

    def add(self, layer: Layer) -> None:
        if self.input_dim is not None:
            raise RuntimeError("cannot add layers after build()")
        self.layers.append(layer)

    def build(self, input_dim: int, seed: int = 0) -> "Sequential":
        """Allocate all parameters for a given input dimension."""
        if input_dim < 1:
            raise ValueError(f"input_dim must be >= 1, got {input_dim}")
        rng = np.random.default_rng(seed)
        dim = input_dim
        names = set()
        for index, layer in enumerate(self.layers):
            if layer.name in names:
                layer.name = f"{layer.name}_{index}"
            names.add(layer.name)
            dim = layer.build(dim, rng)
        self.input_dim = input_dim
        self.output_dim = dim
        return self

    def _require_built(self) -> None:
        if self.input_dim is None:
            raise RuntimeError(f"model {self.name!r} is not built")

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference pass (training-only layers are identity)."""
        return self.forward(x, training=False)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def trainable(self) -> Iterator[Tuple[Layer, str, np.ndarray, np.ndarray]]:
        """Yields (layer, param_name, param, grad) for every parameter."""
        for layer in self.layers:
            if not layer.has_weights:
                continue
            grads = layer.grads()
            for key, param in layer.params().items():
                yield layer, key, param, grads[key]

    def dense_layers(self) -> List[Dense]:
        """The Dense layers, in order (what HLS4ML compiles)."""
        return [l for l in inference_layers(self.layers)
                if isinstance(l, Dense)]

    @property
    def topology(self) -> List[int]:
        """Layer sizes as the paper quotes them, e.g. 1024x256x...x10."""
        self._require_built()
        sizes = [self.input_dim]
        sizes.extend(l.units for l in self.dense_layers())
        return sizes

    @property
    def n_parameters(self) -> int:
        self._require_built()
        return sum(p.size for layer in self.layers
                   for p in layer.params().values())

    def summary(self) -> str:
        self._require_built()
        lines = [f"Model: {self.name}",
                 f"{'Layer':<24}{'Output dim':<12}{'Params':<10}"]
        dim = self.input_dim
        for layer in self.layers:
            if isinstance(layer, Dense):
                dim = layer.units
            params = sum(p.size for p in layer.params().values())
            lines.append(f"{layer.name:<24}{dim:<12}{params:<10}")
        lines.append(f"Total params: {self.n_parameters}")
        return "\n".join(lines)

    def get_weights(self) -> Dict[str, np.ndarray]:
        """Flat name->array mapping (HDF5-file substitute)."""
        out = {}
        for layer in self.layers:
            for key, param in layer.params().items():
                out[f"{layer.name}/{key}"] = param
        return out

    def set_weights(self, weights: Dict[str, np.ndarray]) -> None:
        for layer in self.layers:
            for key in layer.params():
                name = f"{layer.name}/{key}"
                if name not in weights:
                    raise KeyError(f"missing weight {name!r}")
                value = np.asarray(weights[name], dtype=np.float64)
                current = layer.params()[key]
                if value.shape != current.shape:
                    raise ValueError(
                        f"shape mismatch for {name!r}: "
                        f"{value.shape} vs {current.shape}")
                current[...] = value

    def config(self) -> Dict:
        """Topology description (the model.json of the Keras flow)."""
        self._require_built()
        return {
            "name": self.name,
            "input_dim": self.input_dim,
            "layers": [layer.config() for layer in self.layers],
        }
