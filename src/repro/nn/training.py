"""Losses, optimizers and the training loop (Keras substitute)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .model import Sequential


# ---------------------------------------------------------------------------
# Losses: each returns (loss_value, gradient_wrt_model_output)
# ---------------------------------------------------------------------------

def categorical_crossentropy(probs: np.ndarray,
                             onehot: np.ndarray) -> Tuple[float, np.ndarray]:
    """Cross-entropy against one-hot targets, fused-softmax gradient."""
    batch = probs.shape[0]
    eps = 1e-12
    loss = float(-np.sum(onehot * np.log(probs + eps)) / batch)
    grad = (probs - onehot) / batch
    return loss, grad


def mean_squared_error(pred: np.ndarray,
                       target: np.ndarray) -> Tuple[float, np.ndarray]:
    diff = pred - target
    loss = float(np.mean(diff * diff))
    grad = 2.0 * diff / diff.size
    return loss, grad


LOSSES: Dict[str, Callable] = {
    "categorical_crossentropy": categorical_crossentropy,
    "mse": mean_squared_error,
}


# ---------------------------------------------------------------------------
# Optimizers
# ---------------------------------------------------------------------------

class Optimizer:
    def step(self, model: Sequential) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    def __init__(self, lr: float = 0.01, momentum: float = 0.0) -> None:
        self.lr = lr
        self.momentum = momentum
        self._velocity: Dict[int, Dict[str, np.ndarray]] = {}

    def step(self, model: Sequential) -> None:
        for layer, key, param, grad in model.trainable():
            slot = self._velocity.setdefault(id(layer), {})
            vel = slot.get(key)
            if vel is None:
                vel = np.zeros_like(param)
                slot[key] = vel
            vel *= self.momentum
            vel -= self.lr * grad
            param += vel


class Adam(Optimizer):
    def __init__(self, lr: float = 0.001, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8) -> None:
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._t = 0
        self._m: Dict[int, Dict[str, np.ndarray]] = {}
        self._v: Dict[int, Dict[str, np.ndarray]] = {}

    def step(self, model: Sequential) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for layer, key, param, grad in model.trainable():
            m_slot = self._m.setdefault(id(layer), {})
            v_slot = self._v.setdefault(id(layer), {})
            m = m_slot.setdefault(key, np.zeros_like(param))
            v = v_slot.setdefault(key, np.zeros_like(param))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


# ---------------------------------------------------------------------------
# Training loop
# ---------------------------------------------------------------------------

@dataclass
class History:
    """Per-epoch training record (Keras History substitute)."""

    loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    val_metric: List[float] = field(default_factory=list)


def iterate_minibatches(x: np.ndarray, y: np.ndarray, batch_size: int,
                        rng: np.random.Generator):
    """Shuffled mini-batches over a dataset."""
    order = rng.permutation(len(x))
    for start in range(0, len(x), batch_size):
        idx = order[start:start + batch_size]
        yield x[idx], y[idx]


def fit(model: Sequential, x: np.ndarray, y: np.ndarray, *,
        loss: str = "categorical_crossentropy",
        optimizer: Optional[Optimizer] = None,
        epochs: int = 10, batch_size: int = 64, seed: int = 0,
        validation: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        metric: Optional[Callable[[np.ndarray, np.ndarray], float]] = None,
        verbose: bool = False) -> History:
    """Train ``model``; returns the per-epoch :class:`History`."""
    if loss not in LOSSES:
        raise ValueError(f"unknown loss {loss!r}; options: {sorted(LOSSES)}")
    loss_fn = LOSSES[loss]
    optimizer = optimizer or Adam()
    rng = np.random.default_rng(seed)
    history = History()

    for epoch in range(epochs):
        epoch_losses = []
        for xb, yb in iterate_minibatches(x, y, batch_size, rng):
            pred = model.forward(xb, training=True)
            value, grad = loss_fn(pred, yb)
            model.backward(grad)
            optimizer.step(model)
            epoch_losses.append(value)
        history.loss.append(float(np.mean(epoch_losses)))

        if validation is not None:
            xv, yv = validation
            pred = model.predict(xv)
            val_value, _ = loss_fn(pred, yv)
            history.val_loss.append(val_value)
            if metric is not None:
                history.val_metric.append(metric(pred, yv))
        if verbose:
            parts = [f"epoch {epoch + 1}/{epochs}",
                     f"loss={history.loss[-1]:.4f}"]
            if history.val_loss:
                parts.append(f"val_loss={history.val_loss[-1]:.4f}")
            if history.val_metric:
                parts.append(f"val_metric={history.val_metric[-1]:.4f}")
            print("  ".join(parts))
    return history
