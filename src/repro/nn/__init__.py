"""Minimal NumPy neural-network library (Keras substitute).

Provides the layer set, training loop and JSON+NPZ serialization that
the ESP4ML flow needs to produce the paper's two models: the SVHN MLP
classifier (1024x256x128x64x32x10) and the denoising autoencoder
(1024x256x128x1024).
"""

from .layers import (
    BatchNormalization,
    Dense,
    Dropout,
    GaussianNoise,
    Layer,
    ReLU,
    Sigmoid,
    Softmax,
    inference_layers,
    layer_from_config,
)
from .model import Sequential
from .training import (
    Adam,
    History,
    SGD,
    categorical_crossentropy,
    fit,
    iterate_minibatches,
    mean_squared_error,
)
from .serialize import (
    load_model,
    model_artifacts,
    model_from_json,
    model_to_json,
    save_model,
)
from .metrics import accuracy, confusion_matrix, psnr, reconstruction_error

__all__ = [
    "Adam",
    "BatchNormalization",
    "Dense",
    "Dropout",
    "GaussianNoise",
    "History",
    "Layer",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Softmax",
    "accuracy",
    "categorical_crossentropy",
    "confusion_matrix",
    "fit",
    "inference_layers",
    "iterate_minibatches",
    "layer_from_config",
    "load_model",
    "mean_squared_error",
    "model_artifacts",
    "model_from_json",
    "model_to_json",
    "psnr",
    "reconstruction_error",
    "save_model",
]
