"""Model (de)serialization: JSON topology + NPZ weights.

HLS4ML consumes "a JSON file for the network topology and a HDF5 file
for the model weights and biases" (paper Sec. II). We mirror that split
exactly, with NPZ standing in for HDF5 (same content: named arrays).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Tuple, Union

import numpy as np

from .layers import layer_from_config
from .model import Sequential

PathLike = Union[str, Path]


def model_to_json(model: Sequential) -> str:
    """Serialize the model topology to a JSON string."""
    return json.dumps(model.config(), indent=2)


def model_from_json(text: str) -> Sequential:
    """Rebuild an (unweighted but built) model from topology JSON."""
    config = json.loads(text)
    layers = [layer_from_config(c) for c in config["layers"]]
    model = Sequential(layers, name=config.get("name", "model"))
    model.build(config["input_dim"])
    return model


def save_model(model: Sequential, json_path: PathLike,
               weights_path: PathLike) -> None:
    """Write ``model.json`` + ``model.npz`` (the HDF5 stand-in)."""
    Path(json_path).write_text(model_to_json(model))
    weights = {k.replace("/", "__"): v for k, v in model.get_weights().items()}
    np.savez(weights_path, **weights)


def load_model(json_path: PathLike,
               weights_path: PathLike) -> Sequential:
    """Load a model from topology JSON + NPZ weights."""
    model = model_from_json(Path(json_path).read_text())
    with np.load(weights_path) as data:
        weights = {k.replace("__", "/"): data[k] for k in data.files}
    model.set_weights(weights)
    return model


def model_artifacts(model: Sequential) -> Tuple[str, Dict[str, np.ndarray]]:
    """In-memory (json_text, weights) pair, the HLS4ML compiler input."""
    return model_to_json(model), model.get_weights()
