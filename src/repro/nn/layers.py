"""Neural-network layers (Keras substitute).

The ESP4ML flow consumes models "developed with KERAS TensorFlow"
(paper Sec. I, contribution 5). This module provides the minimal layer
set the paper's two models need — Dense, ReLU, Softmax, Sigmoid,
Dropout, GaussianNoise — with forward and backward passes over NumPy,
so models can be trained offline and handed to the HLS4ML-substitute
compiler as topology + weights.

All layers operate on batches shaped ``(batch, features)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np


class Layer:
    """Base layer: forward/backward plus parameter bookkeeping."""

    #: set by subclasses that carry trainable parameters
    has_weights = False

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or f"{type(self).__name__.lower()}"
        self.built = False

    def build(self, input_dim: int, rng: np.random.Generator) -> int:
        """Allocate parameters; returns the layer's output dimension."""
        self.built = True
        return input_dim

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Propagate ``dL/dout`` to ``dL/din``; stash parameter grads."""
        raise NotImplementedError

    def params(self) -> Dict[str, np.ndarray]:
        return {}

    def grads(self) -> Dict[str, np.ndarray]:
        return {}

    def config(self) -> Dict:
        """JSON-serializable layer description (Keras model.json style)."""
        return {"class_name": type(self).__name__, "name": self.name}


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    has_weights = True

    def __init__(self, units: int, name: Optional[str] = None) -> None:
        super().__init__(name)
        if units < 1:
            raise ValueError(f"units must be >= 1, got {units}")
        self.units = units
        self.input_dim: Optional[int] = None
        self.weights: Optional[np.ndarray] = None  # (input_dim, units)
        self.bias: Optional[np.ndarray] = None
        self._x: Optional[np.ndarray] = None
        self._dw: Optional[np.ndarray] = None
        self._db: Optional[np.ndarray] = None

    def build(self, input_dim: int, rng: np.random.Generator) -> int:
        self.input_dim = input_dim
        # Glorot-uniform, the Keras Dense default.
        limit = np.sqrt(6.0 / (input_dim + self.units))
        self.weights = rng.uniform(-limit, limit, size=(input_dim, self.units))
        self.bias = np.zeros(self.units)
        self.built = True
        return self.units

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x if training else None
        return x @ self.weights + self.bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward() before forward(training=True)")
        self._dw = self._x.T @ grad
        self._db = grad.sum(axis=0)
        return grad @ self.weights.T

    def params(self) -> Dict[str, np.ndarray]:
        return {"weights": self.weights, "bias": self.bias}

    def grads(self) -> Dict[str, np.ndarray]:
        return {"weights": self._dw, "bias": self._db}

    def config(self) -> Dict:
        return {"class_name": "Dense", "name": self.name,
                "units": self.units, "input_dim": self.input_dim}

    @property
    def n_weights(self) -> int:
        """Multiplier count seen by HLS4ML (weights, excluding biases)."""
        return int(self.input_dim * self.units)


class ReLU(Layer):
    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask


class Sigmoid(Layer):
    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        y = 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))
        if training:
            self._y = y
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._y * (1.0 - self._y)


class Softmax(Layer):
    """Softmax output; pairs with categorical cross-entropy.

    The backward pass assumes the loss is cross-entropy and the incoming
    gradient is ``(probs - onehot) / batch`` computed by the loss, so it
    passes gradients through unchanged (the standard fused form).
    """

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        expx = np.exp(shifted)
        return expx / expx.sum(axis=-1, keepdims=True)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad


class BatchNormalization(Layer):
    """Batch normalization (Keras semantics).

    Training normalizes with batch statistics and maintains moving
    averages; inference uses the moving statistics. HLS4ML folds an
    inference-time batch norm into the preceding Dense layer's weights
    (the ``fuse_batch_norm`` optimizer pass), which
    :mod:`repro.hls4ml_flow.compiler` reproduces.
    """

    has_weights = True

    def __init__(self, momentum: float = 0.99, eps: float = 1e-3,
                 name: Optional[str] = None) -> None:
        super().__init__(name)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if eps <= 0:
            raise ValueError(f"eps must be > 0, got {eps}")
        self.momentum = momentum
        self.eps = eps
        self.gamma: Optional[np.ndarray] = None
        self.beta: Optional[np.ndarray] = None
        self.moving_mean: Optional[np.ndarray] = None
        self.moving_var: Optional[np.ndarray] = None
        self._cache = None
        self._dgamma: Optional[np.ndarray] = None
        self._dbeta: Optional[np.ndarray] = None

    def build(self, input_dim: int, rng: np.random.Generator) -> int:
        self.gamma = np.ones(input_dim)
        self.beta = np.zeros(input_dim)
        self.moving_mean = np.zeros(input_dim)
        self.moving_var = np.ones(input_dim)
        self.built = True
        return input_dim

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.moving_mean *= self.momentum
            self.moving_mean += (1 - self.momentum) * mean
            self.moving_var *= self.momentum
            self.moving_var += (1 - self.momentum) * var
        else:
            mean, var = self.moving_mean, self.moving_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        if training:
            self._cache = (x_hat, inv_std)
        return self.gamma * x_hat + self.beta

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() before forward(training=True)")
        x_hat, inv_std = self._cache
        batch = grad.shape[0]
        self._dgamma = (grad * x_hat).sum(axis=0)
        self._dbeta = grad.sum(axis=0)
        # Standard batch-norm input gradient.
        dx_hat = grad * self.gamma
        return inv_std * (dx_hat - dx_hat.mean(axis=0)
                          - x_hat * (dx_hat * x_hat).mean(axis=0))

    def params(self) -> Dict[str, np.ndarray]:
        return {"gamma": self.gamma, "beta": self.beta,
                "moving_mean": self.moving_mean,
                "moving_var": self.moving_var}

    def grads(self) -> Dict[str, np.ndarray]:
        # Moving statistics are not trained: zero gradients keep the
        # optimizers' parameter walk a no-op on them.
        return {"gamma": self._dgamma, "beta": self._dbeta,
                "moving_mean": np.zeros_like(self.moving_mean),
                "moving_var": np.zeros_like(self.moving_var)}

    def config(self) -> Dict:
        return {"class_name": "BatchNormalization", "name": self.name,
                "momentum": self.momentum, "eps": self.eps}

    def fold_constants(self):
        """(scale, shift) so that ``bn(x) = scale * x + shift``."""
        scale = self.gamma / np.sqrt(self.moving_var + self.eps)
        shift = self.beta - scale * self.moving_mean
        return scale, shift


class Dropout(Layer):
    """Inverted dropout; active only while training.

    The paper uses "dropout layers with a 0.2 rate to prevent
    overfitting" in the SVHN classifier (Sec. VI).
    """

    def __init__(self, rate: float, name: Optional[str] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng or np.random.default_rng(0)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask

    def config(self) -> Dict:
        return {"class_name": "Dropout", "name": self.name, "rate": self.rate}


class GaussianNoise(Layer):
    """Additive Gaussian noise during training (denoiser regularizer)."""

    def __init__(self, stddev: float, name: Optional[str] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(name)
        if stddev < 0:
            raise ValueError(f"stddev must be >= 0, got {stddev}")
        self.stddev = stddev
        self._rng = rng or np.random.default_rng(0)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.stddev == 0.0:
            return x
        return x + self._rng.normal(0.0, self.stddev, size=x.shape)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad

    def config(self) -> Dict:
        return {"class_name": "GaussianNoise", "name": self.name,
                "stddev": self.stddev}


_LAYER_CLASSES = {
    "BatchNormalization": BatchNormalization,
    "Dense": Dense,
    "ReLU": ReLU,
    "Sigmoid": Sigmoid,
    "Softmax": Softmax,
    "Dropout": Dropout,
    "GaussianNoise": GaussianNoise,
}


def layer_from_config(config: Dict) -> Layer:
    """Rebuild a layer from its :meth:`Layer.config` dict."""
    class_name = config["class_name"]
    if class_name not in _LAYER_CLASSES:
        raise ValueError(f"unknown layer class {class_name!r}")
    cls = _LAYER_CLASSES[class_name]
    kwargs = {k: v for k, v in config.items()
              if k not in ("class_name", "input_dim")}
    return cls(**kwargs)


def inference_layers(layers: List[Layer]) -> List[Layer]:
    """Layers that exist at inference time (drops training-only ones).

    HLS4ML ignores Dropout and GaussianNoise when generating firmware;
    the same pruning happens here before compilation.
    """
    return [l for l in layers if not isinstance(l, (Dropout, GaussianNoise))]
