"""Evaluation metrics quoted in the paper's Sec. VI."""

from __future__ import annotations

import numpy as np


def accuracy(probs: np.ndarray, onehot: np.ndarray) -> float:
    """Top-1 classification accuracy ("trained model accuracy is 92%")."""
    pred = np.argmax(np.atleast_2d(probs), axis=-1)
    truth = np.argmax(np.atleast_2d(onehot), axis=-1)
    return float(np.mean(pred == truth))


def reconstruction_error(pred: np.ndarray, target: np.ndarray) -> float:
    """Relative L2 reconstruction error ("3.1% reconstruction error").

    Defined as ``||pred - target|| / ||target||`` averaged over the
    batch, which is the conventional autoencoder figure of merit.
    """
    pred = np.atleast_2d(pred)
    target = np.atleast_2d(target)
    num = np.linalg.norm(pred - target, axis=-1)
    den = np.linalg.norm(target, axis=-1)
    den = np.where(den == 0.0, 1.0, den)
    return float(np.mean(num / den))


def psnr(pred: np.ndarray, target: np.ndarray, peak: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB (extra denoising metric)."""
    mse = float(np.mean((np.asarray(pred) - np.asarray(target)) ** 2))
    if mse == 0.0:
        return float("inf")
    return 10.0 * np.log10(peak * peak / mse)


def confusion_matrix(probs: np.ndarray, onehot: np.ndarray,
                     n_classes: int) -> np.ndarray:
    """Counts[c_true, c_pred] over a batch."""
    pred = np.argmax(np.atleast_2d(probs), axis=-1)
    truth = np.argmax(np.atleast_2d(onehot), axis=-1)
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (truth, pred), 1)
    return matrix
