"""Fixed-point number formats in the style of Vivado HLS ``ap_fixed<W,I>``.

HLS4ML implements neural-network inference with fixed-point arithmetic;
the precision (e.g. ``ap_fixed<16,6>``) is part of the accelerator
configuration. This module provides bit-accurate quantization and the
value-range bookkeeping needed by the HLS resource estimator.

Conventions follow Vivado HLS: ``width`` is the total number of bits,
``integer_bits`` counts the bits left of the binary point *including*
the sign bit for signed formats.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

VALID_ROUNDING = ("truncate", "nearest")
VALID_OVERFLOW = ("saturate", "wrap")


@dataclass(frozen=True)
class FixedFormat:
    """An ``ap_fixed``-style format: Q(integer_bits).(fraction_bits).

    Attributes:
        width: total bit width W.
        integer_bits: bits left of the binary point I (sign included).
        signed: two's-complement when True, unsigned otherwise.
        rounding: "truncate" (HLS default ``AP_TRN``) or "nearest"
            (``AP_RND``).
        overflow: "saturate" (``AP_SAT``) or "wrap" (``AP_WRAP``,
            the HLS default).
    """

    width: int
    integer_bits: int
    signed: bool = True
    rounding: str = "truncate"
    overflow: str = "saturate"

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")
        if self.width > 64:
            raise ValueError(f"width must be <= 64, got {self.width}")
        if self.integer_bits > self.width:
            raise ValueError(
                f"integer_bits ({self.integer_bits}) exceeds width "
                f"({self.width})")
        if self.signed and self.integer_bits < 1:
            raise ValueError("signed formats need integer_bits >= 1 "
                             "for the sign bit")
        if self.rounding not in VALID_ROUNDING:
            raise ValueError(f"rounding must be one of {VALID_ROUNDING}")
        if self.overflow not in VALID_OVERFLOW:
            raise ValueError(f"overflow must be one of {VALID_OVERFLOW}")
        # Quantization constants, precomputed once: to_raw/from_raw are
        # the hottest functions of the whole simulation (every frame of
        # every accelerator kernel round-trips through them), so the
        # per-call property arithmetic and the int->ndarray scalar
        # conversions are hoisted here. object.__setattr__ because the
        # dataclass is frozen.
        fraction = self.width - self.integer_bits
        raw_min = -(1 << (self.width - 1)) if self.signed else 0
        raw_max = (1 << (self.width - 1 if self.signed else self.width)) - 1
        object.__setattr__(self, "_scale", 2.0 ** (-fraction))
        # Exact reciprocal: both are powers of two, so multiplying by
        # 2**fraction is bit-identical to dividing by 2**-fraction.
        object.__setattr__(self, "_inv_scale", 2.0 ** fraction)
        object.__setattr__(self, "_raw_min", raw_min)
        object.__setattr__(self, "_raw_max", raw_max)
        try:
            # ap_ufixed<64,...> has raw_max above int64; those formats
            # keep the generic np.clip path (as before this cache).
            object.__setattr__(self, "_raw_min_i64", np.int64(raw_min))
            object.__setattr__(self, "_raw_max_i64", np.int64(raw_max))
        except OverflowError:
            object.__setattr__(self, "_raw_min_i64", None)
            object.__setattr__(self, "_raw_max_i64", None)

    @property
    def fraction_bits(self) -> int:
        return self.width - self.integer_bits

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return self._scale

    @property
    def raw_min(self) -> int:
        return self._raw_min

    @property
    def raw_max(self) -> int:
        return self._raw_max

    @property
    def min_value(self) -> float:
        return self.raw_min * self.scale

    @property
    def max_value(self) -> float:
        return self.raw_max * self.scale

    @property
    def resolution(self) -> float:
        return self.scale

    def to_raw(self, values: np.ndarray) -> np.ndarray:
        """Quantize real values to integer raw codes (int64).

        Hot path: ``scaled`` is always a fresh array (the multiply
        allocates), so the rounding and saturation steps work in place,
        and the bounds are pre-converted ``np.int64`` scalars. The
        arithmetic is bit-identical to the straightforward
        divide/floor/clip formulation (multiplying by the exact
        power-of-two reciprocal only adjusts the float exponent) —
        pinned by ``tests/sim/test_fastpath_equivalence.py`` against a
        reference implementation.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 0 or self._raw_min_i64 is None:
            # Scalar (numpy hands back 0-d scalars that reject out=)
            # or ufixed<64>: the straightforward formulation.
            scaled = values * self._inv_scale
            if self.rounding == "nearest":
                raw = np.floor(scaled + 0.5)
            else:
                raw = np.floor(scaled)
            raw = raw.astype(np.int64)
            if self.overflow == "saturate":
                return np.clip(raw, self.raw_min, self.raw_max)
            span = 1 << self.width
            return np.mod(raw - self.raw_min, span) + self.raw_min
        scaled = values * self._inv_scale
        if self.rounding == "nearest":
            scaled += 0.5
        np.floor(scaled, out=scaled)
        raw = scaled.astype(np.int64)
        if self.overflow == "saturate":
            np.maximum(raw, self._raw_min_i64, out=raw)
            np.minimum(raw, self._raw_max_i64, out=raw)
        else:
            span = 1 << self.width
            raw = np.mod(raw - self.raw_min, span) + self.raw_min
        return raw

    def from_raw(self, raw: np.ndarray) -> np.ndarray:
        """Convert integer raw codes back to real values."""
        out = np.asarray(raw)
        if out.ndim == 0:
            return np.asarray(raw, dtype=np.float64) * self._scale
        out = out.astype(np.float64)
        out *= self._scale
        return out

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Round-trip real values through this format.

        For saturating formats up to 53 bits the int64 round-trip of
        ``from_raw(to_raw(...))`` is skipped and the whole grid snap
        runs in float64: ``floor`` produces exact integral floats, the
        raw bounds are exactly representable (|raw| < 2**53), and the
        final multiply by the power-of-two ``scale`` is the same
        operation ``from_raw`` performs — so the result is bit-identical
        while saving two array conversions per call. ``quantize`` is
        the hottest numpy entry point of the whole simulation (every
        layer of every frame passes through it), which is why the fast
        path lives here rather than in callers. Wrapping formats and
        ``ap_ufixed<64>`` keep the generic path.
        """
        if (self.overflow != "saturate" or self.width > 53
                or self._raw_min_i64 is None):
            return self.from_raw(self.to_raw(values))
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 0:
            return self.from_raw(self.to_raw(values))
        scaled = values * self._inv_scale
        if self.rounding == "nearest":
            scaled += 0.5
        np.floor(scaled, out=scaled)
        np.maximum(scaled, float(self._raw_min), out=scaled)
        np.minimum(scaled, float(self._raw_max), out=scaled)
        scaled *= self._scale
        return scaled

    def representable(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of values exactly representable in this format."""
        values = np.asarray(values, dtype=np.float64)
        return np.isclose(self.quantize(values), values, rtol=0.0, atol=0.0)

    def quantization_error(self, values: np.ndarray) -> float:
        """RMS error introduced by quantizing ``values``."""
        values = np.asarray(values, dtype=np.float64)
        err = self.quantize(values) - values
        return float(np.sqrt(np.mean(err * err))) if err.size else 0.0

    def __str__(self) -> str:
        kind = "ap_fixed" if self.signed else "ap_ufixed"
        return f"{kind}<{self.width},{self.integer_bits}>"

    @classmethod
    def parse(cls, spec: str) -> "FixedFormat":
        """Parse ``"ap_fixed<16,6>"`` / ``"ap_ufixed<8,1>"`` strings."""
        spec = spec.strip()
        for prefix, signed in (("ap_fixed", True), ("ap_ufixed", False)):
            if spec.startswith(prefix + "<") and spec.endswith(">"):
                body = spec[len(prefix) + 1:-1]
                parts = [p.strip() for p in body.split(",")]
                if len(parts) != 2:
                    break
                return cls(width=int(parts[0]), integer_bits=int(parts[1]),
                           signed=signed)
        raise ValueError(f"cannot parse fixed-point spec {spec!r}")


#: The precision used throughout the paper's accelerators ("16-bits
#: fixed-point", Sec. III).
DEFAULT_FORMAT = FixedFormat(width=16, integer_bits=6)

#: Unsigned 8-bit pixels, as stored in the SVHN frame buffers.
PIXEL_FORMAT = FixedFormat(width=8, integer_bits=8, signed=False)


def mac_result_format(a: FixedFormat, b: FixedFormat,
                      terms: int) -> FixedFormat:
    """Format of a full-precision multiply-accumulate of ``terms`` products.

    Mirrors what HLS infers for ``acc += w * x`` reduction trees before
    the final cast back to the layer output precision: the product needs
    ``Wa+Wb`` bits and the accumulation adds ``ceil(log2(terms))`` guard
    bits on the integer side.
    """
    if terms < 1:
        raise ValueError(f"terms must be >= 1, got {terms}")
    guard = int(np.ceil(np.log2(terms))) if terms > 1 else 0
    width = min(64, a.width + b.width + guard)
    integer = min(width, a.integer_bits + b.integer_bits + guard)
    return FixedFormat(width=width, integer_bits=integer,
                       signed=a.signed or b.signed)
