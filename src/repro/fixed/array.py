"""Bit-accurate fixed-point array arithmetic.

The HLS4ML-generated firmware computes layers in fixed point; this
module provides the matching NumPy reference: quantized matrix-vector
products, activation functions evaluated on quantized values, and
pack/unpack helpers that mirror how 16-bit words travel over the 64-bit
NoC flits of the ESP platform.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from .format import FixedFormat


def quantize(values: np.ndarray, fmt: FixedFormat) -> np.ndarray:
    """Quantize an array to ``fmt`` (returns float64 values on the grid)."""
    return fmt.quantize(values)


def fixed_matvec(weights: np.ndarray, x: np.ndarray, bias: np.ndarray,
                 in_fmt: FixedFormat, weight_fmt: FixedFormat,
                 out_fmt: FixedFormat,
                 params_quantized: bool = False) -> np.ndarray:
    """Dense layer in fixed point: ``out = cast(W @ x + b)``.

    Inputs and weights are first snapped to their formats; the
    accumulation happens in full precision (as HLS does with a wide
    accumulator) and only the final result is cast to ``out_fmt``.

    ``params_quantized=True`` asserts that ``weights`` and ``bias`` are
    already on the ``weight_fmt`` grid and skips re-snapping them — the
    layer-parameter fast path. Quantization is idempotent (pinned by
    ``tests/fixed``), so the result is bit-identical; callers own the
    guarantee that the arrays really are quantized (compiled models
    quantize parameters once at build time).
    """
    xq = in_fmt.quantize(x)
    if params_quantized:
        wq, bq = weights, bias
    else:
        wq = weight_fmt.quantize(weights)
        bq = weight_fmt.quantize(bias)
    acc = wq @ xq
    # x may be a single vector (n_in,) or a batch (n_in, batch).
    acc += bq[:, None] if acc.ndim == 2 else bq
    return out_fmt.quantize(acc)


def fixed_relu(x: np.ndarray, fmt: FixedFormat) -> np.ndarray:
    """ReLU on quantized values (exact in fixed point)."""
    return fmt.quantize(np.maximum(x, 0.0))


@lru_cache(maxsize=None)
def _sigmoid_table(fmt: FixedFormat, table_bits: int,
                   table_range: float) -> np.ndarray:
    """The quantized sigmoid LUT for one (format, geometry) pair.

    In hardware the table is a ROM synthesized once; rebuilding it per
    call (1k-entry linspace + exp + quantize) dominated the denoiser's
    simulation cost. ``FixedFormat`` is a frozen dataclass, so it keys
    an ``lru_cache`` directly; the cached array is returned read-only
    so a caller cannot corrupt the shared ROM.
    """
    size = 1 << table_bits
    centers = np.linspace(-table_range, table_range, size, endpoint=False)
    table = fmt.quantize(1.0 / (1.0 + np.exp(-centers)))
    table.setflags(write=False)
    return table


def fixed_sigmoid(x: np.ndarray, fmt: FixedFormat,
                  table_bits: int = 10, table_range: float = 8.0) -> np.ndarray:
    """Sigmoid via lookup table, as HLS4ML implements it in hardware.

    The table has ``2**table_bits`` entries spanning
    ``[-table_range, table_range)``; inputs outside the range clamp to
    the table ends. The output is cast to ``fmt``.
    """
    size = 1 << table_bits
    table = _sigmoid_table(fmt, table_bits, table_range)
    idx = np.floor((np.asarray(x) + table_range) / (2 * table_range) * size)
    idx = np.clip(idx, 0, size - 1).astype(np.int64)
    return table[idx]


def fixed_softmax(x: np.ndarray, fmt: FixedFormat) -> np.ndarray:
    """Softmax cast to ``fmt``.

    HLS4ML offers LUT-based softmax; for classification only the argmax
    matters, which quantized softmax preserves as long as the format
    resolves the logit gaps. We compute in float then cast, which is the
    same monotone mapping.
    """
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=-1, keepdims=True)
    expx = np.exp(shifted)
    return fmt.quantize(expx / np.sum(expx, axis=-1, keepdims=True))


def pack_words(raw: np.ndarray, word_bits: int, flit_bits: int) -> np.ndarray:
    """Pack raw codes into NoC flits (little-endian within the flit).

    This mirrors the wrapper's STORE path: ``word_bits``-wide tokens are
    packed ``flit_bits // word_bits`` per flit. The final flit is
    zero-padded.
    """
    if flit_bits % word_bits:
        raise ValueError(
            f"flit width {flit_bits} not a multiple of word width {word_bits}")
    per_flit = flit_bits // word_bits
    raw = np.asarray(raw, dtype=np.int64)
    mask = (1 << word_bits) - 1
    codes = raw.astype(np.uint64) & np.uint64(mask)
    pad = (-len(codes)) % per_flit
    if pad:
        codes = np.concatenate([codes, np.zeros(pad, dtype=np.uint64)])
    codes = codes.reshape(-1, per_flit)
    flits = np.zeros(len(codes), dtype=np.uint64)
    for lane in range(per_flit):
        flits |= codes[:, lane] << np.uint64(lane * word_bits)
    return flits


def unpack_words(flits: np.ndarray, count: int, word_bits: int,
                 flit_bits: int, signed: bool = True) -> np.ndarray:
    """Inverse of :func:`pack_words`; returns ``count`` raw codes."""
    if flit_bits % word_bits:
        raise ValueError(
            f"flit width {flit_bits} not a multiple of word width {word_bits}")
    per_flit = flit_bits // word_bits
    flits = np.asarray(flits, dtype=np.uint64)
    mask = np.uint64((1 << word_bits) - 1)
    lanes = [((flits >> np.uint64(lane * word_bits)) & mask)
             for lane in range(per_flit)]
    codes = np.stack(lanes, axis=1).reshape(-1)[:count].astype(np.int64)
    if signed:
        sign_bit = 1 << (word_bits - 1)
        codes = np.where(codes >= sign_bit, codes - (1 << word_bits), codes)
    return codes


def words_to_flits(num_words: int, word_bits: int, flit_bits: int) -> int:
    """Number of flits needed to carry ``num_words`` packed words."""
    per_flit = flit_bits // word_bits
    if per_flit < 1:
        raise ValueError(
            f"word width {word_bits} exceeds flit width {flit_bits}")
    return (num_words + per_flit - 1) // per_flit


def roundtrip(values: np.ndarray, fmt: FixedFormat, word_bits: int,
              flit_bits: int) -> Tuple[np.ndarray, np.ndarray]:
    """Quantize, pack to flits, unpack; returns (values, flits).

    Used by tests to assert the NoC transport is lossless for any
    quantized payload.
    """
    raw = fmt.to_raw(values)
    flits = pack_words(raw, word_bits, flit_bits)
    back = unpack_words(flits, len(raw), word_bits, flit_bits,
                        signed=fmt.signed)
    return fmt.from_raw(back), flits
