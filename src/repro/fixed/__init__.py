"""Fixed-point arithmetic (``ap_fixed`` emulation) for HLS accelerators."""

from .format import (
    DEFAULT_FORMAT,
    PIXEL_FORMAT,
    FixedFormat,
    mac_result_format,
)
from .array import (
    fixed_matvec,
    fixed_relu,
    fixed_sigmoid,
    fixed_softmax,
    pack_words,
    quantize,
    roundtrip,
    unpack_words,
    words_to_flits,
)

__all__ = [
    "DEFAULT_FORMAT",
    "PIXEL_FORMAT",
    "FixedFormat",
    "fixed_matvec",
    "fixed_relu",
    "fixed_sigmoid",
    "fixed_softmax",
    "mac_result_format",
    "pack_words",
    "quantize",
    "roundtrip",
    "unpack_words",
    "words_to_flits",
]
