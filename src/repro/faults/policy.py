"""Recovery policy: how the runtime reacts to detected faults."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RecoveryPolicy:
    """Watchdog / retry / degradation knobs for the executor.

    Passing a policy to :class:`~repro.runtime.DataflowExecutor` arms
    the watchdog on every accelerator invocation; without one the
    executor keeps the paper's original unbounded waits (and its exact
    cycle counts).

    - ``watchdog_cycles``: deadline for one invocation attempt. Must
      comfortably exceed the slowest legitimate invocation (streaming
      p2p invocations cover *all* frames of a run, so scale it with
      the batch when in doubt).
    - ``max_retries``: hardware re-invocations after the first attempt
      (device reset + registers re-programmed + re-ioctl each time).
    - ``backoff_factor``: the watchdog stretches by this per retry
      (exponential backoff, so a transiently congested fabric gets
      progressively more slack).
    - ``software_fallback``: after retries are exhausted, execute the
      node's kernel on the CPU so the pipeline still completes
      (graceful degradation). When False the failure surfaces as
      :class:`~repro.faults.NodeFailed`.
    - ``software_slowdown``: CPU execution cost, as a multiple of the
      accelerator's latency (Table 1 of the paper measures SW/HW gaps
      of one to three orders of magnitude; 40x is a conservative
      mid-range default).
    - ``reset_cycles``: driver-side cost of a device reset ioctl.
    - ``max_watchdog_cycles``: ceiling for the backed-off deadline.
      Unbounded exponential backoff can stretch a single retry past
      the length of an entire campaign, which turns "retry with more
      slack" into "never give up"; the cap keeps the worst-case
      time-to-fallback bounded. ``None`` keeps backoff uncapped.
    """

    watchdog_cycles: int = 150_000
    max_retries: int = 2
    backoff_factor: float = 2.0
    software_fallback: bool = True
    software_slowdown: float = 40.0
    reset_cycles: int = 400
    max_watchdog_cycles: Optional[int] = None

    def __post_init__(self) -> None:
        if self.watchdog_cycles < 1:
            raise ValueError("watchdog_cycles must be >= 1")
        if self.max_watchdog_cycles is not None \
                and self.max_watchdog_cycles < self.watchdog_cycles:
            raise ValueError(
                "max_watchdog_cycles must be >= watchdog_cycles "
                f"({self.max_watchdog_cycles} < {self.watchdog_cycles})")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.software_slowdown < 1.0:
            raise ValueError("software_slowdown must be >= 1")
        if self.reset_cycles < 0:
            raise ValueError("reset_cycles must be >= 0")

    def watchdog_for(self, attempt: int) -> int:
        """Deadline for the given attempt number (0-based), capped."""
        deadline = int(self.watchdog_cycles
                       * self.backoff_factor ** attempt)
        if self.max_watchdog_cycles is not None:
            deadline = min(deadline, self.max_watchdog_cycles)
        return deadline
