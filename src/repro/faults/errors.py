"""Exception taxonomy of the fault/recovery subsystem."""

from __future__ import annotations


class FaultError(Exception):
    """Base class for fault-model failures."""


class AcceleratorTimeout(FaultError):
    """A device did not complete within the allowed wait.

    Raised by the executor's polling guard (``max_wait_cycles``) and by
    the watchdog path when recovery is disabled.
    """

    def __init__(self, device: str, waited_cycles: int,
                 detail: str = "") -> None:
        self.device = device
        self.waited_cycles = waited_cycles
        message = (f"accelerator {device!r} did not signal completion "
                   f"within {waited_cycles} cycles")
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class KernelCrash(FaultError):
    """An injected accelerator-kernel crash (fault kind ``acc_crash``)."""

    def __init__(self, device: str) -> None:
        self.device = device
        super().__init__(f"kernel of accelerator {device!r} crashed")


class NodeFailed(FaultError):
    """A pipeline node failed permanently (retries exhausted).

    In streaming (p2p) mode this aborts the run so the executor can
    degrade gracefully: reset the fabric, mark the device failed and
    re-execute the pipeline with the failed node in software.
    """

    def __init__(self, device: str, reason: str = "") -> None:
        self.device = device
        self.reason = reason
        message = f"pipeline node {device!r} failed permanently"
        if reason:
            message += f": {reason}"
        super().__init__(message)
