"""Fault plans: deterministic, seedable schedules of injected faults.

A :class:`FaultPlan` holds :class:`FaultSpec` entries and answers one
question at each injection opportunity: *does a fault of this kind
fire here, now?* Faults are scheduled either at a simulated-time point
(``at_cycle``: fires on the first opportunity at or after that cycle)
or probabilistically (``probability`` per opportunity, drawn from a
seeded generator, so a given plan + a given workload reproduce the
same fault sequence run after run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

#: Every fault kind the injector understands, and where it strikes:
#:
#: - ``link_drop`` / ``link_corrupt``: NoC delivery faults (a packet is
#:   lost in flight / mangled and discarded by the link-level CRC);
#: - ``dma_stall``: the tile's DMA engine stalls for ``duration``
#:   cycles before issuing a transaction (``duration=None`` hangs it);
#: - ``p2p_req_drop``: a p2p load request is lost before injection;
#: - ``acc_hang`` / ``acc_crash`` / ``acc_slow``: the accelerator
#:   kernel never finishes / dies with an error / runs ``factor``
#:   times slower for one invocation;
#: - ``dram_bitflip``: one bit of a DRAM word covered by a load flips.
FAULT_KINDS = (
    "link_drop",
    "link_corrupt",
    "dma_stall",
    "p2p_req_drop",
    "acc_hang",
    "acc_crash",
    "acc_slow",
    "dram_bitflip",
)


@dataclass
class FaultSpec:
    """One scheduled fault (or fault process) in a plan."""

    kind: str
    target: Optional[str] = None        # device name; None = any target
    at_cycle: Optional[int] = None      # deterministic trigger point
    probability: float = 0.0            # per-opportunity rate otherwise
    count: Optional[int] = 1            # max firings; None = unlimited
    duration: Optional[int] = None      # dma_stall cycles; None = hang
    factor: float = 4.0                 # acc_slow latency multiplier
    plane: Optional[str] = None         # link faults: restrict to plane
    message_kind: Optional[str] = None  # link faults: packet kind name
    fired: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"options: {FAULT_KINDS}")
        if self.at_cycle is None and self.probability <= 0.0:
            raise ValueError(
                f"{self.kind}: give at_cycle or a probability > 0")
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.count is not None and self.count < 1:
            raise ValueError(f"count must be >= 1 or None, got "
                             f"{self.count}")
        if self.duration is not None and self.duration < 1:
            raise ValueError("duration must be >= 1 cycles or None")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")

    @property
    def exhausted(self) -> bool:
        return self.count is not None and self.fired >= self.count


@dataclass(frozen=True)
class FaultEvent:
    """Log entry: one fault that actually fired."""

    cycle: int
    kind: str
    target: Optional[str]


class FaultPlan:
    """A seeded collection of fault specs plus the firing log."""

    def __init__(self, faults: Sequence[FaultSpec] = (),
                 seed: int = 0) -> None:
        self.faults: List[FaultSpec] = list(faults)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.events: List[FaultEvent] = []

    def __len__(self) -> int:
        return len(self.faults)

    @property
    def fired(self) -> int:
        return len(self.events)

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.faults.append(spec)
        return self

    def rand(self) -> float:
        """One draw from the plan's deterministic stream."""
        return float(self._rng.random())

    def randint(self, upper: int) -> int:
        """Uniform integer in [0, upper) from the deterministic stream."""
        return int(self._rng.integers(upper))

    def draw(self, kind: str, target: Optional[str], now: int,
             plane: Optional[str] = None,
             message_kind: Optional[str] = None) -> Optional[FaultSpec]:
        """The spec that fires at this opportunity, or None.

        At most one spec fires per opportunity; specs are consulted in
        plan order. The firing is recorded in :attr:`events`.
        """
        for spec in self.faults:
            if spec.kind != kind or spec.exhausted:
                continue
            if spec.target is not None and spec.target != target:
                continue
            if spec.plane is not None and spec.plane != plane:
                continue
            if spec.message_kind is not None \
                    and spec.message_kind != message_kind:
                continue
            if spec.at_cycle is not None:
                if now < spec.at_cycle:
                    continue
            elif self.rand() >= spec.probability:
                continue
            spec.fired += 1
            self.events.append(FaultEvent(cycle=now, kind=kind,
                                          target=target))
            return spec
        return None

    def summary(self) -> str:
        counts: dict = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        if not counts:
            return "no faults fired"
        return ", ".join(f"{kind}x{n}" for kind, n in sorted(counts.items()))


def zero_fault_plan(seed: int = 0) -> FaultPlan:
    """An attached-but-empty plan (for pay-for-what-you-use checks)."""
    return FaultPlan(faults=(), seed=seed)
