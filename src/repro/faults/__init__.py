"""Fault injection and recovery for the simulated ESP4ML platform.

The paper's runtime (Sec. V) assumes accelerators always complete and
the NoC never loses a flit. This subsystem stress-tests that
assumption: deterministic, seedable fault injectors across the SoC
(NoC packet loss/corruption, DMA stalls, p2p request loss, kernel
hangs/crashes/latency spikes, DRAM bit flips) plus the recovery
machinery — watchdog timeouts, bounded retry with exponential backoff
and graceful degradation to software execution — that lets the
pipeline keep producing correct output under adversity.

The layer is pay-for-what-you-use: without an attached
:class:`FaultPlan` and without a :class:`RecoveryPolicy`, every hook
is a no-op and simulated cycle counts are bit-identical to a build
without this module.
"""

from .errors import (
    AcceleratorTimeout,
    FaultError,
    KernelCrash,
    NodeFailed,
)
from .plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    zero_fault_plan,
)
from .injector import FaultInjector
from .policy import RecoveryPolicy

__all__ = [
    "AcceleratorTimeout",
    "FAULT_KINDS",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "KernelCrash",
    "NodeFailed",
    "RecoveryPolicy",
    "zero_fault_plan",
]
