"""The fault injector: binds a :class:`FaultPlan` to a built SoC.

``attach(soc)`` hands the injector to every faultable component — the
NoC mesh, each accelerator tile and its DMA engine, each memory tile.
Components consult it at their injection points with plain method
calls; when no plan is attached (the default ``fault_injector = None``
on every component) those call sites cost nothing and the simulation
is cycle-identical to a fault-free build.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .plan import FaultPlan

Coord = Tuple[int, int]

#: Sentinel returned by :meth:`FaultInjector.dma_stall` for a stall
#: that never ends (the engine wedges; the runtime watchdog recovers).
HANG = -1


class FaultInjector:
    """Consulted by SoC components at each fault opportunity."""

    HANG = HANG

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._names_by_coord: Dict[Coord, str] = {}
        # Per-site counters (the campaign's injected-fault accounting).
        self.packets_dropped = 0
        self.packets_corrupted = 0
        self.dma_stalls = 0
        self.p2p_reqs_dropped = 0
        self.acc_faults = 0
        self.bits_flipped = 0

    def attach(self, soc) -> "FaultInjector":
        """Wire this injector into every tile of a built SoC."""
        soc.mesh.fault_injector = self
        for name, tile in soc.accelerators.items():
            tile.fault_injector = self
            tile.dma.fault_injector = self
            self._names_by_coord[tile.coord] = name
        for tile in soc.memory_map.tiles:
            tile.fault_injector = self
        return self

    @staticmethod
    def detach(soc) -> None:
        """Remove any injector from a built SoC."""
        soc.mesh.fault_injector = None
        for tile in soc.accelerators.values():
            tile.fault_injector = None
            tile.dma.fault_injector = None
        for tile in soc.memory_map.tiles:
            tile.fault_injector = None

    def _name(self, coord: Coord) -> Optional[str]:
        return self._names_by_coord.get(coord)

    # -- injection points --------------------------------------------------

    def on_deliver(self, packet, now: int) -> str:
        """NoC ejection fault: ``"ok"``, ``"drop"`` or ``"corrupt"``.

        Both faulty outcomes lose the packet: a dropped packet vanished
        in flight, a corrupted one is caught by the link-level CRC and
        discarded at ejection. Either way the waiting requester times
        out and the runtime watchdog drives recovery — corruption is
        never silently delivered.
        """
        target = self._name(packet.dst)
        kind_name = packet.kind.name
        if self.plan.draw("link_drop", target, now, plane=packet.plane,
                          message_kind=kind_name) is not None:
            self.packets_dropped += 1
            return "drop"
        if self.plan.draw("link_corrupt", target, now, plane=packet.plane,
                          message_kind=kind_name) is not None:
            self.packets_corrupted += 1
            return "corrupt"
        return "ok"

    def dma_stall(self, coord: Coord, now: int) -> Optional[int]:
        """Stall cycles before a DMA transaction; HANG for a dead engine."""
        spec = self.plan.draw("dma_stall", self._name(coord), now)
        if spec is None:
            return None
        self.dma_stalls += 1
        return HANG if spec.duration is None else spec.duration

    def p2p_req_lost(self, coord: Coord, now: int) -> bool:
        """True when this tile's p2p load request is lost pre-injection."""
        if self.plan.draw("p2p_req_drop", self._name(coord),
                          now) is not None:
            self.p2p_reqs_dropped += 1
            return True
        return False

    def acc_fault(self, device: str, now: int) -> Optional[tuple]:
        """Kernel fault for this invocation.

        Returns ``None`` or one of ``("hang",)``, ``("crash",)``,
        ``("slow", factor)``.
        """
        spec = self.plan.draw("acc_hang", device, now)
        if spec is not None:
            self.acc_faults += 1
            return ("hang",)
        spec = self.plan.draw("acc_crash", device, now)
        if spec is not None:
            self.acc_faults += 1
            return ("crash",)
        spec = self.plan.draw("acc_slow", device, now)
        if spec is not None:
            self.acc_faults += 1
            return ("slow", spec.factor)
        return None

    def maybe_flip_dram(self, storage: np.ndarray, offset: int,
                        words: int, now: int) -> bool:
        """Flip one mantissa bit of a word in [offset, offset+words).

        Called by the memory tile while servicing a load; the flip
        lands in the backing storage (a real DRAM upset persists until
        the word is rewritten). Returns True when a flip happened.
        """
        if self.plan.draw("dram_bitflip", None, now) is None:
            return False
        index = offset + self.plan.randint(words)
        bit = self.plan.randint(52)     # mantissa bits: value stays finite
        view = storage[index:index + 1].view(np.int64)
        view[0] ^= np.int64(1) << np.int64(bit)
        self.bits_flipped += 1
        return True
