"""Remediation actions: the control plane's unit of accountability.

Every decision the controller takes — including the ones it
*suppresses* — is recorded as a :class:`ControlAction` so a chaos
campaign (or an operator reading ``metrics-top``) can reconstruct
exactly what the loop did and why. An action has a *kind* (which
remediation), a *target* (tile or tenant it applied to), and an
*outcome*:

``applied``
    The remediation ran against the live serving stack.
``cooldown``
    Suppressed: the same (kind, target) pair was applied too
    recently. Cooldowns stop the controller from re-firing a fix
    whose effect has not yet propagated (e.g. a deferred reshard
    waiting for the tenant's in-flight batch to land).
``budget-exhausted``
    Suppressed: the actions-per-window budget is spent. The budget
    bounds blast radius under an alert storm — a controller that
    takes unbounded actions is itself a fault injector.
``no-op``
    The remediation ran but changed nothing (e.g. widening a batcher
    already at its cap).
``failed``
    The remediation raised; the error text is kept in ``detail``.
"""

from __future__ import annotations

from dataclasses import dataclass

ACTION_RESHARD = "reshard"
ACTION_ACTIVATE_SPARE = "activate-spare"
ACTION_WIDEN_BATCH = "widen-batch"
ACTION_FORCE_DEGRADE = "force-degrade"

ACTION_KINDS = (
    ACTION_RESHARD,
    ACTION_ACTIVATE_SPARE,
    ACTION_WIDEN_BATCH,
    ACTION_FORCE_DEGRADE,
)

OUTCOME_APPLIED = "applied"
OUTCOME_COOLDOWN = "cooldown"
OUTCOME_BUDGET = "budget-exhausted"
OUTCOME_NOOP = "no-op"
OUTCOME_FAILED = "failed"

OUTCOMES = (
    OUTCOME_APPLIED,
    OUTCOME_COOLDOWN,
    OUTCOME_BUDGET,
    OUTCOME_NOOP,
    OUTCOME_FAILED,
)


@dataclass(frozen=True)
class ControlAction:
    """One control-plane decision, applied or suppressed.

    Attributes:
        cycle: simulation cycle the decision was made at.
        kind: one of :data:`ACTION_KINDS`.
        target: the tile or tenant the action addresses.
        rule: name of the alert rule that motivated the action.
        outcome: one of :data:`OUTCOMES`.
        detail: human-readable specifics (mapping applied, error
            text, suppression reason).
    """

    cycle: int
    kind: str
    target: str
    rule: str
    outcome: str
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ACTION_KINDS:
            raise ValueError(f"unknown action kind {self.kind!r}")
        if self.outcome not in OUTCOMES:
            raise ValueError(f"unknown action outcome {self.outcome!r}")

    @property
    def applied(self) -> bool:
        return self.outcome == OUTCOME_APPLIED

    def describe(self) -> str:
        base = (f"[{self.cycle}] {self.kind} {self.target} "
                f"({self.rule}): {self.outcome}")
        return f"{base} — {self.detail}" if self.detail else base
