"""Closed-loop self-healing: alerts in, remediation actions out.

The metrics subsystem *observes* (``HealthMonitor`` tracks SLO rules
through firing -> resolved) and the fault subsystem *reacts locally*
(``RecoveryPolicy`` arms per-invocation watchdog/retry/fallback), but
neither closes the loop from a fleet-visible SLO breach back to a
remediation that restores hardware-speed serving. ``repro.control``
is that loop: a :class:`ControlPlane` subscribes to the monitor's
evaluations and drives the serving stack's remediation hooks —
resharding a tenant off a broken tile, activating a spare from a
reserve pool, widening a batcher under queue saturation, and forcing
the CPU software fallback when a stall outlives its retry budget.

Every decision is a first-class :class:`ControlAction` (applied or
suppressed), metric-instrumented and bounded by per-target cooldowns
plus an actions-per-window budget so the controller itself cannot
flap the system it is healing.
"""

from .actions import (
    ACTION_ACTIVATE_SPARE,
    ACTION_FORCE_DEGRADE,
    ACTION_KINDS,
    ACTION_RESHARD,
    ACTION_WIDEN_BATCH,
    ControlAction,
    OUTCOME_APPLIED,
    OUTCOME_BUDGET,
    OUTCOME_COOLDOWN,
    OUTCOME_FAILED,
    OUTCOME_NOOP,
    OUTCOMES,
)
from .controller import BROKEN_TILE_RULE, ControlConfig, ControlPlane

__all__ = [
    "ACTION_ACTIVATE_SPARE",
    "BROKEN_TILE_RULE",
    "ACTION_FORCE_DEGRADE",
    "ACTION_KINDS",
    "ACTION_RESHARD",
    "ACTION_WIDEN_BATCH",
    "ControlAction",
    "ControlConfig",
    "ControlPlane",
    "OUTCOME_APPLIED",
    "OUTCOME_BUDGET",
    "OUTCOME_COOLDOWN",
    "OUTCOME_FAILED",
    "OUTCOME_NOOP",
    "OUTCOMES",
]
