"""The control plane: SLO alerts in, bounded remediations out.

The :class:`ControlPlane` subscribes to a :class:`HealthMonitor`
(:meth:`~repro.metrics.health.HealthMonitor.subscribe`) and runs one
decision pass after every evaluation. Everything it does is
synchronous registry/server mutation — it never schedules simulation
events itself — so an attached controller over a healthy system is
timing-invisible: zero-fault runs keep their exact cycle counts.

Remediation playbook (alert -> action):

====================  =====================================================
alert                 remediation
====================  =====================================================
queue-saturation      ``widen-batch`` on the deepest-queued tenant, so one
                      grant drains more of the backlog per arbitration.
accelerator-stall     after ``stall_escalation_evals`` consecutive
                      evaluations with the same device stalled (the
                      in-flight watchdog/retry ladder got its chance):
                      ``force-degrade`` that device to the CPU software
                      fallback, preempting the wait.
broken tenant tile    a tile that is registry-failed, forced to software,
(any firing alert)    or quarantined while a tenant's pipeline maps to it:
                      ``activate-spare`` (reserve-pool tile with the same
                      kernel) then ``reshard`` the tenant onto it.
====================  =====================================================

Safety rails: each (kind, target) pair observes ``cooldown_cycles``
between applications, and at most ``max_actions_per_window`` actions
apply per sliding ``window_cycles`` — an alert storm gets a bounded
response, not an unbounded one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from ..metrics.health import Alert, HealthMonitor, SloRule, stalled_devices
from .actions import (
    ACTION_ACTIVATE_SPARE,
    ACTION_FORCE_DEGRADE,
    ACTION_RESHARD,
    ACTION_WIDEN_BATCH,
    ControlAction,
    OUTCOME_APPLIED,
    OUTCOME_BUDGET,
    OUTCOME_COOLDOWN,
    OUTCOME_FAILED,
    OUTCOME_NOOP,
)


#: Rule the controller registers at attach: fires while any tenant's
#: pipeline maps to a broken (failed / forced / quarantined) tile.
BROKEN_TILE_RULE = "tenant-tile-broken"


@dataclass(frozen=True)
class ControlConfig:
    """Knobs of the self-healing loop."""

    #: Tiles held out of arbitration as spares; ``attach`` quarantines
    #: them (permanently, no probation) until the controller activates
    #: one to absorb a resharded tenant.
    reserve_pool: Tuple[str, ...] = ()
    #: Minimum cycles between two *applied* actions of the same
    #: (kind, target) pair.
    cooldown_cycles: int = 50_000
    #: Sliding window for the action budget.
    window_cycles: int = 200_000
    #: Applied actions allowed per window, across all kinds.
    max_actions_per_window: int = 8
    #: Consecutive evaluations a device must stay stalled before the
    #: controller forces it to the software fallback (lets the
    #: executor's own watchdog/retry ladder act first).
    stall_escalation_evals: int = 3
    #: Heartbeat-quiet threshold fed to ``stalled_devices``; ``None``
    #: derives 2x the slowest kernel at attach, matching
    #: ``default_rules``.
    stall_quiet_cycles: Optional[int] = None
    #: Batch-widening growth factor and hard cap (frames).
    widen_factor: float = 2.0
    widen_cap: int = 256

    def __post_init__(self) -> None:
        if self.cooldown_cycles < 0 or self.window_cycles < 1:
            raise ValueError("cooldown_cycles must be >= 0 and "
                             "window_cycles >= 1")
        if self.max_actions_per_window < 1:
            raise ValueError("max_actions_per_window must be >= 1")
        if self.stall_escalation_evals < 1:
            raise ValueError("stall_escalation_evals must be >= 1")
        if self.widen_factor <= 1.0:
            raise ValueError("widen_factor must be > 1")


class ControlPlane:
    """Closes the loop from health alerts to live remediation."""

    def __init__(self, server, monitor: HealthMonitor,
                 config: Optional[ControlConfig] = None) -> None:
        self.server = server
        self.monitor = monitor
        self.config = config or ControlConfig()
        self.env = server.env
        #: Every decision, applied and suppressed, in cycle order.
        self.actions: List[ControlAction] = []
        self._last_applied: Dict[Tuple[str, str], int] = {}
        self._applied_window: Deque[int] = deque()
        self._stall_streak: Dict[str, int] = {}
        # Pool membership: a spare leaves the pool when a reshard
        # lands a tenant on it. Activation (repair + arbiter
        # re-admission) is tracked separately so a spare activated for
        # a reshard that then got suppressed is not activated twice.
        self._spares: Set[str] = set(self.config.reserve_pool)
        self._activated: Set[str] = set()
        self._attached = False
        quiet = self.config.stall_quiet_cycles
        if quiet is None:
            slowest = max((tile.spec.latency_cycles
                           for tile in server.soc.accelerators.values()),
                          default=1000)
            quiet = 2 * slowest
        self._quiet_cycles = quiet

    # -- lifecycle ------------------------------------------------------------

    def attach(self) -> "ControlPlane":
        """Quarantine the reserve pool and subscribe to the monitor."""
        if self._attached:
            return self
        arbiter = self.server.arbiter
        for tile in sorted(self._spares):
            if tile not in arbiter.tiles:
                raise KeyError(f"reserve tile {tile!r} not on this SoC")
            if tile not in arbiter.unavailable_tiles:
                # Permanent hold (no probation): only the controller
                # releases a spare back into arbitration.
                arbiter.mark_unavailable(tile, probation=False)
        self.monitor.add_rule(SloRule(
            name=BROKEN_TILE_RULE, check=self._broken_rule_check,
            severity="critical",
            description=("a tenant's pipeline maps to a failed, "
                         "forced-to-software, or quarantined tile")))
        self.monitor.subscribe(self._on_evaluate)
        self._attached = True
        return self

    @property
    def attached(self) -> bool:
        return self._attached

    @property
    def spares(self) -> Set[str]:
        """Reserve tiles not yet consumed by a reshard (copy)."""
        return set(self._spares)

    def applied_actions(self) -> List[ControlAction]:
        return [a for a in self.actions if a.applied]

    # -- the decision pass ----------------------------------------------------

    def _on_evaluate(self, monitor: HealthMonitor,
                     transitions: Sequence[Alert]) -> None:
        """One pass: runs after every monitor evaluation.

        Order matters: stall escalation first (it may force a device
        to software, making it 'broken' for the reshard step in the
        same pass), then reshard/spare activation, then batch
        widening.
        """
        self._escalate_stalls(monitor)
        self._reshard_broken(monitor)
        self._widen_saturated(monitor)

    def _escalate_stalls(self, monitor: HealthMonitor) -> None:
        executor = self.server.executor
        stalled: Dict[str, int] = {}
        if "accelerator-stall" in monitor.active:
            stalled = dict(stalled_devices(
                monitor.registry, self.env.now, self._quiet_cycles))
        for device in list(self._stall_streak):
            if device not in stalled:
                del self._stall_streak[device]
        for device, quiet in sorted(stalled.items()):
            streak = self._stall_streak.get(device, 0) + 1
            self._stall_streak[device] = streak
            if streak < self.config.stall_escalation_evals:
                continue
            if device in executor.forced_software:
                continue

            def force(device: str = device, quiet: int = quiet) -> str:
                executor.force_software(device)
                return (f"{device} quiet {quiet} cycles over "
                        f"{streak} evaluations; forced to CPU "
                        f"software fallback")

            self._act(ACTION_FORCE_DEGRADE, device,
                      "accelerator-stall", force)

    def _broken_tiles(self) -> Set[str]:
        """Tiles a tenant should be moved off: registry-failed, forced
        to software, or quarantined — excluding held reserve tiles."""
        executor = self.server.executor
        arbiter = self.server.arbiter
        broken = set(executor.registry.failed_names())
        broken |= set(executor.forced_software)
        broken |= set(arbiter.unavailable_tiles)
        return broken - (self._spares - self._activated)

    def _broken_rule_check(self, registry, now: int) -> Optional[str]:
        """The BROKEN_TILE_RULE predicate (registered at attach)."""
        broken = self._broken_tiles()
        if not broken:
            return None
        hit = [f"{tenant}:{device}"
               for tenant, tiles in sorted(self.server.tenant_tiles()
                                           .items())
               for device in sorted(tiles & broken)]
        if not hit:
            return None
        return f"tenant tiles broken: {', '.join(hit)}"

    def _reshard_broken(self, monitor: HealthMonitor) -> None:
        if BROKEN_TILE_RULE not in monitor.active:
            return
        broken = self._broken_tiles()
        if not broken:
            return
        rule = BROKEN_TILE_RULE
        for tenant, tiles in sorted(self.server.tenant_tiles().items()):
            for device in sorted(tiles & broken):
                spare = self._pick_spare(device)
                if spare is None:
                    continue
                if spare not in self._activated:
                    action = self._act(
                        ACTION_ACTIVATE_SPARE, spare, rule,
                        lambda s=spare, d=device: self._activate(s, d))
                    if not action.applied:
                        continue
                self._act(ACTION_RESHARD, tenant, rule,
                          lambda t=tenant, d=device, s=spare:
                          self._do_reshard(t, d, s))

    def _pick_spare(self, device: str) -> Optional[str]:
        """A healthy, unused reserve tile running the same kernel."""
        registry = self.server.executor.registry
        executor = self.server.executor
        spec = registry.by_name(device).spec_name
        used: Set[str] = set()
        for tiles in self.server.tenant_tiles().values():
            used |= tiles
        for spare in sorted(self._spares):
            if spare in used or spare == device:
                continue
            if registry.by_name(spare).spec_name != spec:
                continue
            if registry.is_failed(spare) \
                    or spare in executor.forced_software:
                continue
            return spare
        return None

    def _activate(self, spare: str, for_device: str) -> str:
        self.server.repair_tile(spare)
        self.server.arbiter.mark_available(spare)
        self._activated.add(spare)
        return f"reserve tile {spare} activated to replace {for_device}"

    def _do_reshard(self, tenant: str, device: str, spare: str) -> str:
        result = self.server.reshard_tenant(tenant, {device: spare})
        self._spares.discard(spare)
        self._activated.discard(spare)
        self._stall_streak.pop(device, None)
        return f"{tenant}: {device} -> {spare} ({result})"

    def _widen_saturated(self, monitor: HealthMonitor) -> None:
        if "queue-saturation" not in monitor.active:
            return
        queue = self.server.queue
        deepest = max(self.server.tenants,
                      key=lambda t: (queue.tenant_depth(t), t))
        if queue.tenant_depth(deepest) == 0:
            return

        def widen(tenant: str = deepest) -> Optional[str]:
            before = self.server.batch_bound(tenant)
            after = self.server.widen_batch(
                tenant, self.config.widen_factor, self.config.widen_cap)
            if after == before:
                return None   # already at the cap -> no-op
            return (f"{tenant}: max_batch_frames {before} -> {after} "
                    f"(queue depth {queue.tenant_depth(tenant)})")

        self._act(ACTION_WIDEN_BATCH, deepest, "queue-saturation",
                  widen)

    # -- the action gate ------------------------------------------------------

    def _act(self, kind: str, target: str, rule: str,
             apply: Callable[[], Optional[str]]) -> ControlAction:
        """Run one remediation through cooldown + budget, record it.

        ``apply`` returns a detail string, or ``None`` to signal the
        remediation was a no-op; exceptions become ``failed`` actions
        rather than propagating into the monitor's evaluation."""
        now = self.env.now
        window = self.config.window_cycles
        while self._applied_window \
                and now - self._applied_window[0] >= window:
            self._applied_window.popleft()
        key = (kind, target)
        last = self._last_applied.get(key)
        if last is not None \
                and now - last < self.config.cooldown_cycles:
            return self._record(
                kind, target, rule, OUTCOME_COOLDOWN,
                f"applied at cycle {last}, cooldown "
                f"{self.config.cooldown_cycles}")
        if len(self._applied_window) \
                >= self.config.max_actions_per_window:
            return self._record(
                kind, target, rule, OUTCOME_BUDGET,
                f"{len(self._applied_window)} actions in the last "
                f"{window} cycles (budget "
                f"{self.config.max_actions_per_window})")
        try:
            detail = apply()
        except Exception as exc:
            return self._record(kind, target, rule, OUTCOME_FAILED,
                                f"{type(exc).__name__}: {exc}")
        if detail is None:
            return self._record(kind, target, rule, OUTCOME_NOOP, "")
        self._last_applied[key] = now
        self._applied_window.append(now)
        return self._record(kind, target, rule, OUTCOME_APPLIED, detail)

    def _record(self, kind: str, target: str, rule: str,
                outcome: str, detail: str) -> ControlAction:
        action = ControlAction(cycle=self.env.now, kind=kind,
                               target=target, rule=rule,
                               outcome=outcome, detail=detail)
        self.actions.append(action)
        metrics = self.monitor.registry
        metrics.control_actions.labels(kind, outcome).inc()
        if action.applied:
            metrics.control_last_action.labels(kind).set(self.env.now)
        return action

    # -- reporting ------------------------------------------------------------

    def render(self) -> str:
        applied = self.applied_actions()
        lines = [f"control plane: {len(self.actions)} decisions, "
                 f"{len(applied)} applied, "
                 f"{len(self._spares)} spares in reserve"]
        for action in self.actions:
            lines.append(f"  {action.describe()}")
        return "\n".join(lines)
