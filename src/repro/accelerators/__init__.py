"""Accelerator library: the paper's four case-study accelerators."""

from .base import AcceleratorSpec, chain_specs
from .classifier import classifier_model, classifier_spec
from .denoiser import denoiser_model, denoiser_spec
from .multitile import partition_classifier
from .nightvision import (
    histogram_kernel,
    histogram_equalization_kernel,
    night_vision_spec,
    night_vision_stage_specs,
    noise_filter_kernel,
)
from .registry import AcceleratorRegistry

__all__ = [
    "AcceleratorRegistry",
    "AcceleratorSpec",
    "chain_specs",
    "classifier_model",
    "classifier_spec",
    "denoiser_model",
    "denoiser_spec",
    "histogram_equalization_kernel",
    "histogram_kernel",
    "night_vision_spec",
    "night_vision_stage_specs",
    "noise_filter_kernel",
    "partition_classifier",
]
