"""Accelerator registry: name -> builder.

The SoC configuration GUI (and the runtime's probe order) refer to
accelerators by name; this registry is the lookup the flow uses when a
configuration is described textually (e.g. in examples or tests).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import AcceleratorSpec
from .classifier import classifier_spec
from .denoiser import denoiser_spec
from .nightvision import night_vision_spec

Builder = Callable[..., AcceleratorSpec]


class AcceleratorRegistry:
    """A mutable catalog of accelerator builders."""

    def __init__(self) -> None:
        self._builders: Dict[str, Builder] = {}

    def register(self, name: str, builder: Builder,
                 replace: bool = False) -> None:
        if not replace and name in self._builders:
            raise ValueError(f"accelerator {name!r} already registered")
        self._builders[name] = builder

    def build(self, name: str, **kwargs) -> AcceleratorSpec:
        if name not in self._builders:
            raise KeyError(f"no accelerator named {name!r}; available: "
                           f"{self.names()}")
        return self._builders[name](**kwargs)

    def names(self) -> List[str]:
        return sorted(self._builders)

    def __contains__(self, name: str) -> bool:
        return name in self._builders

    @classmethod
    def default(cls) -> "AcceleratorRegistry":
        """The paper's accelerator catalog."""
        registry = cls()
        registry.register("classifier", classifier_spec)
        registry.register("denoiser", denoiser_spec)
        registry.register("night_vision", night_vision_spec)
        return registry
