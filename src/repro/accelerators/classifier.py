"""The SVHN digit classifier accelerator (HLS4ML flow).

Paper Sec. VI: "a Multilayer Perceptron (MLP) with four hidden layers.
The size of the fully connected network is 1024x256x128x64x32x10. We
used dropout layers with a 0.2 rate to prevent overfitting." Designed
in Keras, compiled with HLS4ML inside the ESP4ML flow.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..hls4ml_flow import HlsConfig, HlsModel, compile_model
from ..nn import Dense, Dropout, ReLU, Sequential, Softmax
from .base import AcceleratorSpec

#: The paper's network: 1024x256x128x64x32x10.
CLASSIFIER_TOPOLOGY = (1024, 256, 128, 64, 32, 10)
DROPOUT_RATE = 0.2

#: Default HLS4ML reuse factor. Divides every hidden layer's weight
#: count; chosen (with the denoiser's) so the simulated SoCs land on
#: the paper's Table I throughput anchors while keeping four classifier
#: instances far inside the DSP budget of the Ultrascale+ part.
DEFAULT_REUSE_FACTOR = 1024


def classifier_model(seed: int = 7) -> Sequential:
    """The untrained Keras-substitute model with the paper's topology."""
    layers = []
    for units in CLASSIFIER_TOPOLOGY[1:-1]:
        layers.append(Dense(units))
        layers.append(ReLU())
        layers.append(Dropout(DROPOUT_RATE))
    layers.append(Dense(CLASSIFIER_TOPOLOGY[-1]))
    layers.append(Softmax())
    model = Sequential(layers, name="svhn_classifier")
    model.build(CLASSIFIER_TOPOLOGY[0], seed=seed)
    return model


def classifier_hls(model: Optional[Sequential] = None,
                   reuse_factor: int = DEFAULT_REUSE_FACTOR,
                   clock_mhz: float = 78.0) -> HlsModel:
    """Compile the classifier through the HLS4ML-substitute flow."""
    model = model or classifier_model()
    config = HlsConfig(reuse_factor=reuse_factor, clock_mhz=clock_mhz)
    return compile_model(model, config)


def spec_from_hls(hls_model: HlsModel, name: str) -> AcceleratorSpec:
    """Wrap any compiled HLS model into an SoC-ready spec."""

    def compute(frame: np.ndarray) -> np.ndarray:
        return hls_model.predict(frame)[0]

    return AcceleratorSpec(
        name=name,
        input_words=hls_model.input_size,
        output_words=hls_model.output_size,
        compute=compute,
        latency_cycles=hls_model.latency_cycles,
        interval_cycles=hls_model.interval_cycles,
        resources=hls_model.resources,
        word_bits=hls_model.layers[0].precision.width,
        design_flow="hls4ml",
    )


def classifier_spec(model: Optional[Sequential] = None,
                    reuse_factor: int = DEFAULT_REUSE_FACTOR,
                    clock_mhz: float = 78.0) -> AcceleratorSpec:
    """The classifier as an SoC-ready accelerator."""
    return spec_from_hls(classifier_hls(model, reuse_factor, clock_mhz),
                         name="classifier")
