"""The Night-Vision accelerator (noise filter + histogram + equalization).

Paper Sec. VI: "one application outside the ML domain, which is a night
computer vision application consisting of three kernels: noise
filtering, histogram, and histogram equalization", used as a
pre-processing step in front of the MLP classifier on darkened SVHN
frames. The paper designed these kernels in SystemC and synthesized
them with Cadence Stratus HLS; here the same kernels are NumPy
functions with Stratus-style pipelined-loop schedules.
"""

from __future__ import annotations

import numpy as np

from ..datasets.transforms import FRAME_PIXELS, FRAME_SIDE
from ..fixed import DEFAULT_FORMAT, FixedFormat
from ..hls import (
    ResourceEstimate,
    pipelined_loop_schedule,
    sequential_schedule,
)
from .base import AcceleratorSpec

#: Histogram bins used by the hardware (64 bins over [0, 1]).
HISTOGRAM_BINS = 64


def noise_filter_kernel(frame: np.ndarray,
                        fmt: FixedFormat = DEFAULT_FORMAT) -> np.ndarray:
    """3x3 median filter with edge replication (salt-and-pepper removal).

    The median of 9 values is their 5th order statistic, so a single
    ``np.partition`` at index 4 over the window axis replaces the
    9-slice stack + full ``np.median`` of the original implementation —
    same value for every window (``np.median`` of an odd count *is*
    the middle order statistic), at about a third of the cost.
    """
    img = np.asarray(frame, dtype=np.float64).reshape(FRAME_SIDE, FRAME_SIDE)
    padded = np.pad(img, 1, mode="edge")
    windows = np.lib.stride_tricks.sliding_window_view(padded, (3, 3))
    flat = windows.reshape(FRAME_PIXELS, 9)
    filtered = np.partition(flat, 4, axis=1)[:, 4]
    return fmt.quantize(filtered)


def histogram_kernel(frame: np.ndarray,
                     bins: int = HISTOGRAM_BINS) -> np.ndarray:
    """Intensity histogram over [0, 1] with ``bins`` buckets."""
    frame = np.asarray(frame, dtype=np.float64).reshape(-1)
    idx = np.clip((frame * bins).astype(np.int64), 0, bins - 1)
    # bincount produces the same exact integer counts as the original
    # np.add.at scatter, without its per-element buffered loop.
    return np.bincount(idx, minlength=bins).astype(np.float64)


def histogram_equalization_kernel(frame: np.ndarray, hist: np.ndarray,
                                  fmt: FixedFormat = DEFAULT_FORMAT
                                  ) -> np.ndarray:
    """Classic CDF remapping: stretch the (dark) dynamic range."""
    frame = np.asarray(frame, dtype=np.float64).reshape(-1)
    hist = np.asarray(hist, dtype=np.float64)
    bins = len(hist)
    cdf = np.cumsum(hist)
    nonzero = cdf[cdf > 0]
    cdf_min = nonzero[0] if len(nonzero) else 0.0
    total = cdf[-1]
    if total <= cdf_min:
        return fmt.quantize(frame)
    mapping = (cdf - cdf_min) / (total - cdf_min)
    mapping = np.clip(mapping, 0.0, 1.0)
    idx = np.clip((frame * bins).astype(np.int64), 0, bins - 1)
    return fmt.quantize(mapping[idx])


def night_vision_compute(frame: np.ndarray,
                         fmt: FixedFormat = DEFAULT_FORMAT) -> np.ndarray:
    """The fused three-kernel pipeline of the Night-Vision tile."""
    filtered = noise_filter_kernel(frame, fmt)
    hist = histogram_kernel(filtered)
    return histogram_equalization_kernel(filtered, hist, fmt)


def night_vision_stage_specs(fmt: FixedFormat = DEFAULT_FORMAT):
    """The three Night-Vision kernels as *separate* accelerator tiles.

    Fig. 1 of the paper draws the vision kernels as individual boxes
    that the NoC chains together; the evaluation fuses them into one
    tile (:func:`night_vision_spec`), but the flow supports either
    mapping. Because the equalization kernel needs both the filtered
    frame and its histogram, the histogram stage forwards the frame
    alongside the 64 bin counts (1024 + 64 = 1088 words).
    """
    def filter_stage_compute(frame: np.ndarray) -> np.ndarray:
        return noise_filter_kernel(frame, fmt)

    def hist_stage_compute(frame: np.ndarray) -> np.ndarray:
        hist = histogram_kernel(frame)
        return np.concatenate([np.asarray(frame, dtype=np.float64),
                               hist])

    def eq_stage_compute(packed: np.ndarray) -> np.ndarray:
        frame = packed[:FRAME_PIXELS]
        hist = packed[FRAME_PIXELS:]
        return histogram_equalization_kernel(frame, hist, fmt)

    window_cost = ResourceEstimate(luts=9_500, ffs=8_800, brams=6)
    filter_sched = pipelined_loop_schedule(FRAME_PIXELS, interval=3,
                                           depth=12,
                                           body_resources=window_cost)
    hist_cost = ResourceEstimate(luts=2_500, ffs=2_400, brams=2)
    hist_sched = pipelined_loop_schedule(FRAME_PIXELS, interval=2, depth=4,
                                         body_resources=hist_cost)
    eq_cost = ResourceEstimate(luts=5_000, ffs=4_200, brams=4)
    eq_sched = sequential_schedule(
        pipelined_loop_schedule(HISTOGRAM_BINS, interval=1, depth=4),
        pipelined_loop_schedule(FRAME_PIXELS, interval=3, depth=6,
                                body_resources=eq_cost))

    return [
        AcceleratorSpec(
            name="nv_filter", input_words=FRAME_PIXELS,
            output_words=FRAME_PIXELS, compute=filter_stage_compute,
            latency_cycles=filter_sched.latency,
            interval_cycles=filter_sched.interval,
            resources=filter_sched.resources, word_bits=fmt.width,
            design_flow="stratus"),
        AcceleratorSpec(
            name="nv_histogram", input_words=FRAME_PIXELS,
            output_words=FRAME_PIXELS + HISTOGRAM_BINS,
            compute=hist_stage_compute,
            latency_cycles=hist_sched.latency,
            interval_cycles=hist_sched.interval,
            resources=hist_sched.resources, word_bits=fmt.width,
            design_flow="stratus"),
        AcceleratorSpec(
            name="nv_equalize",
            input_words=FRAME_PIXELS + HISTOGRAM_BINS,
            output_words=FRAME_PIXELS, compute=eq_stage_compute,
            latency_cycles=eq_sched.latency,
            interval_cycles=eq_sched.interval,
            resources=eq_sched.resources, word_bits=fmt.width,
            design_flow="stratus"),
    ]


def night_vision_spec(fmt: FixedFormat = DEFAULT_FORMAT) -> AcceleratorSpec:
    """Synthesize the Night-Vision accelerator (Stratus-flow stand-in).

    The three kernels run back to back on each frame inside the tile.
    Their initiation intervals reflect the classic HLS limits of each
    loop: the 3x3 median uses an area-efficient compare network fed
    over a 16-bit datapath (II=3); the histogram loop carries a
    read-modify-write dependence on the bin memory (II=2); the
    equalization pass shares an iterative divider for the CDF
    normalization (II=3). This makes Night-Vision the slowest stage of
    the NV+Cl pipeline — which is why the paper's evaluation replicates
    it (Sec. V: "multiple instances of the slower accelerator can be
    activated to feed a single accelerator downstream").
    """
    window_cost = ResourceEstimate(luts=9_500, ffs=8_800, brams=6)
    filter_stage = pipelined_loop_schedule(FRAME_PIXELS, interval=3, depth=12,
                                           body_resources=window_cost)
    hist_cost = ResourceEstimate(luts=2_500, ffs=2_400, brams=2)
    hist_stage = pipelined_loop_schedule(FRAME_PIXELS, interval=2, depth=4,
                                         body_resources=hist_cost)
    # CDF scan over the bins, then the remapping pass over the pixels.
    eq_cost = ResourceEstimate(luts=5_000, ffs=4_200, brams=4)
    cdf_stage = pipelined_loop_schedule(HISTOGRAM_BINS, interval=1, depth=4)
    remap_stage = pipelined_loop_schedule(FRAME_PIXELS, interval=3, depth=6,
                                          body_resources=eq_cost)
    schedule = sequential_schedule(filter_stage, hist_stage, cdf_stage,
                                   remap_stage)
    return AcceleratorSpec(
        name="night_vision",
        input_words=FRAME_PIXELS,
        output_words=FRAME_PIXELS,
        compute=lambda frame: night_vision_compute(frame, fmt),
        latency_cycles=schedule.latency,
        interval_cycles=schedule.interval,
        resources=schedule.resources,
        word_bits=fmt.width,
        design_flow="stratus",
    )
