"""Accelerator specifications: what a tile socket hosts.

An :class:`AcceleratorSpec` is the result of one of the two design
branches of Fig. 3 — the HLS4ML branch (ML kernels) or the generic
SystemC/Stratus branch (e.g. the Night-Vision kernels). It bundles:

- the functional kernel (bit-accurate NumPy compute),
- the per-frame timing from the HLS schedule,
- the FPGA resource estimate,
- the I/O geometry (words per input/output frame, word width) that the
  ESP wrapper needs to size DMA transactions and PLM buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence, Tuple

import numpy as np

from ..hls import ResourceEstimate


@dataclass(frozen=True)
class AcceleratorSpec:
    """A synthesized accelerator, ready for SoC integration."""

    name: str
    input_words: int
    output_words: int
    compute: Callable[[np.ndarray], np.ndarray]
    latency_cycles: int
    interval_cycles: int
    resources: ResourceEstimate = field(default_factory=ResourceEstimate)
    word_bits: int = 16
    design_flow: str = "hls4ml"   # "hls4ml" | "stratus"
    user_registers: Tuple[str, ...] = ()
    #: Ping-pong PLM buffers: the wrapper overlaps LOAD/COMPUTE/STORE
    #: across frames, so sustained cadence approaches the kernel's
    #: initiation interval instead of its latency. Off by default (the
    #: Fig. 4 wrapper is sequential); see the double-buffering ablation.
    double_buffered: bool = False

    def __post_init__(self) -> None:
        if self.input_words < 1:
            raise ValueError(f"input_words must be >= 1, got "
                             f"{self.input_words}")
        if self.output_words < 1:
            raise ValueError(f"output_words must be >= 1, got "
                             f"{self.output_words}")
        if self.latency_cycles < 1:
            raise ValueError("latency_cycles must be >= 1")
        if self.interval_cycles < 1:
            raise ValueError("interval_cycles must be >= 1")
        if self.word_bits not in (8, 16, 32, 64):
            raise ValueError(f"word_bits must be 8/16/32/64, got "
                             f"{self.word_bits}")
        if self.design_flow not in ("hls4ml", "stratus"):
            raise ValueError(f"unknown design flow {self.design_flow!r}")

    def run(self, frame: np.ndarray) -> np.ndarray:
        """Invoke the kernel on one frame, validating I/O geometry."""
        frame = np.asarray(frame, dtype=np.float64).reshape(-1)
        if len(frame) != self.input_words:
            raise ValueError(
                f"{self.name}: expected {self.input_words} input words, "
                f"got {len(frame)}")
        out = np.asarray(self.compute(frame), dtype=np.float64).reshape(-1)
        if len(out) != self.output_words:
            raise ValueError(
                f"{self.name}: kernel produced {len(out)} words, spec "
                f"says {self.output_words}")
        return out

    @property
    def plm_words(self) -> int:
        """Private-local-memory footprint: in + out ping buffers."""
        return self.input_words + self.output_words


def chain_specs(name: str, stages: Sequence[AcceleratorSpec],
                design_flow: str = "stratus") -> AcceleratorSpec:
    """Fuse several kernels into one accelerator (single tile).

    Used for the monolithic Night-Vision accelerator, whose three
    kernels (noise filter, histogram, equalization) live in one tile.
    Latency adds; the initiation interval is the sum as well because
    the fused kernel runs its stages back to back on each frame.
    """
    stages = list(stages)
    if not stages:
        raise ValueError("at least one stage required")
    for prev, nxt in zip(stages, stages[1:]):
        if prev.output_words != nxt.input_words:
            raise ValueError(
                f"stage {prev.name!r} outputs {prev.output_words} words, "
                f"{nxt.name!r} expects {nxt.input_words}")

    def fused(frame: np.ndarray) -> np.ndarray:
        for stage in stages:
            frame = stage.run(frame)
        return frame

    resources = ResourceEstimate()
    for stage in stages:
        resources = resources + stage.resources
    return AcceleratorSpec(
        name=name,
        input_words=stages[0].input_words,
        output_words=stages[-1].output_words,
        compute=fused,
        latency_cycles=sum(s.latency_cycles for s in stages),
        interval_cycles=sum(s.interval_cycles for s in stages),
        resources=resources,
        word_bits=stages[0].word_bits,
        design_flow=design_flow,
    )
