"""The SVHN denoiser accelerator (HLS4ML flow).

Paper Sec. VI: "we designed an autoencoder model. The network size is
1024x256x128x1024, and the compression factor in the bottleneck is 8.
We added Gaussian noise to the SVHN dataset and trained the model with
a 3.1% reconstruction error."
"""

from __future__ import annotations

from typing import Optional

from ..hls4ml_flow import HlsConfig, HlsModel, compile_model
from ..nn import Dense, GaussianNoise, ReLU, Sequential, Sigmoid
from .base import AcceleratorSpec
from .classifier import spec_from_hls

#: The paper's autoencoder: 1024x256x128x1024 (compression factor 8:
#: 1024 inputs squeeze into the 128-wide bottleneck).
DENOISER_TOPOLOGY = (1024, 256, 128, 1024)
TRAINING_NOISE_STDDEV = 0.15

#: Per-layer reuse factors, as hls4ml users tune them layer by layer:
#: the wide decoder layer (128x1024 weights) gets the largest reuse to
#: stay within its tile's DSP column, the bottleneck layer the
#: smallest. The resulting latency matches the paper's Denoiser+
#: Classifier throughput anchor (Table I: 5,220 frames/s).
DEFAULT_REUSE_FACTOR = 4096
REUSE_PROFILE = (4096, 2048, 8192)


def denoiser_model(seed: int = 11) -> Sequential:
    """The untrained autoencoder with the paper's topology."""
    layers = [GaussianNoise(TRAINING_NOISE_STDDEV)]
    for units in DENOISER_TOPOLOGY[1:-1]:
        layers.append(Dense(units))
        layers.append(ReLU())
    layers.append(Dense(DENOISER_TOPOLOGY[-1]))
    layers.append(Sigmoid())
    model = Sequential(layers, name="svhn_denoiser")
    model.build(DENOISER_TOPOLOGY[0], seed=seed)
    return model


def denoiser_hls(model: Optional[Sequential] = None,
                 reuse_factor: int = DEFAULT_REUSE_FACTOR,
                 clock_mhz: float = 78.0) -> HlsModel:
    model = model or denoiser_model()
    layer_reuse = {}
    if reuse_factor == DEFAULT_REUSE_FACTOR:
        names = [layer.name for layer in model.dense_layers()]
        layer_reuse = dict(zip(names, REUSE_PROFILE))
    config = HlsConfig(reuse_factor=reuse_factor, layer_reuse=layer_reuse,
                       clock_mhz=clock_mhz)
    return compile_model(model, config)


def denoiser_spec(model: Optional[Sequential] = None,
                  reuse_factor: int = DEFAULT_REUSE_FACTOR,
                  clock_mhz: float = 78.0) -> AcceleratorSpec:
    """The denoiser as an SoC-ready accelerator."""
    hls_model = denoiser_hls(model, reuse_factor, clock_mhz)
    spec = spec_from_hls(hls_model, name="denoiser")
    return spec
