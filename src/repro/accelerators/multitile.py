"""The multi-tile (partitioned) classifier.

Paper Sec. VI: "We then designed a partitioned version of the
Classifier, by distributing the computation across five accelerators"
— one dense layer per tile, chained through DMA or p2p. This is the
workload of the third column of Table I and the rightmost cluster of
Fig. 7 ("1Cl split").
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..hls4ml_flow import HlsModel
from ..nn import Sequential
from .base import AcceleratorSpec
from .classifier import classifier_hls


def partition_classifier(hls_model: Optional[HlsModel] = None,
                         model: Optional[Sequential] = None,
                         reuse_factor: int = 2048,
                         clock_mhz: float = 78.0) -> List[AcceleratorSpec]:
    """Split a compiled classifier into one accelerator per dense layer.

    Each partition keeps its layer's schedule and resources; the I/O
    geometry follows the layer sizes (1024 -> 256 -> 128 -> 64 -> 32 ->
    10 for the paper's network), so partitions chain directly on the
    NoC.
    """
    if hls_model is None:
        hls_model = classifier_hls(model, reuse_factor, clock_mhz)

    specs: List[AcceleratorSpec] = []
    for index, layer in enumerate(hls_model.layers):

        def compute(frame: np.ndarray, _layer=layer) -> np.ndarray:
            return _layer.forward(np.atleast_2d(frame))[0]

        specs.append(AcceleratorSpec(
            name=f"{hls_model.name}_part{index}",
            input_words=layer.n_in,
            output_words=layer.n_out,
            compute=compute,
            latency_cycles=layer.schedule.latency,
            interval_cycles=layer.schedule.interval,
            resources=layer.schedule.resources,
            word_bits=layer.precision.width,
            design_flow="hls4ml",
        ))
    return specs
