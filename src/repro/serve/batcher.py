"""Request coalescing: many small requests -> one multi-frame invocation.

The executor's per-invocation overhead (ioctl + register programming +
pipeline fill) is paid per ``esp_run``, not per frame — the whole point
of the paper's ``n_frames``/stride interface. The batcher exploits it:
compatible requests of one tenant are concatenated into a single
multi-frame invocation, so k requests of n frames each cost one
pipeline fill instead of k.

One wrinkle: the planner requires the frame count to divide evenly
over every level's siblings (a 4NV+1Cl pipeline wants multiples of 4).
The batcher pads the tail with zero frames up to the pipeline's *frame
quantum* (the lcm of the level widths) and drops the padded outputs on
the way back out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..runtime import Dataflow
from .request import InferenceRequest


def frame_quantum(dataflow: Dataflow) -> int:
    """Smallest frame count the planner accepts: lcm of level widths."""
    quantum = 1
    for names in dataflow.levels():
        quantum = math.lcm(quantum, len(names))
    return quantum


@dataclass
class Batch:
    """One coalesced invocation: stacked frames plus the split map."""

    requests: List[InferenceRequest]
    frames: np.ndarray = field(repr=False)   # padded to the quantum
    pad_frames: int = 0

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    @property
    def real_frames(self) -> int:
        return sum(r.n_frames for r in self.requests)

    @property
    def total_frames(self) -> int:
        return self.frames.shape[0]

    def split_outputs(self, outputs: np.ndarray
                      ) -> List[Tuple[InferenceRequest, np.ndarray]]:
        """Slice the invocation's outputs back per request.

        Padding rows (zero frames appended to satisfy the quantum) are
        dropped — they were never anyone's data.
        """
        if outputs.shape[0] != self.total_frames:
            raise ValueError(
                f"outputs have {outputs.shape[0]} rows, batch ran "
                f"{self.total_frames} frames")
        out = []
        offset = 0
        for request in self.requests:
            out.append((request,
                        outputs[offset:offset + request.n_frames]))
            offset += request.n_frames
        return out


class Batcher:
    """Builds :class:`Batch` es for one tenant's pipeline."""

    def __init__(self, dataflow: Dataflow,
                 max_batch_frames: int = 32) -> None:
        if max_batch_frames < 1:
            raise ValueError("max_batch_frames must be >= 1")
        self.dataflow = dataflow
        self.quantum = frame_quantum(dataflow)
        self.max_batch_frames = max(max_batch_frames, self.quantum)
        # Statistics.
        self.batches_formed = 0
        self.requests_coalesced = 0
        self.frames_padded = 0
        self.widenings = 0

    def widen(self, factor: float = 2.0,
              cap: int = 256) -> int:
        """Grow ``max_batch_frames`` under queue pressure.

        A saturated admission queue with a healthy pipeline means the
        per-invocation overhead dominates: larger batches amortize it
        over more frames. The new bound is rounded up to a multiple of
        the quantum and capped. Returns the new bound (unchanged when
        already at the cap)."""
        if factor <= 1.0:
            raise ValueError("widen factor must be > 1")
        target = min(int(self.max_batch_frames * factor), cap)
        target = max(target, self.quantum)
        target = math.ceil(target / self.quantum) * self.quantum
        if target > self.max_batch_frames:
            self.max_batch_frames = target
            self.widenings += 1
        return self.max_batch_frames

    def form(self, requests: List[InferenceRequest]) -> Batch:
        """Coalesce ``requests`` (already size-limited by the queue's
        ``drain``) into one padded multi-frame invocation."""
        if not requests:
            raise ValueError("cannot form an empty batch")
        frames = np.concatenate([r.frames for r in requests], axis=0)
        real = frames.shape[0]
        padded = math.ceil(real / self.quantum) * self.quantum
        pad = padded - real
        if pad:
            frames = np.concatenate(
                [frames, np.zeros((pad, frames.shape[1]))], axis=0)
        self.batches_formed += 1
        self.requests_coalesced += len(requests)
        self.frames_padded += pad
        return Batch(requests=list(requests), frames=frames,
                     pad_frames=pad)
