"""Requests, completions and rejections of the serving layer.

The serving subsystem speaks in :class:`InferenceRequest`s: a tenant
(one registered dataflow) asks for a batch of frames to be run through
its pipeline. Every request ends in exactly one of three records — a
:class:`Completion` (outputs + latency breakdown), a
:class:`Rejection` (admission control said no, with a reason), or a
:class:`Failure` (the hardware gave up past every recovery layer).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..trace.context import TraceContext

#: Admission-control rejection reasons.
REJECT_UNKNOWN_TENANT = "unknown-tenant"
REJECT_QUEUE_FULL = "queue-full"
REJECT_BAD_SHAPE = "bad-shape"
REJECT_TILE_UNAVAILABLE = "tile-unavailable"
REJECT_REASONS = (REJECT_UNKNOWN_TENANT, REJECT_QUEUE_FULL,
                  REJECT_BAD_SHAPE, REJECT_TILE_UNAVAILABLE)

_request_ids = itertools.count()


@dataclass
class InferenceRequest:
    """One admitted unit of work: a tenant's batch of input frames."""

    tenant: str
    frames: np.ndarray = field(repr=False)
    submitted_at: int = 0
    priority: int = 0
    request_id: int = field(default_factory=lambda: next(_request_ids))
    #: Distributed-tracing identity. Minted by the server at submit
    #: when absent; supplied by the fleet router for routed requests.
    #: Propagated, never re-minted — a reshard or degraded retry keeps
    #: the same ID end to end.
    trace_ctx: Optional[TraceContext] = None

    def __post_init__(self) -> None:
        self.frames = np.atleast_2d(
            np.asarray(self.frames, dtype=np.float64))

    @property
    def n_frames(self) -> int:
        return self.frames.shape[0]


@dataclass(frozen=True)
class TracedRequest:
    """One entry of a request trace: submit ``frames`` at cycle ``at``."""

    at: int
    tenant: str
    frames: Any
    priority: int = 0


@dataclass
class Completion:
    """A served request: outputs plus its latency breakdown."""

    request_id: int
    tenant: str
    submitted_at: int
    started_at: int          # batch dispatch (tiles granted)
    completed_at: int
    n_frames: int
    batch_frames: int        # frames of the coalesced invocation
    batch_requests: int      # requests coalesced into that invocation
    degraded: bool
    outputs: np.ndarray = field(repr=False)

    @property
    def latency_cycles(self) -> int:
        """Submit-to-complete: what the tenant observes."""
        return self.completed_at - self.submitted_at

    @property
    def queue_cycles(self) -> int:
        """Admission-to-dispatch: queueing + batching + arbitration."""
        return self.started_at - self.submitted_at

    @property
    def service_cycles(self) -> int:
        """Dispatch-to-complete: the hardware's share."""
        return self.completed_at - self.started_at


@dataclass(frozen=True)
class Rejection:
    """Admission control (or arbitration) refused the request."""

    request_id: int
    tenant: str
    reason: str
    at: int
    detail: str = ""

    def __post_init__(self) -> None:
        if self.reason not in REJECT_REASONS:
            raise ValueError(f"unknown reject reason {self.reason!r}; "
                             f"options: {REJECT_REASONS}")


@dataclass
class Failure:
    """The request died in hardware past every recovery layer."""

    request_id: int
    tenant: str
    submitted_at: int
    failed_at: int
    error: Optional[BaseException] = None
