"""Bounded request queue with admission control.

Backpressure is explicit: the queue holds at most ``max_depth``
requests across all tenants, and an arriving request that would
overflow it is rejected *at submit time* with a reason — the serving
analogue of a full hardware queue asserting its ready signal low. A
rejected request costs the system nothing downstream; an admitted one
is guaranteed a slot until its tenant's batch loop drains it.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from .request import (
    InferenceRequest,
    REJECT_BAD_SHAPE,
    REJECT_QUEUE_FULL,
    REJECT_UNKNOWN_TENANT,
    Rejection,
)


class RequestQueue:
    """Admission control + per-tenant FIFO backlog."""

    def __init__(self, max_depth: int = 64) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self._queues: Dict[str, Deque[InferenceRequest]] = {}
        self._expected_words: Dict[str, int] = {}
        #: Called with the request after a successful admit (the server
        #: hooks this to wake the tenant's batch loop).
        self.on_admit: Optional[Callable[[InferenceRequest], None]] = None
        # Statistics.
        self.admitted = 0
        self.rejected_by_reason: Dict[str, int] = {}
        self.peak_depth = 0

    # -- tenant management --------------------------------------------------

    def register(self, tenant: str, input_words: int) -> None:
        if tenant in self._queues:
            raise ValueError(f"tenant {tenant!r} already registered")
        if input_words < 1:
            raise ValueError("input_words must be >= 1")
        self._queues[tenant] = deque()
        self._expected_words[tenant] = input_words

    @property
    def tenants(self) -> List[str]:
        return sorted(self._queues)

    def reset_stats(self) -> None:
        """Zero the admission statistics (start of a serving run).

        Queued requests are untouched — only the counters restart, so
        ``peak_depth`` and the admission/rejection totals describe one
        run instead of accumulating across back-to-back traces.
        ``peak_depth`` restarts at the *current* depth: requests
        already queued are part of the new run's peak.
        """
        self.admitted = 0
        self.rejected_by_reason = {}
        self.peak_depth = self.depth

    # -- depth --------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Requests currently queued, across all tenants."""
        return sum(len(q) for q in self._queues.values())

    def tenant_depth(self, tenant: str) -> int:
        return len(self._queues[tenant])

    def tenant_backlog(self, tenant: str) -> tuple:
        """``(requests, frames)`` queued for one tenant.

        Frames are what the hardware will actually run, so a router
        comparing backlogs sees two one-frame requests as lighter than
        one eight-frame request. O(queued requests) — introspection,
        not a hot path.
        """
        queue = self._queues[tenant]
        return len(queue), sum(r.n_frames for r in queue)

    # -- admission ----------------------------------------------------------

    def submit(self, request: InferenceRequest,
               now: int = 0) -> Optional[Rejection]:
        """Admit ``request`` or reject it with a reason.

        Returns ``None`` on admission; a :class:`Rejection` otherwise.
        Admission is checked in order: the tenant must be registered,
        the frame geometry must match the tenant's pipeline, and the
        global queue must have room (bounded depth — the backpressure
        contract).
        """
        queue = self._queues.get(request.tenant)
        if queue is None:
            return self._reject(request, REJECT_UNKNOWN_TENANT, now,
                                f"registered tenants: {self.tenants}")
        expected = self._expected_words[request.tenant]
        if request.frames.shape[1] != expected:
            return self._reject(
                request, REJECT_BAD_SHAPE, now,
                f"frames have {request.frames.shape[1]} words, pipeline "
                f"expects {expected}")
        if self.depth >= self.max_depth:
            return self._reject(
                request, REJECT_QUEUE_FULL, now,
                f"queue depth {self.depth} at max_depth "
                f"{self.max_depth}")
        request.submitted_at = now
        queue.append(request)
        self.admitted += 1
        self.peak_depth = max(self.peak_depth, self.depth)
        if self.on_admit is not None:
            self.on_admit(request)
        return None

    def _reject(self, request: InferenceRequest, reason: str, now: int,
                detail: str) -> Rejection:
        self.rejected_by_reason[reason] = \
            self.rejected_by_reason.get(reason, 0) + 1
        return Rejection(request_id=request.request_id,
                         tenant=request.tenant, reason=reason, at=now,
                         detail=detail)

    # -- draining (the batch loops' side) ------------------------------------

    def pop(self, tenant: str) -> Optional[InferenceRequest]:
        """Remove and return the tenant's oldest request, if any."""
        queue = self._queues[tenant]
        return queue.popleft() if queue else None

    def peek(self, tenant: str) -> Optional[InferenceRequest]:
        queue = self._queues[tenant]
        return queue[0] if queue else None

    def drain(self, tenant: str,
              max_frames: Optional[int] = None) -> List[InferenceRequest]:
        """Pop consecutive requests while their frames fit ``max_frames``.

        Always takes at least one request (a single oversized request
        is the batcher's problem, not the queue's). FIFO within the
        tenant, so no request can be starved by later arrivals.
        """
        out: List[InferenceRequest] = []
        total = 0
        queue = self._queues[tenant]
        while queue:
            head = queue[0]
            if out and max_frames is not None \
                    and total + head.n_frames > max_frames:
                break
            out.append(queue.popleft())
            total += head.n_frames
        return out
