"""Tile arbitration: exclusive, deadlock-free tile-set ownership.

Several plans can be in flight on one SoC as long as their tile sets
are disjoint — the accelerator sockets are independent; only the NoC,
the memory tile and the CPU are shared (and those are modelled
resources that interleave safely). The arbiter enforces the disjointness:
a tenant's batch loop acquires its whole tile set before dispatching
and releases it afterwards.

Grants are **all-or-nothing**: a claim either gets every tile of its
set atomically or holds none of them. Incremental acquisition (grab
``nv0``, then wait for ``cl0``) is the classic partial-hold deadlock;
atomic grants make the arbiter trivially deadlock-free.

The order in which waiting claims are *considered* is the scheduling
policy: ``fifo`` (arrival order), ``priority`` (highest first, FIFO
within a priority), or ``sjf`` (shortest estimated job first). The
scan is first-fit in policy order — a claim whose tiles are busy does
not block a later claim over a disjoint set.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    Callable, Dict, FrozenSet, Iterable, List, Optional, Set)

from ..sim import Environment, Event

#: Supported scheduling policies.
ARBITER_POLICIES = ("fifo", "priority", "sjf")


class TileUnavailable(Exception):
    """A claimed tile was marked failed (and the claim disallows that)."""

    def __init__(self, tiles: Iterable[str]) -> None:
        self.tiles = sorted(tiles)
        super().__init__(f"tiles unavailable: {self.tiles}")


@dataclass
class Claim:
    """One pending all-or-nothing request for a tile set."""

    tiles: FrozenSet[str]
    event: Event
    priority: int = 0
    est_cycles: int = 0
    allow_unavailable: bool = False
    seq: int = 0
    queued_at: int = 0


class TileArbiter:
    """Tracks tile ownership; grants disjoint tile sets concurrently."""

    def __init__(self, env: Environment, tiles: Iterable[str],
                 policy: str = "fifo",
                 probation_cycles: Optional[int] = None,
                 max_probation_cycles: Optional[int] = None) -> None:
        if policy not in ARBITER_POLICIES:
            raise ValueError(f"policy must be one of {ARBITER_POLICIES}, "
                             f"got {policy!r}")
        if probation_cycles is not None and probation_cycles < 1:
            raise ValueError("probation_cycles must be >= 1")
        self.env = env
        self.policy = policy
        self.tiles: FrozenSet[str] = frozenset(tiles)
        if not self.tiles:
            raise ValueError("arbiter needs at least one tile")
        self._busy: Set[str] = set()
        self._unavailable: Set[str] = set()
        self._pending: List[Claim] = []
        self._seq = itertools.count()
        # Probation: quarantined tiles are re-admitted after a delay
        # (exponential backoff per repeat quarantine, capped). None
        # keeps the original permanent-quarantine behavior.
        self.probation_cycles = probation_cycles
        self.max_probation_cycles = (
            max_probation_cycles
            if max_probation_cycles is not None
            else (probation_cycles or 0) * 16)
        self._readmit_at: Dict[str, int] = {}
        self._quarantine_count: Dict[str, int] = {}
        #: Called with the tile name when probation re-admits it
        #: (hook for the server to reset/repair the device first).
        self.on_readmit: Optional[Callable[[str], None]] = None
        self.readmissions = 0
        # Statistics.
        self.grants = 0
        self.total_wait_cycles = 0
        self.max_wait_cycles = 0
        self.holder: Dict[str, Optional[str]] = {}

    # -- state inspection ----------------------------------------------------

    @property
    def free_tiles(self) -> FrozenSet[str]:
        return frozenset(self.tiles - self._busy - self._unavailable)

    @property
    def unavailable_tiles(self) -> FrozenSet[str]:
        return frozenset(self._unavailable)

    @property
    def readmit_schedule(self) -> Dict[str, int]:
        """Quarantined tile -> cycle its probation ends (copy)."""
        return dict(self._readmit_at)

    @property
    def pending_claims(self) -> int:
        return len(self._pending)

    def is_available(self, tiles: Iterable[str]) -> bool:
        return not (set(tiles) & self._unavailable)

    # -- acquire / release ----------------------------------------------------

    def acquire(self, tiles: Iterable[str], priority: int = 0,
                est_cycles: int = 0,
                allow_unavailable: bool = False,
                label: str = "") -> Event:
        """Claim a tile set; the event succeeds when all are granted.

        The event *fails* with :class:`TileUnavailable` if a claimed
        tile is (or becomes) marked failed — unless
        ``allow_unavailable`` (degraded service: the runtime will run
        the failed device's work in software, but the socket is still
        owned exclusively so a later repair can't race).
        """
        tiles = frozenset(tiles)
        if not tiles:
            raise ValueError("empty tile set")
        unknown = tiles - self.tiles
        if unknown:
            raise KeyError(f"unknown tiles {sorted(unknown)}; arbiter "
                           f"manages {sorted(self.tiles)}")
        self._check_probation()
        event = self.env.event()
        event.wait_reason = (f"tile grant for {sorted(tiles)}"
                             + (f" ({label})" if label else ""))
        claim = Claim(tiles=tiles, event=event, priority=priority,
                      est_cycles=est_cycles,
                      allow_unavailable=allow_unavailable,
                      seq=next(self._seq), queued_at=self.env.now)
        if not allow_unavailable and (tiles & self._unavailable):
            event.fail(TileUnavailable(tiles & self._unavailable))
            return event
        self._pending.append(claim)
        self._scan()
        return event

    def release(self, tiles: Iterable[str]) -> None:
        """Return a granted tile set; wakes eligible waiting claims."""
        tiles = set(tiles)
        not_held = tiles - self._busy
        if not_held:
            raise ValueError(f"releasing tiles not held: "
                             f"{sorted(not_held)}")
        self._busy -= tiles
        for tile in tiles:
            self.holder[tile] = None
        self._scan()

    def cancel(self, event: Event) -> bool:
        """Withdraw a pending (ungranted) claim; True if found."""
        for index, claim in enumerate(self._pending):
            if claim.event is event:
                del self._pending[index]
                return True
        return False

    # -- failure integration ---------------------------------------------------

    def mark_unavailable(self, tile: str,
                         probation: Optional[bool] = None) -> None:
        """A tile failed: stop granting it. Pending claims that need
        it and forbid degraded service fail immediately instead of
        waiting forever.

        With probation configured (``probation_cycles`` on the
        arbiter, or ``probation=True`` here), the quarantine is a
        sentence, not a verdict: the tile is re-admitted after the
        probation delay, doubled per repeat quarantine (capped at
        ``max_probation_cycles``) so a genuinely broken tile backs
        off instead of flapping. Otherwise the tile never returns to
        the free pool until :meth:`mark_available` repairs it —
        the original permanent behavior."""
        if tile not in self.tiles:
            raise KeyError(f"unknown tile {tile!r}")
        self._unavailable.add(tile)
        use_probation = (self.probation_cycles is not None
                         if probation is None else probation)
        if use_probation:
            base = self.probation_cycles or 1
            count = self._quarantine_count.get(tile, 0) + 1
            self._quarantine_count[tile] = count
            delay = base * 2 ** (count - 1)
            if self.max_probation_cycles:
                delay = min(delay, self.max_probation_cycles)
            self._readmit_at[tile] = self.env.now + delay
        else:
            self._readmit_at.pop(tile, None)
        doomed = [c for c in self._pending
                  if tile in c.tiles and not c.allow_unavailable]
        for claim in doomed:
            self._pending.remove(claim)
            claim.event.fail(TileUnavailable({tile}))

    def mark_available(self, tile: str) -> None:
        """A failed tile was repaired/reset: grant it again.

        Explicit repair, not probation: the pending probation entry
        (if any) is dropped, but the quarantine count is kept so a
        tile that keeps failing still backs off exponentially."""
        if tile not in self.tiles:
            raise KeyError(f"unknown tile {tile!r}")
        self._unavailable.discard(tile)
        self._readmit_at.pop(tile, None)
        self._scan()

    def _check_probation(self) -> None:
        """Re-admit quarantined tiles whose probation has elapsed.

        Checked lazily from :meth:`acquire` and :meth:`_scan` — no
        timer process, so an idle arbiter costs the simulation
        nothing and zero-fault runs keep their exact cycle counts."""
        if not self._readmit_at:
            return
        now = self.env.now
        due = [t for t, at in self._readmit_at.items() if now >= at]
        for tile in due:
            del self._readmit_at[tile]
            self._unavailable.discard(tile)
            self.readmissions += 1
            if self.on_readmit is not None:
                self.on_readmit(tile)

    # -- the grant scan ---------------------------------------------------------

    def _order(self) -> List[Claim]:
        if self.policy == "priority":
            return sorted(self._pending,
                          key=lambda c: (-c.priority, c.seq))
        if self.policy == "sjf":
            return sorted(self._pending,
                          key=lambda c: (c.est_cycles, c.seq))
        return sorted(self._pending, key=lambda c: c.seq)

    def _grantable(self, claim: Claim) -> bool:
        if claim.tiles & self._busy:
            return False
        if not claim.allow_unavailable \
                and (claim.tiles & self._unavailable):
            return False
        return True

    def _scan(self) -> None:
        """First-fit in policy order over the pending claims."""
        self._check_probation()
        granted = True
        while granted:
            granted = False
            for claim in self._order():
                if not self._grantable(claim):
                    continue
                self._pending.remove(claim)
                self._busy |= claim.tiles
                for tile in claim.tiles:
                    self.holder[tile] = claim.event.wait_reason
                waited = self.env.now - claim.queued_at
                self.grants += 1
                self.total_wait_cycles += waited
                self.max_wait_cycles = max(self.max_wait_cycles, waited)
                claim.event.succeed(frozenset(claim.tiles))
                granted = True
                break
